//! Aligned-column text tables (Tables 1–2 and the numeric appendices).

use std::fmt;

/// A simple right-aligned text table with a header row.
///
/// # Examples
///
/// ```
/// use report::Table;
///
/// let mut t = Table::new(&["bench", "CPI"]);
/// t.row(&["mcf", "3.14"]);
/// t.row(&["gzip", "0.98"]);
/// let text = t.to_string();
/// assert!(text.contains("mcf"));
/// assert!(text.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: &[&str]) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned strings (e.g. formatted numbers).
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                // First column left-aligned (names), the rest right-aligned.
                if i == 0 {
                    write!(f, "{cell:<w$}")?;
                } else {
                    write!(f, "{cell:>w$}")?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a", "1"]).row(&["longer", "22"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
    }

    #[test]
    fn row_owned_and_len() {
        let mut t = Table::new(&["x"]);
        assert!(t.is_empty());
        t.row_owned(vec![format!("{:.2}", 1.5)]);
        assert_eq!(t.len(), 1);
        assert!(t.to_string().contains("1.50"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_rejected() {
        let _ = Table::new(&[]);
    }
}
