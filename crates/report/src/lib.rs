//! Figure and table rendering for the experiment harness.
//!
//! Every figure of the paper is regenerated as text: scatter plots
//! (Fig. 2), error CDFs (Fig. 3), grouped bars (Fig. 4–5) and signed
//! delta-stack bars (Fig. 6), plus aligned tables (Tables 1–2) and CSV
//! export for external plotting.
//!
//! # Examples
//!
//! ```
//! use report::scatter::scatter_plot;
//!
//! let points = [(1.0, 1.1), (2.0, 1.9), (3.0, 3.2)];
//! let fig = scatter_plot("demo", &points, 40, 12);
//! assert!(fig.contains("demo"));
//! ```

pub mod bars;
pub mod cdf;
pub mod csv;
pub mod scatter;
pub mod table;

pub use bars::{grouped_bars, signed_bars};
pub use cdf::cdf_plot;
pub use csv::to_csv;
pub use scatter::scatter_plot;
pub use table::Table;
