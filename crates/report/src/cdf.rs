//! ASCII CDF plots — Fig. 3's sorted-error curves, multiple series per
//! panel.

/// Renders one or more CDF series (`(fraction, value)` points, fractions
/// ascending in `[0, 1]`) on a shared grid. Each series gets its own glyph,
/// shown in the legend.
///
/// # Examples
///
/// ```
/// use report::cdf::cdf_plot;
///
/// let series = [("modelA", vec![(0.5, 0.05), (1.0, 0.2)])];
/// let fig = cdf_plot("errors", &series, 40, 10);
/// assert!(fig.contains("modelA"));
/// ```
///
/// # Panics
///
/// Panics if no series are given, any series is empty, or dimensions are
/// below 8×4.
pub fn cdf_plot(
    title: &str,
    series: &[(&str, Vec<(f64, f64)>)],
    width: usize,
    height: usize,
) -> String {
    assert!(!series.is_empty(), "need at least one series");
    assert!(width >= 8 && height >= 4, "plot too small to render");
    const GLYPHS: [char; 6] = ['o', 'x', '+', '#', '@', '%'];
    let y_max = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|&(_, y)| y))
        .fold(0.0f64, f64::max)
        .max(1e-9)
        * 1.05;

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        assert!(!pts.is_empty(), "series must be non-empty");
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(frac, y) in pts {
            let col = ((frac.clamp(0.0, 1.0)) * (width - 1) as f64) as usize;
            let row = ((1.0 - y / y_max) * height as f64) as usize;
            grid[row.min(height - 1)][col] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, line) in grid.iter().enumerate() {
        if i == 0 {
            out.push_str(&format!("{:>6.2} |", y_max));
        } else {
            out.push_str("       |");
        }
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str("       +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str("        0");
    out.push_str(&" ".repeat(width.saturating_sub(10)));
    out.push_str("1.0  (x = fraction of benchmarks, y = prediction error)\n");
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!(
            "        {} = {}\n",
            GLYPHS[si % GLYPHS.len()],
            name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_two_series_with_legend() {
        let a = vec![(0.25, 0.02), (0.5, 0.05), (1.0, 0.3)];
        let b = vec![(0.25, 0.04), (0.5, 0.10), (1.0, 0.5)];
        let fig = cdf_plot(
            "robustness",
            &[("cpu2006 model", a), ("cpu2000 model", b)],
            40,
            12,
        );
        assert!(fig.contains('o') && fig.contains('x'));
        assert!(fig.contains("cpu2006 model"));
        assert!(fig.contains("cpu2000 model"));
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_series_list_panics() {
        let _ = cdf_plot("t", &[], 20, 8);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_series_panics() {
        let _ = cdf_plot("t", &[("s", vec![])], 20, 8);
    }
}
