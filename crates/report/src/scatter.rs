//! ASCII scatter plots — Fig. 2's measured-vs-predicted panels.

/// Renders an `width × height` character scatter plot of `points`
/// (x = measured, y = predicted), with the bisector drawn as `/` where no
/// point covers it. Both axes share the same range so the bisector is the
/// visual accuracy reference, exactly like the paper's Fig. 2.
///
/// # Examples
///
/// ```
/// use report::scatter::scatter_plot;
///
/// let fig = scatter_plot("perfect", &[(1.0, 1.0), (2.0, 2.0)], 30, 10);
/// assert!(fig.contains('*'));
/// ```
///
/// # Panics
///
/// Panics if `points` is empty, dimensions are below 8×4, or any coordinate
/// is non-finite.
pub fn scatter_plot(title: &str, points: &[(f64, f64)], width: usize, height: usize) -> String {
    assert!(!points.is_empty(), "need at least one point");
    assert!(width >= 8 && height >= 4, "plot too small to render");
    assert!(
        points.iter().all(|(x, y)| x.is_finite() && y.is_finite()),
        "coordinates must be finite"
    );
    let max = points
        .iter()
        .flat_map(|&(x, y)| [x, y])
        .fold(0.0f64, f64::max)
        .max(1e-9)
        * 1.05;

    let mut grid = vec![vec![' '; width]; height];
    // Bisector first, points overwrite.
    for (col, frac) in (0..width).map(|c| (c, (c as f64 + 0.5) / width as f64)) {
        let row = ((1.0 - frac) * height as f64) as usize;
        if row < height {
            grid[row][col] = '/';
        }
    }
    for &(x, y) in points {
        let col = ((x / max) * width as f64) as usize;
        let row = ((1.0 - y / max) * height as f64) as usize;
        let col = col.min(width - 1);
        let row = row.min(height - 1);
        grid[row][col] = '*';
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, line) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{max:>6.1} |")
        } else {
            "       |".to_string()
        };
        out.push_str(&label);
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str("       +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "        0{}{max:.1}   (x = measured CPI, y = predicted CPI, / = bisector)\n",
        " ".repeat(width.saturating_sub(8)),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_points_and_bisector() {
        let fig = scatter_plot("t", &[(0.5, 0.5), (1.0, 2.0)], 40, 12);
        assert!(fig.contains('*'));
        assert!(fig.contains('/'));
        assert!(fig.lines().count() >= 14);
    }

    #[test]
    fn accurate_points_sit_on_bisector_row() {
        // A single exact point at the extreme: its '*' replaces the '/'.
        let fig = scatter_plot("t", &[(1.0, 1.0)], 20, 10);
        let stars = fig.matches('*').count();
        assert_eq!(stars, 1);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_points_panic() {
        let _ = scatter_plot("t", &[], 20, 10);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_points_panic() {
        let _ = scatter_plot("t", &[(f64::NAN, 1.0)], 20, 10);
    }
}
