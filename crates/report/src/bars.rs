//! Bar charts: grouped bars (Fig. 4–5's error comparisons) and signed
//! horizontal bars (Fig. 6's CPI-delta stacks, where bars go negative for
//! improvements).

use std::fmt::Write as _;

/// Renders grouped vertical values as horizontal bars, one line per
/// (group, series) pair — the text equivalent of Fig. 4's grouped columns.
///
/// # Examples
///
/// ```
/// use report::bars::grouped_bars;
///
/// let fig = grouped_bars(
///     "avg error",
///     &["Pentium 4"],
///     &[("ME", vec![0.10]), ("ANN", vec![0.20])],
///     40,
/// );
/// assert!(fig.contains("ME"));
/// ```
///
/// # Panics
///
/// Panics if any series' length differs from the group count, or any value
/// is negative or non-finite (use [`signed_bars`] for signed data).
pub fn grouped_bars(
    title: &str,
    groups: &[&str],
    series: &[(&str, Vec<f64>)],
    width: usize,
) -> String {
    assert!(!groups.is_empty() && !series.is_empty(), "empty chart");
    for (name, values) in series {
        assert_eq!(values.len(), groups.len(), "series `{name}` arity mismatch");
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "series `{name}` must be non-negative"
        );
    }
    let max = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let name_w = series.iter().map(|(n, _)| n.len()).max().unwrap_or(0);

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (gi, group) in groups.iter().enumerate() {
        let _ = writeln!(out, "  {group}:");
        for (name, values) in series {
            let v = values[gi];
            let len = ((v / max) * width as f64).round() as usize;
            let _ = writeln!(out, "    {name:<name_w$} |{} {v:.3}", "#".repeat(len));
        }
    }
    out
}

/// Renders signed values as horizontal bars around a zero axis: negative
/// bars (improvements, in the paper's delta-stack convention) extend left,
/// positive bars right.
///
/// # Examples
///
/// ```
/// use report::bars::signed_bars;
///
/// let fig = signed_bars("delta", &[("branch", -0.2), ("mlp", 0.05)], 20);
/// assert!(fig.contains("branch"));
/// assert!(fig.contains('<'));
/// assert!(fig.contains('>'));
/// ```
///
/// # Panics
///
/// Panics if `items` is empty or a value is non-finite.
pub fn signed_bars(title: &str, items: &[(&str, f64)], half_width: usize) -> String {
    assert!(!items.is_empty(), "empty chart");
    assert!(
        items.iter().all(|(_, v)| v.is_finite()),
        "values must be finite"
    );
    let max = items
        .iter()
        .map(|(_, v)| v.abs())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let name_w = items.iter().map(|(n, _)| n.len()).max().unwrap_or(0);

    let mut out = String::new();
    let _ = writeln!(out, "{title}  (bars left of | are improvements)");
    for (name, v) in items {
        let len = ((v.abs() / max) * half_width as f64).round() as usize;
        let (left, right) = if *v < 0.0 {
            (format!("{:>half_width$}", "<".repeat(len)), String::new())
        } else {
            (format!("{:>half_width$}", ""), ">".repeat(len))
        };
        let _ = writeln!(out, "  {name:<name_w$} {left}|{right:<half_width$} {v:+.4}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_bars_scale_to_max() {
        let fig = grouped_bars(
            "t",
            &["g1", "g2"],
            &[("a", vec![1.0, 0.5]), ("b", vec![0.25, 0.0])],
            20,
        );
        // The max value gets the full width.
        assert!(fig.contains(&"#".repeat(20)));
        assert!(fig.contains("g2"));
    }

    #[test]
    fn signed_bars_direction() {
        let fig = signed_bars("t", &[("worse", 0.5), ("better", -1.0)], 10);
        let better_line = fig.lines().find(|l| l.contains("better")).unwrap();
        assert!(better_line.contains("<<<<<<<<<<"));
        let worse_line = fig.lines().find(|l| l.contains("worse")).unwrap();
        assert!(worse_line.contains(">>>>>"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn grouped_checks_arity() {
        let _ = grouped_bars("t", &["a", "b"], &[("s", vec![1.0])], 10);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn signed_rejects_empty() {
        let _ = signed_bars("t", &[], 10);
    }
}
