//! Generic CSV export so every figure's numbers can be re-plotted with
//! external tools.

/// Serializes a header plus rows of numbers to CSV text.
///
/// # Examples
///
/// ```
/// use report::csv::to_csv;
///
/// let text = to_csv(&["x", "y"], &[vec![1.0, 2.0], vec![3.0, 4.5]]);
/// assert_eq!(text.lines().count(), 3);
/// assert!(text.contains("3,4.5"));
/// ```
///
/// # Panics
///
/// Panics if any row's arity differs from the header's.
pub fn to_csv(header: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = header.join(",");
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), header.len(), "row arity mismatch");
        let cells: Vec<String> = row
            .iter()
            .map(|v| {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v}")
                }
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Serializes labelled rows: a leading string column plus numeric columns.
///
/// # Panics
///
/// Panics if any row's numeric arity differs from `value_header`'s.
pub fn to_csv_labelled(
    label_header: &str,
    value_header: &[&str],
    rows: &[(String, Vec<f64>)],
) -> String {
    let mut out = String::from(label_header);
    for h in value_header {
        out.push(',');
        out.push_str(h);
    }
    out.push('\n');
    for (label, values) in rows {
        assert_eq!(values.len(), value_header.len(), "row arity mismatch");
        out.push_str(label);
        for v in values {
            out.push(',');
            out.push_str(&format!("{v}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_render_without_decimals() {
        let text = to_csv(&["a"], &[vec![42.0]]);
        assert!(text.contains("\n42\n"));
    }

    #[test]
    fn labelled_rows() {
        let text = to_csv_labelled(
            "bench",
            &["measured", "predicted"],
            &[("mcf".into(), vec![3.0, 3.1])],
        );
        assert!(text.starts_with("bench,measured,predicted"));
        assert!(text.contains("mcf,3,3.1"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let _ = to_csv(&["a", "b"], &[vec![1.0]]);
    }
}
