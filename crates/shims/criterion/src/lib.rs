//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this in-tree shim
//! provides the criterion API surface the workspace's benches use —
//! benchmark groups, `bench_function`/`bench_with_input`, `Throughput`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros —
//! backed by a plain wall-clock harness: a warm-up pass, then
//! `sample_size` timed iterations reporting mean time per iteration (and
//! element throughput when configured).
//!
//! There is no statistical analysis, outlier rejection, or HTML report;
//! swap the workspace `criterion` path dependency for the real crate when
//! network access is available to get those back. The numbers printed here
//! are still comparable run-to-run on the same machine.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness handle (one per bench binary).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }
}

/// How much work one iteration represents, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterised benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        Self(param.to_string())
    }

    /// An id with a function name and parameter.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        Self(format!("{}/{param}", name.into()))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Ends the group (kept for API parity; reporting is incremental).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        if b.iters == 0 {
            println!("{}/{id}: no iterations run", self.name);
            return;
        }
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 / per_iter / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.1} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{}/{id}: {:.3} ms/iter over {} iters{rate}",
            self.name,
            per_iter * 1e3,
            b.iters
        );
    }
}

/// Timing driver passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`: one untimed warm-up call, then `sample_size` timed calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += self.samples as u64;
    }
}

/// Re-export for code written against criterion's `black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        // 1 warm-up + 5 timed.
        assert_eq!(calls, 6);
        group.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
        assert_eq!(BenchmarkId::new("fit", "core2").to_string(), "fit/core2");
    }
}
