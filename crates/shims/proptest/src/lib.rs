//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this in-tree shim
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), range and
//! tuple strategies, [`prop::collection::vec`], [`Strategy::prop_map`],
//! and the `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Unlike real proptest there is **no shrinking** and no persisted failure
//! regression file: failing cases report the case number under a fixed
//! seed (overridable via `PROPTEST_SEED`), which reproduces the draw
//! deterministically.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Test-case failure carried out of a property body by `prop_assert!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Returns the deterministic base RNG (seed from `PROPTEST_SEED` or fixed).
pub fn test_rng() -> TestRng {
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x00C0_FFEE_u64);
    SmallRng::seed_from_u64(seed)
}

/// A generator of random values (shim of proptest's `Strategy`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8
);
tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8,
    J / 9
);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A length specification: exact or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self(r)
        }
    }

    /// Strategy for `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.0.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The `prop::` namespace used by `use proptest::prelude::*` consumers.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property body, failing the case (not the
/// whole process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}` ({} vs {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ($($strat,)*);
                let mut rng = $crate::test_rng();
                for case in 0..config.cases {
                    let ($($arg,)*) = $crate::Strategy::new_value(&strategies, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property `{}` failed at case {case}/{}: {e}",
                               stringify!($name), config.cases);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_honoured(x in 3u64..17, y in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec(0u32..10, 2..6),
            w in prop::collection::vec(0.0f64..1.0, 4),
            doubled in (1usize..5).prop_map(|n| n * 2),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
            prop_assert!(doubled % 2 == 0 && doubled <= 8);
        }
    }

    #[test]
    fn prop_assert_failure_is_reported() {
        let result = std::panic::catch_unwind(|| {
            // No #[test] attribute here: the generated fn is called
            // directly so the failure path can be observed.
            proptest! {
                fn always_fails(x in 0u32..1) {
                    prop_assert!(x > 0, "x was {x}");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            msg.contains("always_fails") && msg.contains("x was 0"),
            "{msg}"
        );
    }

    #[test]
    fn just_yields_value() {
        let mut rng = crate::test_rng();
        assert_eq!(Just(41u8).new_value(&mut rng), 41);
    }
}
