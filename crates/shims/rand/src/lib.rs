//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this in-tree shim
//! provides the (small) subset of the `rand` 0.8 API the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_bool` and `gen_range` over integer and float
//! ranges. The generator is xoshiro256** seeded through splitmix64 — the
//! same construction `SmallRng` uses on 64-bit targets — so streams are
//! deterministic, well distributed, and stable across runs and platforms.
//!
//! It is NOT a drop-in reimplementation of `rand`'s exact value streams;
//! experiment seeds recorded with this shim are internally reproducible
//! but differ from upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of randomness (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (only `f64` in `[0, 1)` and
    /// the raw integer widths are supported).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// A uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types samplable uniformly from their natural domain.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly samplable between two endpoints (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `[lo, hi)`.
    fn sample_single<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// A uniform draw from `[lo, hi]`.
    fn sample_single_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_single_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_single<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_single_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "empty range in gen_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges that can produce a uniform sample (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Small fast generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** seeded via splitmix64 (what `rand`'s `SmallRng` is on
    /// 64-bit platforms).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&x));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let s = rng.gen_range(-4i64..-1);
            assert!((-4..-1).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
