//! Property-based tests: simulator invariants that must hold for any
//! machine configuration and any well-formed workload.

use oosim::cache::Cache;
use oosim::machine::{MachineConfig, PredictorConfig};
use oosim::observer::{DispatchObserver, NullObserver, StallCause};
use oosim::pipeline::{simulate, simulate_warmed};
use pmu::{Event, Suite};
use proptest::prelude::*;
use specgen::{TraceGenerator, WorkloadProfile};

fn arb_machine() -> impl Strategy<Value = MachineConfig> {
    (
        2u32..6,      // width
        8u32..40,     // frontend depth
        48usize..256, // rob
        1usize..32,   // mshrs
        0u64..8,      // prefetch depth
        10u32..16,    // predictor log2
    )
        .prop_map(|(width, depth, rob, mshrs, prefetch, log2)| {
            MachineConfig::builder(MachineConfig::core2())
                .dispatch_width(width)
                .frontend_depth(depth)
                .rob_size(rob)
                .mshrs(mshrs)
                .prefetch_depth(prefetch)
                .predictor(PredictorConfig {
                    log2_entries: log2,
                    history_bits: log2.min(10),
                })
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// CPI is bounded below by the dispatch width and counters are
    /// mutually consistent for any machine shape.
    #[test]
    fn simulation_invariants(machine in arb_machine(), seed in 0u64..500) {
        let profile = WorkloadProfile::builder("prop", Suite::Cpu2000)
            .fp(0.15)
            .build();
        let trace = TraceGenerator::new(&profile, machine.cracking, seed);
        let r = simulate(&machine, trace, 8_000, &mut NullObserver);
        let c = &r.counters;
        prop_assert!(r.cpi() >= 1.0 / machine.dispatch_width as f64);
        prop_assert_eq!(c.get(Event::UopsRetired), 8_000);
        prop_assert!(c.get(Event::InstrRetired) <= 8_000);
        prop_assert!(c.get(Event::BranchMispredicts) <= c.get(Event::Branches));
        prop_assert!(c.get(Event::LlcDataMisses) <= c.get(Event::L2DataMisses)
            || machine.l3.is_none());
        prop_assert!(c.get(Event::LlcInstrMisses) <= c.get(Event::L1InstrMisses));
    }

    /// Warm-up only ever removes compulsory effects: warmed miss *rates*
    /// never exceed cold rates by more than jitter.
    #[test]
    fn warmup_reduces_compulsory_misses(seed in 0u64..200) {
        let machine = MachineConfig::core2();
        let profile = WorkloadProfile::builder("warm", Suite::Cpu2000).build();
        let cold = simulate(
            &machine,
            TraceGenerator::new(&profile, machine.cracking, seed),
            30_000,
            &mut NullObserver,
        );
        let warm = simulate_warmed(
            &machine,
            TraceGenerator::new(&profile, machine.cracking, seed),
            30_000,
            30_000,
            &mut NullObserver,
        );
        let rate = |r: &oosim::SimResult, e: Event| {
            r.counters.get(e) as f64 / r.counters.get(Event::UopsRetired) as f64
        };
        prop_assert!(rate(&warm, Event::LlcDataMisses)
            <= rate(&cold, Event::LlcDataMisses) * 1.25 + 1e-4);
    }

    /// Attributed stall cycles can never exceed total cycles.
    #[test]
    fn attribution_is_conservative(machine in arb_machine(), seed in 0u64..200) {
        struct Sum(u64);
        impl DispatchObserver for Sum {
            fn on_stall(&mut self, gap: u64, _cause: StallCause) {
                self.0 += gap;
            }
        }
        let profile = WorkloadProfile::builder("attr", Suite::Cpu2006).build();
        let trace = TraceGenerator::new(&profile, machine.cracking, seed);
        let mut sum = Sum(0);
        let r = simulate(&machine, trace, 8_000, &mut sum);
        prop_assert!(sum.0 <= r.cycles, "attributed {} of {} cycles", sum.0, r.cycles);
    }

    /// The cache's hit+miss accounting always balances, and a working set
    /// within capacity eventually stops missing.
    #[test]
    fn cache_accounting_balances(
        log2_size in 10u64..16,
        ways in 1usize..8,
        addrs in prop::collection::vec(0u64..1_000_000, 100..800),
    ) {
        let size = 1u64 << log2_size;
        if !(size / 64).is_multiple_of(ways as u64) {
            return Ok(()); // skip inconsistent geometry draws
        }
        let mut cache = Cache::new(size, 64, ways);
        for &a in &addrs {
            cache.access(a);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
    }

    /// Fully-covered small working sets stop missing after one lap.
    #[test]
    fn resident_sets_hit(lines in 1u64..32, laps in 2u64..6) {
        let mut cache = Cache::new(16 * 1024, 64, 4);
        for lap in 0..laps {
            for l in 0..lines {
                let hit = cache.access(l * 64);
                if lap > 0 {
                    prop_assert!(hit, "line {l} missed on lap {lap}");
                }
            }
        }
    }

    /// Bigger caches never produce more misses on the same trace (LRU
    /// inclusion property for same-geometry scaling by ways).
    #[test]
    fn more_ways_never_more_misses(
        addrs in prop::collection::vec(0u64..65_536, 200..600),
    ) {
        let mut small = Cache::new(8 * 1024, 64, 2);
        let mut large = Cache::new(16 * 1024, 64, 4); // same sets, more ways
        for &a in &addrs {
            small.access(a);
            large.access(a);
        }
        prop_assert!(large.misses() <= small.misses());
    }
}

/// The geometry constraint in `cache_accounting_balances` skips draws; make
/// sure at least the canonical geometries are exercised deterministically.
#[test]
fn canonical_geometries_balance() {
    for (size, ways) in [(16 * 1024, 4), (32 * 1024, 8), (4 * 1024 * 1024, 16)] {
        let mut cache = Cache::new(size, 64, ways);
        for i in 0..10_000u64 {
            cache.access(i * 192 % (2 * size));
        }
        assert_eq!(cache.hits() + cache.misses(), 10_000);
    }
}
