//! Focused integration tests for the stream prefetcher and the warm-up
//! measurement discipline — the two machine behaviours added beyond the
//! textbook OoO model (see DESIGN.md §2).

use oosim::machine::MachineConfig;
use oosim::observer::NullObserver;
use oosim::pipeline::{simulate, simulate_warmed};
use pmu::{Event, Suite};
use specgen::{AccessPattern, MemRegion, TraceGenerator, WorkloadProfile};

fn stream_profile(kib: u64) -> WorkloadProfile {
    // Load-dominated so the demand miss stream is cleanly ascending
    // (interleaved store misses would perturb the stream detector's deltas,
    // as they do in real front-side-bus traffic).
    WorkloadProfile::builder("stream", Suite::Cpu2000)
        .mem_mix(0.30, 0.02)
        .branches(0.05)
        .branch_behaviour(0.005, 0.9, 0.05)
        .regions(vec![MemRegion::kib(
            kib,
            1.0,
            AccessPattern::Sequential { stride: 64 },
        )])
        .build()
}

fn chase_profile(kib: u64) -> WorkloadProfile {
    WorkloadProfile::builder("chase", Suite::Cpu2000)
        .branches(0.05)
        .branch_behaviour(0.005, 0.9, 0.05)
        .regions(vec![MemRegion::kib(kib, 1.0, AccessPattern::PointerChase)])
        .build()
}

#[test]
fn prefetcher_rescues_streams_not_chases() {
    // An ascending stream benefits from prefetch; a pointer chase cannot.
    let base = MachineConfig::core2();
    let no_pf = MachineConfig::builder(base.clone())
        .prefetch_depth(0)
        .build();
    let run = |machine: &MachineConfig, profile: &WorkloadProfile| {
        let trace = TraceGenerator::new(profile, machine.cracking, 5);
        simulate(machine, trace, 150_000, &mut NullObserver)
    };
    let stream = stream_profile(32 * 1024);
    let stream_speedup = run(&no_pf, &stream).cpi() / run(&base, &stream).cpi();
    assert!(
        stream_speedup > 1.3,
        "prefetching should speed streams: {stream_speedup:.2}x"
    );
    let chase = chase_profile(32 * 1024);
    let chase_speedup = run(&no_pf, &chase).cpi() / run(&base, &chase).cpi();
    assert!(
        chase_speedup < 1.1,
        "prefetching cannot chase pointers: {chase_speedup:.2}x"
    );
}

#[test]
fn prefetch_converts_llc_misses_into_l2_hits() {
    let machine = MachineConfig::core2();
    let no_pf = MachineConfig::builder(machine.clone())
        .prefetch_depth(0)
        .build();
    let profile = stream_profile(64 * 1024);
    let run = |m: &MachineConfig| {
        let trace = TraceGenerator::new(&profile, m.cracking, 2);
        simulate(m, trace, 150_000, &mut NullObserver)
    };
    let with = run(&machine);
    let without = run(&no_pf);
    assert!(
        with.counters.get(Event::LlcDataMisses) * 2 < without.counters.get(Event::LlcDataMisses),
        "prefetch should absorb most demand LLC misses: {} vs {}",
        with.counters.get(Event::LlcDataMisses),
        without.counters.get(Event::LlcDataMisses)
    );
    // The lines still get fetched: L1 misses that hit L2 go *up*.
    assert!(with.counters.get(Event::L1DataMisses) > without.counters.get(Event::L1DataMisses));
}

#[test]
fn warmup_removes_compulsory_misses_for_resident_sets() {
    // A 256 KiB random set fits the Core 2's L2: after warm-up, LLC misses
    // almost vanish; without it, thousands of compulsory misses pollute.
    let machine = MachineConfig::core2();
    let profile = WorkloadProfile::builder("resident", Suite::Cpu2000)
        .regions(vec![MemRegion::kib(256, 1.0, AccessPattern::Random)])
        .build();
    let uops = 200_000;
    let cold = simulate(
        &machine,
        TraceGenerator::new(&profile, machine.cracking, 3),
        uops,
        &mut NullObserver,
    );
    let warm = simulate_warmed(
        &machine,
        TraceGenerator::new(&profile, machine.cracking, 3),
        uops,
        uops,
        &mut NullObserver,
    );
    let cold_misses = cold.counters.get(Event::LlcDataMisses);
    let warm_misses = warm.counters.get(Event::LlcDataMisses);
    assert!(
        warm_misses * 10 < cold_misses,
        "warm {warm_misses} vs cold {cold_misses}"
    );
    assert!(warm.cpi() < cold.cpi());
}

#[test]
fn warmup_measures_the_same_uop_count() {
    let machine = MachineConfig::core_i7();
    let profile = stream_profile(512);
    let r = simulate_warmed(
        &machine,
        TraceGenerator::new(&profile, machine.cracking, 1),
        40_000,
        25_000,
        &mut NullObserver,
    );
    assert_eq!(r.counters.get(Event::UopsRetired), 25_000);
    assert_eq!(r.counters.get(Event::Cycles), r.cycles);
    assert!(r.cpi() >= 0.25);
}

#[test]
fn zero_warmup_equals_plain_simulate() {
    let machine = MachineConfig::pentium4();
    let profile = chase_profile(2048);
    let a = simulate(
        &machine,
        TraceGenerator::new(&profile, machine.cracking, 9),
        30_000,
        &mut NullObserver,
    );
    let b = simulate_warmed(
        &machine,
        TraceGenerator::new(&profile, machine.cracking, 9),
        0,
        30_000,
        &mut NullObserver,
    );
    assert_eq!(a, b);
}

#[test]
fn row_buffer_rewards_spatial_locality() {
    // Dense sequential DRAM traffic reuses open rows; page-hopping random
    // traffic conflicts every time. Effective per-miss latency must differ.
    let machine = MachineConfig::builder(MachineConfig::core2())
        .prefetch_depth(0) // isolate the row-buffer effect
        .build();
    let run = |profile: &WorkloadProfile| {
        let trace = TraceGenerator::new(profile, machine.cracking, 4);
        let r = simulate(&machine, trace, 120_000, &mut NullObserver);
        let misses = r.counters.get(Event::LlcDataMisses).max(1);
        // Cycles beyond the dispatch floor, per miss.
        (r.cycles as f64 - 30_000.0) / misses as f64
    };
    let dense = stream_profile(64 * 1024); // sequential: row hits
    let sparse = WorkloadProfile::builder("sparse", Suite::Cpu2000)
        .branches(0.05)
        .branch_behaviour(0.005, 0.9, 0.05)
        .regions(vec![MemRegion::kib(128 * 1024, 1.0, AccessPattern::Random)])
        .build();
    let dense_penalty = run(&dense);
    let sparse_penalty = run(&sparse);
    assert!(
        dense_penalty < sparse_penalty,
        "row hits should be cheaper: dense {dense_penalty:.0} vs sparse {sparse_penalty:.0}"
    );
}
