//! Dispatch-stall observation hooks.
//!
//! The paper's Fig. 5 validates the model's CPI components against the
//! hardware counter architecture of Eyerman et al. (ASPLOS 2006), which
//! attributes every lost dispatch slot to its cause inside the simulator.
//! The pipeline exposes that attribution through [`DispatchObserver`]; the
//! `cpicounters` crate implements the accumulating observer that turns the
//! callbacks into ground-truth CPI stacks.

/// Why dispatch lost cycles at some point in the run.
///
/// The variants mirror the CPI components of the paper's Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallCause {
    /// L1 I-cache miss serviced by L2.
    L1InstrMiss,
    /// Instruction fetch missing the last on-chip level (DRAM fetch).
    LlcInstrMiss,
    /// I-TLB miss (page walk in the fetch path).
    ItlbMiss,
    /// Branch misprediction (resolution + front-end refill).
    BranchMispredict,
    /// ROB full behind a load missing to DRAM.
    LlcDataMiss,
    /// ROB full behind a load whose access took a D-TLB page walk.
    DtlbMiss,
    /// ROB full behind a long-latency computation or an L1/L2-resident miss
    /// chain: the paper's "resource stall" component.
    ResourceStall,
}

impl StallCause {
    /// All causes, in the order CPI stacks are reported.
    pub const ALL: [StallCause; 7] = [
        StallCause::L1InstrMiss,
        StallCause::LlcInstrMiss,
        StallCause::ItlbMiss,
        StallCause::BranchMispredict,
        StallCause::LlcDataMiss,
        StallCause::DtlbMiss,
        StallCause::ResourceStall,
    ];

    /// Stable lowercase label.
    pub fn name(self) -> &'static str {
        match self {
            StallCause::L1InstrMiss => "l1i_miss",
            StallCause::LlcInstrMiss => "llc_i_miss",
            StallCause::ItlbMiss => "itlb_miss",
            StallCause::BranchMispredict => "branch_mispredict",
            StallCause::LlcDataMiss => "llc_d_miss",
            StallCause::DtlbMiss => "dtlb_miss",
            StallCause::ResourceStall => "resource_stall",
        }
    }
}

impl std::fmt::Display for StallCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Receives dispatch-timeline events from the pipeline as a run progresses.
///
/// Implementations must be cheap: the pipeline calls
/// [`DispatchObserver::on_stall`] for every dispatch gap.
pub trait DispatchObserver {
    /// `gap` dispatch cycles were lost to `cause` (gap ≥ 1).
    fn on_stall(&mut self, gap: u64, cause: StallCause);

    /// The run finished: `cycles` total, `uops` µops dispatched on a
    /// machine of dispatch width `width`.
    fn on_finish(&mut self, cycles: u64, uops: u64, width: u32) {
        let _ = (cycles, uops, width);
    }
}

/// An observer that ignores everything (the default for plain runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl DispatchObserver for NullObserver {
    #[inline]
    fn on_stall(&mut self, _gap: u64, _cause: StallCause) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let mut names: Vec<&str> = StallCause::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), StallCause::ALL.len());
        assert_eq!(StallCause::LlcDataMiss.to_string(), "llc_d_miss");
    }

    #[test]
    fn null_observer_is_usable() {
        let mut o = NullObserver;
        o.on_stall(3, StallCause::ResourceStall);
        o.on_finish(100, 50, 4);
    }
}
