//! Branch direction prediction: a tournament predictor (bimodal + gshare
//! with a per-PC chooser), as shipped in the Alpha 21264 and approximating
//! the hybrid predictors of the modeled Intel cores.
//!
//! Predictor *quality* is a first-class experimental variable in the paper:
//! §6 observes that the Pentium 4's predictor is *more* accurate than the
//! Core 2's (MPKI 4.1 vs 5.8 on CPU2006) while the Core 2 still wins on the
//! branch CPI component thanks to its shallower pipeline — and that the
//! Core i7 reduces mispredictions again. We reproduce that ladder by giving
//! the three machine presets different table sizes and history lengths, and
//! letting misprediction counts *emerge* from prediction over the synthetic
//! branch streams.
//!
//! The bimodal side tracks each static branch's bias with no history (immune
//! to history-context dilution); the gshare side captures history-correlated
//! patterns; the chooser learns per-PC which side to trust. Table size
//! governs aliasing between static branches, so big-code workloads punish
//! the small-table machine — a real effect the paper's branch CPI components
//! reflect.

/// A tournament branch direction predictor.
///
/// # Examples
///
/// ```
/// use oosim::branch::Tournament;
///
/// let mut pred = Tournament::new(10, 8);
/// // A branch that is always taken is learned almost immediately.
/// let mut wrong = 0;
/// for _ in 0..100 {
///     if !pred.predict_and_update(0x400100, true) {
///         wrong += 1;
///     }
/// }
/// assert!(wrong <= 2);
/// ```
#[derive(Debug, Clone)]
pub struct Tournament {
    /// Per-PC 2-bit counters (no history).
    bimodal: Vec<u8>,
    /// History-indexed 2-bit counters.
    gshare: Vec<u8>,
    /// Per-PC 2-bit chooser: ≥2 trusts gshare.
    chooser: Vec<u8>,
    index_mask: u64,
    history: u64,
    history_mask: u64,
    predictions: u64,
    mispredictions: u64,
}

impl Tournament {
    /// Creates a predictor whose three tables each have `2^log2_entries`
    /// counters, with `history_bits` of global history on the gshare side.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries` is outside `1..=24` or `history_bits`
    /// exceeds `log2_entries`.
    pub fn new(log2_entries: u32, history_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&log2_entries),
            "log2_entries out of range"
        );
        assert!(
            history_bits <= log2_entries,
            "history must fit in the index"
        );
        let n = 1usize << log2_entries;
        Self {
            bimodal: vec![1; n],
            gshare: vec![1; n],
            chooser: vec![1; n], // start trusting bimodal
            index_mask: (n - 1) as u64,
            history: 0,
            history_mask: if history_bits == 0 {
                0
            } else {
                (1u64 << history_bits) - 1
            },
            predictions: 0,
            mispredictions: 0,
        }
    }

    #[inline]
    fn bump(counter: &mut u8, taken: bool) {
        *counter = match (*counter, taken) {
            (3, true) => 3,
            (c, true) => c + 1,
            (0, false) => 0,
            (c, false) => c - 1,
        };
    }

    /// Predicts the direction of the branch at `pc`, then updates all
    /// tables and the global history with the actual `taken` outcome.
    /// Returns the *predicted* direction.
    #[inline]
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let pc_idx = ((pc >> 2) & self.index_mask) as usize;
        let gs_idx = (((pc >> 2) ^ self.history) & self.index_mask) as usize;
        let bimodal_says = self.bimodal[pc_idx] >= 2;
        let gshare_says = self.gshare[gs_idx] >= 2;
        let use_gshare = self.chooser[pc_idx] >= 2;
        let predicted = if use_gshare {
            gshare_says
        } else {
            bimodal_says
        };

        self.predictions += 1;
        if predicted != taken {
            self.mispredictions += 1;
        }
        // Chooser trains toward whichever side was right (when they differ).
        if bimodal_says != gshare_says {
            Self::bump(&mut self.chooser[pc_idx], gshare_says == taken);
        }
        Self::bump(&mut self.bimodal[pc_idx], taken);
        Self::bump(&mut self.gshare[gs_idx], taken);
        self.history = ((self.history << 1) | taken as u64) & self.history_mask;
        predicted
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate over the predictor's lifetime (NaN before any
    /// prediction).
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            return f64::NAN;
        }
        self.mispredictions as f64 / self.predictions as f64
    }

    /// Resets tables, history and statistics.
    pub fn reset(&mut self) {
        self.bimodal.fill(1);
        self.gshare.fill(1);
        self.chooser.fill(1);
        self.history = 0;
        self.predictions = 0;
        self.mispredictions = 0;
    }
}

/// Backward-compatible alias: the simulator's predictor used to be a plain
/// gshare; benches and docs refer to the tournament by this name too.
pub type Gshare = Tournament;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branches() {
        let mut p = Tournament::new(12, 8);
        for i in 0..1000 {
            p.predict_and_update(0x1000 + (i % 16) * 4, true);
        }
        assert!(p.misprediction_rate() < 0.05, "{}", p.misprediction_rate());
    }

    #[test]
    fn bimodal_side_is_immune_to_history_noise() {
        // 64 static biased branches, with a noisy random branch in between:
        // a pure gshare would be diluted across history contexts; the
        // tournament's bimodal side keeps the biased ones near-perfect.
        let mut p = Tournament::new(12, 10);
        let mut x = 0x9E3779B9u64;
        let mut wrong_biased = 0;
        let mut biased_seen = 0;
        for i in 0..40_000u64 {
            let pc = 0x1000 + (i % 64) * 4;
            let dir = (pc >> 2) & 1 == 0;
            if i % 7 == 3 {
                // Interleaved noise branch.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                p.predict_and_update(0x9000, x & 1 == 1);
            }
            let got = p.predict_and_update(pc, dir);
            if i > 1000 {
                biased_seen += 1;
                if got != dir {
                    wrong_biased += 1;
                }
            }
        }
        let rate = wrong_biased as f64 / biased_seen as f64;
        assert!(rate < 0.02, "biased branches should stay learned: {rate}");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = Tournament::new(12, 10);
        let mut wrong_tail = 0;
        for i in 0..2000u64 {
            let taken = i % 2 == 0;
            let predicted = p.predict_and_update(0x2000, taken);
            if i >= 1000 && predicted != taken {
                wrong_tail += 1;
            }
        }
        assert!(
            wrong_tail < 20,
            "alternation should be learned: {wrong_tail}"
        );
    }

    #[test]
    fn random_branches_defeat_any_predictor() {
        let mut p = Tournament::new(14, 12);
        let mut x = 0x12345678u64;
        let mut wrong = 0;
        let n = 20_000;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let taken = x & 1 == 1;
            if p.predict_and_update(0x3000, taken) != taken {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / n as f64;
        assert!(rate > 0.35, "cannot beat a fair coin: {rate}");
    }

    #[test]
    fn bigger_tables_alias_less() {
        // Thousands of static branches with per-PC directions: the small
        // predictor suffers bimodal aliasing, the large one does not.
        // Per-PC *hashed* directions make aliased bimodal counters thrash
        // (partners that share an entry disagree); history length is held
        // equal so only table size varies. Plenty of instances per branch
        // so cold-start does not dominate.
        let run = |log2: u32, hist: u32| -> f64 {
            let mut p = Tournament::new(log2, hist);
            let mut x = 0xDEADBEEFu64;
            for i in 0..300_000u64 {
                let pc = 0x1000 + (i % 3000) * 4;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let bias_taken = (pc.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & 1 == 0;
                let noise = (x % 100) < 2;
                p.predict_and_update(pc, bias_taken ^ noise);
            }
            p.misprediction_rate()
        };
        let small = run(10, 6);
        let large = run(16, 6);
        assert!(
            large < small,
            "large predictor {large} should beat small {small}"
        );
    }

    #[test]
    #[should_panic(expected = "history must fit")]
    fn rejects_oversized_history() {
        let _ = Tournament::new(8, 12);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut p = Tournament::new(10, 8);
        p.predict_and_update(0x10, true);
        p.reset();
        assert_eq!(p.predictions(), 0);
        assert!(p.misprediction_rate().is_nan());
    }
}
