//! The cache/TLB hierarchy of one machine: classification of every access
//! into the level that serves it.
//!
//! The hierarchy handles *placement* (which level hits, which TLB misses);
//! *timing* — including MSHR occupancy and DRAM bandwidth, the ingredients
//! of memory-level parallelism — lives in the pipeline, which owns the
//! notion of time.

use crate::cache::Cache;
use crate::machine::MachineConfig;
use crate::tlb::Tlb;

/// Which level of the hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    /// L1 hit.
    L1,
    /// L1 miss, L2 hit.
    L2,
    /// L2 miss, L3 hit (machines with an L3 only).
    L3,
    /// Miss in every on-chip level: DRAM access.
    Memory,
}

/// Outcome of a data-side access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataOutcome {
    /// Level that served the access.
    pub level: HitLevel,
    /// Whether the D-TLB missed (page-walk penalty applies).
    pub tlb_miss: bool,
}

/// Outcome of an instruction-side access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchOutcome {
    /// Level that served the fetch (L1 = no front-end stall).
    pub level: HitLevel,
    /// Whether the I-TLB missed.
    pub tlb_miss: bool,
}

/// A hardware stream prefetcher: detects ascending-line miss streams and
/// fills ahead into the shared cache levels.
///
/// All three modeled machines shipped hardware prefetchers (the Pentium 4's
/// was the weakest, Nehalem's the most aggressive); without one, streaming
/// workloads pay a DRAM round trip per line and simulated CPIs blow far past
/// the measured ranges of the paper's Fig. 2 axes. Prefetch hits fold into
/// the model's MLP correction factor, exactly as they do on real hardware
/// (the paper's §3.3 lists prefetch-like effects among the reasons memory
/// access time is not constant).
#[derive(Debug, Clone)]
struct StreamPrefetcher {
    /// Last miss line per tracked stream.
    streams: [u64; Self::STREAMS],
    /// Confidence per stream.
    confidence: [u8; Self::STREAMS],
    /// Round-robin victim pointer.
    victim: usize,
    /// Lines fetched ahead on a confident stream (0 disables prefetching).
    depth: u64,
}

impl StreamPrefetcher {
    const STREAMS: usize = 8;

    fn new(depth: u64) -> Self {
        Self {
            streams: [u64::MAX; Self::STREAMS],
            confidence: [0; Self::STREAMS],
            victim: 0,
            depth,
        }
    }

    /// Observes a demand miss at `line`; returns how many lines ahead to
    /// prefetch (0 when the miss does not belong to a confident stream).
    fn observe(&mut self, line: u64) -> u64 {
        if self.depth == 0 {
            return 0;
        }
        for i in 0..Self::STREAMS {
            if self.streams[i] != u64::MAX && line.wrapping_sub(self.streams[i]) <= 2 {
                self.streams[i] = line;
                self.confidence[i] = (self.confidence[i] + 1).min(4);
                return if self.confidence[i] >= 2 {
                    self.depth
                } else {
                    0
                };
            }
        }
        // New stream: replace round-robin.
        self.streams[self.victim] = line;
        self.confidence[self.victim] = 0;
        self.victim = (self.victim + 1) % Self::STREAMS;
        0
    }
}

/// The full cache/TLB hierarchy of one machine instance.
///
/// # Examples
///
/// ```
/// use oosim::machine::MachineConfig;
/// use oosim::memory::{Hierarchy, HitLevel};
///
/// let mut h = Hierarchy::new(&MachineConfig::core2());
/// let first = h.load(0x1000_0000);
/// assert_eq!(first.level, HitLevel::Memory); // cold
/// let again = h.load(0x1000_0000);
/// assert_eq!(again.level, HitLevel::L1);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Option<Cache>,
    itlb: Tlb,
    dtlb: Tlb,
    prefetcher: StreamPrefetcher,
    line_bytes: u64,
}

impl Hierarchy {
    /// Instantiates the hierarchy described by `machine`.
    pub fn new(machine: &MachineConfig) -> Self {
        Self {
            l1i: Cache::new(machine.l1i.size, machine.l1i.line, machine.l1i.ways),
            l1d: Cache::new(machine.l1d.size, machine.l1d.line, machine.l1d.ways),
            l2: Cache::new(machine.l2.size, machine.l2.line, machine.l2.ways),
            l3: machine.l3.map(|g| Cache::new(g.size, g.line, g.ways)),
            itlb: Tlb::new(machine.itlb.entries, machine.itlb.ways),
            dtlb: Tlb::new(machine.dtlb.entries, machine.dtlb.ways),
            prefetcher: StreamPrefetcher::new(machine.prefetch_depth),
            line_bytes: machine.l2.line,
        }
    }

    /// Walks the shared levels (L2, then L3 if present) for an address that
    /// missed in its L1.
    fn walk_shared(&mut self, addr: u64) -> HitLevel {
        if self.l2.access(addr) {
            return HitLevel::L2;
        }
        if let Some(l3) = &mut self.l3 {
            if l3.access(addr) {
                return HitLevel::L3;
            }
        }
        HitLevel::Memory
    }

    /// Performs a load access: D-TLB, then L1D, then the shared levels.
    /// DRAM-bound misses train the stream prefetcher, which fills ahead
    /// into the shared levels.
    pub fn load(&mut self, addr: u64) -> DataOutcome {
        let tlb_miss = !self.dtlb.access(addr);
        let level = if self.l1d.access(addr) {
            HitLevel::L1
        } else {
            self.walk_shared(addr)
        };
        if level == HitLevel::Memory {
            let line = addr / self.line_bytes;
            let ahead = self.prefetcher.observe(line);
            for k in 1..=ahead {
                let target = (line + k) * self.line_bytes;
                self.l2.install(target);
                if let Some(l3) = &mut self.l3 {
                    l3.install(target);
                }
            }
        }
        DataOutcome { level, tlb_miss }
    }

    /// Performs a store access (write-allocate): updates cache/TLB state and
    /// reports where the line was found. Stores drain through the store
    /// buffer off the critical path, so the pipeline applies no latency —
    /// but the *state* effects (allocations, evictions, TLB pressure) are
    /// real.
    pub fn store(&mut self, addr: u64) -> DataOutcome {
        let tlb_miss = !self.dtlb.access(addr);
        let level = if self.l1d.access(addr) {
            HitLevel::L1
        } else {
            self.walk_shared(addr)
        };
        DataOutcome { level, tlb_miss }
    }

    /// Performs an instruction fetch access for the line containing `pc`:
    /// I-TLB, then L1I, then the shared levels.
    pub fn fetch(&mut self, pc: u64) -> FetchOutcome {
        let tlb_miss = !self.itlb.access(pc);
        let level = if self.l1i.access(pc) {
            HitLevel::L1
        } else {
            self.walk_shared(pc)
        };
        FetchOutcome { level, tlb_miss }
    }

    /// Resets all cache and TLB state (cold machine).
    pub fn reset(&mut self) {
        self.l1i.reset();
        self.l1d.reset();
        self.l2.reset();
        if let Some(l3) = &mut self.l3 {
            l3.reset();
        }
        self.itlb.reset();
        self.dtlb.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_then_warm() {
        let mut h = Hierarchy::new(&MachineConfig::pentium4());
        assert_eq!(h.load(0x4000).level, HitLevel::Memory);
        assert_eq!(h.load(0x4000).level, HitLevel::L1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let m = MachineConfig::pentium4(); // 16 KiB L1D, 1 MiB L2
        let mut h = Hierarchy::new(&m);
        h.load(0x0);
        // Sweep 64 KiB to evict line 0 from L1 but keep it in L2.
        for line in 1..1024u64 {
            h.load(line * 64);
        }
        assert_eq!(h.load(0x0).level, HitLevel::L2);
    }

    #[test]
    fn i7_has_three_levels() {
        let mut h = Hierarchy::new(&MachineConfig::core_i7());
        h.fetch(0x40_0000);
        // Evict from L1I (32 KiB) and L2 (256 KiB) by streaming 1 MiB of code.
        for line in 1..16_384u64 {
            h.fetch(0x40_0000 + line * 64);
        }
        assert_eq!(h.fetch(0x40_0000).level, HitLevel::L3);
    }

    #[test]
    fn tlb_miss_reported_independently_of_cache() {
        let mut h = Hierarchy::new(&MachineConfig::core2());
        let o = h.load(0x7000_0000);
        assert!(o.tlb_miss);
        let o2 = h.load(0x7000_0008);
        assert!(!o2.tlb_miss, "same page now translated");
        assert_eq!(o2.level, HitLevel::L1, "same line now cached");
    }

    #[test]
    fn stores_allocate() {
        let mut h = Hierarchy::new(&MachineConfig::core2());
        assert_eq!(h.store(0x9000).level, HitLevel::Memory);
        assert_eq!(
            h.load(0x9000).level,
            HitLevel::L1,
            "store allocated the line"
        );
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut h = Hierarchy::new(&MachineConfig::core2());
        h.load(0x4000);
        h.reset();
        assert_eq!(h.load(0x4000).level, HitLevel::Memory);
    }

    #[test]
    fn core2_larger_l2_catches_what_p4_misses() {
        // 2 MiB working set: fits Core 2's 4 MiB L2, busts P4's 1 MiB.
        let sweep = |mut h: Hierarchy| -> (u64, u64) {
            let lines = 2 * 1024 * 1024 / 64u64;
            let mut mem_hits = 0;
            for round in 0..3 {
                for l in 0..lines {
                    let lvl = h.load(l * 64).level;
                    if round > 0 && lvl == HitLevel::Memory {
                        mem_hits += 1;
                    }
                }
            }
            (mem_hits, lines)
        };
        let (p4_mem, _) = sweep(Hierarchy::new(&MachineConfig::pentium4()));
        let (c2_mem, _) = sweep(Hierarchy::new(&MachineConfig::core2()));
        assert!(p4_mem > 0, "P4 should keep missing to memory");
        assert_eq!(c2_mem, 0, "Core 2 should contain the set in L2");
    }
}
