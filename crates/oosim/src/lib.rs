//! A cycle-level, trace-driven superscalar out-of-order processor simulator.
//!
//! This crate is the reproduction's stand-in for the paper's *real
//! hardware*: where Eyerman et al. ran SPEC on a Pentium 4, a Core 2 and a
//! Core i7 and read hardware performance counters, we run synthetic
//! SPEC-like workloads ([`specgen`]) on simulated configurations of those
//! three machines (Tables 1–2 of the paper) and read simulated counters
//! ([`pmu`]).
//!
//! The simulator models, per machine: a front-end with I-cache/I-TLB misses
//! and branch-misprediction redirects over a configurable pipeline depth; a
//! gshare branch predictor (with per-machine size, so misprediction rates
//! are emergent); dispatch into a finite reorder buffer; data-flow issue;
//! functional-unit latencies and contention; a two- or three-level cache
//! hierarchy with TLBs; and a DRAM backend with finite MSHRs and bandwidth,
//! making memory-level parallelism an emergent, machine-bounded quantity.
//!
//! Nothing in the simulator knows about the mechanistic-empirical model
//! being studied — the model's regression parameters must *discover* the
//! simulator's behaviour from counters, exactly as the paper's model
//! discovers real silicon's behaviour.
//!
//! # Examples
//!
//! ```
//! use oosim::machine::MachineConfig;
//! use oosim::run::run_workload;
//!
//! let profile = specgen::suites::by_name("mcf.inp").unwrap();
//! let record = run_workload(&MachineConfig::core2(), &profile, 50_000, 42);
//! println!("{record}");
//! assert!(record.cpi() > 0.3);
//! ```

pub mod branch;
pub mod cache;
pub mod machine;
pub mod memory;
pub mod observer;
pub mod pipeline;
pub mod run;
pub mod tlb;

pub use machine::MachineConfig;
pub use observer::{DispatchObserver, NullObserver, StallCause};
pub use pipeline::{simulate, SimResult};
pub use run::{run_workload, run_workload_observed, DEFAULT_UOPS};
