//! Machine configurations: the three Intel processors of Table 1–2, plus a
//! builder for custom designs.
//!
//! All latencies are in core clock cycles, so frequency differences between
//! the machines are already folded in (as in the paper's Table 2: the
//! Pentium 4's 313-cycle memory latency is partly its 3.4 GHz clock).

use pmu::MachineId;
use specgen::{Cracking, UopKind};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Capacity in bytes.
    pub size: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Associativity.
    pub ways: usize,
}

impl CacheGeometry {
    /// Convenience constructor with size in KiB.
    pub const fn kib(kib: u64, line: u64, ways: usize) -> Self {
        Self {
            size: kib * 1024,
            line,
            ways,
        }
    }
}

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbGeometry {
    /// Number of page translations held.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

/// Access latencies, in cycles (the paper's Table 2 row for each machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// L1 D-cache hit (load-to-use).
    pub l1d: u64,
    /// L2 hit.
    pub l2: u64,
    /// L3 hit (ignored when the machine has no L3).
    pub l3: u64,
    /// DRAM access.
    pub mem: u64,
    /// TLB miss (page walk) penalty.
    pub tlb: u64,
}

/// Branch predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// log2 of the counter-table size.
    pub log2_entries: u32,
    /// Global history bits.
    pub history_bits: u32,
}

/// Functional-unit latencies and counts per µop class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Integer multiply latency.
    pub int_mul: u64,
    /// Integer divide latency (unpipelined).
    pub int_div: u64,
    /// FP add latency.
    pub fp_add: u64,
    /// FP multiply latency.
    pub fp_mul: u64,
    /// FP divide latency (unpipelined).
    pub fp_div: u64,
    /// Number of load ports.
    pub load_ports: usize,
}

impl FuConfig {
    /// Execution latency for a µop class, given an L1-hit load latency.
    pub fn latency(&self, kind: UopKind, l1d: u64) -> u64 {
        match kind {
            UopKind::IntAlu | UopKind::Store | UopKind::Branch => 1,
            UopKind::IntMul => self.int_mul,
            UopKind::IntDiv => self.int_div,
            UopKind::FpAdd => self.fp_add,
            UopKind::FpMul => self.fp_mul,
            UopKind::FpDiv => self.fp_div,
            UopKind::Load => l1d,
        }
    }
}

/// Full description of one simulated machine.
///
/// Use the presets ([`MachineConfig::pentium4`] etc.) for the paper's
/// machines or [`MachineConfig::builder`] for custom designs (used by the
/// ablation benches).
///
/// # Examples
///
/// ```
/// use oosim::machine::MachineConfig;
///
/// let core2 = MachineConfig::core2();
/// assert_eq!(core2.dispatch_width, 4);
/// assert_eq!(core2.frontend_depth, 14);
/// assert!(core2.l3.is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Which commercial machine this models (custom designs keep the id of
    /// the preset they started from).
    pub id: MachineId,
    /// Human-readable name.
    pub name: String,
    /// Dispatch width `D` (µops per cycle into the ROB).
    pub dispatch_width: u32,
    /// Front-end pipeline depth `c_fe` (cycles to refill after a redirect).
    pub frontend_depth: u32,
    /// Reorder buffer capacity in µops.
    pub rob_size: usize,
    /// L1 instruction cache.
    pub l1i: CacheGeometry,
    /// L1 data cache.
    pub l1d: CacheGeometry,
    /// Unified L2.
    pub l2: CacheGeometry,
    /// Optional L3 (Core i7 only among the presets).
    pub l3: Option<CacheGeometry>,
    /// Instruction TLB.
    pub itlb: TlbGeometry,
    /// Data TLB.
    pub dtlb: TlbGeometry,
    /// Access latencies.
    pub lat: Latencies,
    /// Miss-status holding registers: maximum outstanding DRAM accesses
    /// (the hardware ceiling on memory-level parallelism).
    pub mshrs: usize,
    /// Minimum cycle gap between successive DRAM data bursts (bandwidth).
    pub dram_gap: u64,
    /// Stream-prefetcher aggressiveness: lines fetched ahead on a confident
    /// ascending miss stream (0 disables prefetching).
    pub prefetch_depth: u64,
    /// Branch predictor.
    pub predictor: PredictorConfig,
    /// Functional units.
    pub fu: FuConfig,
    /// CISC cracking/fusion behaviour fed to the workload generator.
    pub cracking: Cracking,
}

impl MachineConfig {
    /// Intel Pentium 4 (Netburst, Prescott): 3-wide, 31-stage front-end,
    /// small L1s, 1 MiB L2, slow memory in cycles (3.4 GHz), aggressive
    /// µop cracking, but a comparatively *good* branch predictor.
    pub fn pentium4() -> Self {
        Self {
            id: MachineId::Pentium4,
            name: "Pentium 4 (Prescott)".into(),
            dispatch_width: 3,
            frontend_depth: 31,
            rob_size: 126,
            l1i: CacheGeometry::kib(16, 64, 4),
            l1d: CacheGeometry::kib(16, 64, 8),
            l2: CacheGeometry::kib(1024, 64, 8),
            l3: None,
            itlb: TlbGeometry {
                entries: 64,
                ways: 4,
            },
            dtlb: TlbGeometry {
                entries: 64,
                ways: 4,
            },
            lat: Latencies {
                l1d: 4,
                l2: 31,
                l3: 0,
                mem: 313,
                tlb: 70,
            },
            mshrs: 8,
            dram_gap: 12,
            prefetch_depth: 1,
            predictor: PredictorConfig {
                log2_entries: 14,
                history_bits: 12,
            },
            fu: FuConfig {
                int_mul: 10,
                int_div: 40,
                fp_add: 5,
                fp_mul: 7,
                fp_div: 40,
                load_ports: 1,
            },
            cracking: Cracking::new(1.25),
        }
    }

    /// Intel Core 2 (Conroe): 4-wide, 14-stage front-end, 32 KiB L1s,
    /// 4 MiB L2, µop fusion — but a *smaller* branch predictor than the
    /// Pentium 4 (the paper measures more mispredictions on Core 2).
    pub fn core2() -> Self {
        Self {
            id: MachineId::Core2,
            name: "Core 2 (Conroe)".into(),
            dispatch_width: 4,
            frontend_depth: 14,
            rob_size: 96,
            l1i: CacheGeometry::kib(32, 64, 8),
            l1d: CacheGeometry::kib(32, 64, 8),
            l2: CacheGeometry::kib(4096, 64, 16),
            l3: None,
            itlb: TlbGeometry {
                entries: 128,
                ways: 4,
            },
            dtlb: TlbGeometry {
                entries: 256,
                ways: 4,
            },
            lat: Latencies {
                l1d: 3,
                l2: 19,
                l3: 0,
                mem: 169,
                tlb: 30,
            },
            mshrs: 16,
            dram_gap: 8,
            prefetch_depth: 4,
            predictor: PredictorConfig {
                log2_entries: 12,
                history_bits: 8,
            },
            fu: FuConfig {
                int_mul: 3,
                int_div: 22,
                fp_add: 3,
                fp_mul: 5,
                fp_div: 18,
                load_ports: 1,
            },
            cracking: Cracking::new(0.95),
        }
    }

    /// Intel Core i7 (Nehalem, Bloomfield): 4-wide, 128-entry ROB, small
    /// fast 256 KiB L2 plus 8 MiB L3, integrated memory controller (high
    /// bandwidth, many MSHRs), best predictor of the three, macro-fusion.
    pub fn core_i7() -> Self {
        Self {
            id: MachineId::CoreI7,
            name: "Core i7 (Bloomfield)".into(),
            dispatch_width: 4,
            frontend_depth: 14,
            rob_size: 128,
            l1i: CacheGeometry::kib(32, 64, 8),
            l1d: CacheGeometry::kib(32, 64, 8),
            l2: CacheGeometry::kib(256, 64, 8),
            l3: Some(CacheGeometry::kib(8192, 64, 16)),
            itlb: TlbGeometry {
                entries: 128,
                ways: 4,
            },
            dtlb: TlbGeometry {
                entries: 512,
                ways: 4,
            },
            lat: Latencies {
                l1d: 4,
                l2: 14,
                l3: 30,
                mem: 160,
                tlb: 40,
            },
            mshrs: 32,
            dram_gap: 4,
            prefetch_depth: 8,
            predictor: PredictorConfig {
                log2_entries: 16,
                history_bits: 14,
            },
            fu: FuConfig {
                int_mul: 3,
                int_div: 20,
                fp_add: 3,
                fp_mul: 5,
                fp_div: 18,
                load_ports: 2,
            },
            cracking: Cracking::new(0.88),
        }
    }

    /// All three paper machines, in generation order.
    pub fn paper_machines() -> Vec<MachineConfig> {
        vec![Self::pentium4(), Self::core2(), Self::core_i7()]
    }

    /// The configuration for a given [`MachineId`].
    ///
    /// For the three presets this is the Table 1–2 machine. A design-space
    /// variant id (e.g. `core2+rob192+mshr32`) decodes to its base preset
    /// with the named axes overridden — the variant *name* is the full
    /// recipe, so any process that can parse the id can rebuild the
    /// machine. The decoded configuration is not validated here (sweep
    /// expansion validates before interning ids); call
    /// [`MachineConfig::validate`] before simulating untrusted ids.
    pub fn preset(id: MachineId) -> MachineConfig {
        match id {
            MachineId::Pentium4 => Self::pentium4(),
            MachineId::Core2 => Self::core2(),
            MachineId::CoreI7 => Self::core_i7(),
            MachineId::Variant(_) => Self::decode_variant(id),
        }
    }

    /// Rebuilds a variant configuration from its interned name.
    fn decode_variant(id: MachineId) -> MachineConfig {
        let name = id.name();
        let mut parts = name.split('+');
        let base: MachineId = parts
            .next()
            .expect("split is non-empty")
            .parse()
            .expect("variant names start with a preset");
        let mut config = Self::preset(base);
        for tok in parts {
            let digits = tok
                .find(|c: char| c.is_ascii_digit())
                .expect("variant tokens carry a value");
            let (axis, value) = tok.split_at(digits);
            match axis {
                "rob" => config.rob_size = value.parse().expect("digits"),
                "mshr" => config.mshrs = value.parse().expect("digits"),
                "dw" => config.dispatch_width = value.parse().expect("digits"),
                "pf" => config.prefetch_depth = value.parse().expect("digits"),
                other => unreachable!("pmu validated the token grammar, got `{other}`"),
            }
        }
        config.id = id;
        config.name = name.to_string();
        config
    }

    /// Starts a builder from this configuration (for ablations and design
    /// sweeps).
    pub fn builder(base: MachineConfig) -> MachineConfigBuilder {
        MachineConfigBuilder { config: base }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.dispatch_width == 0 || self.dispatch_width > 16 {
            return Err(format!(
                "dispatch width {} unreasonable",
                self.dispatch_width
            ));
        }
        if self.rob_size < 8 {
            return Err("ROB too small".into());
        }
        if self.mshrs == 0 {
            return Err("need at least one MSHR".into());
        }
        if self.lat.l2 == 0 || self.lat.mem <= self.lat.l2 {
            return Err("memory latency must exceed L2 latency".into());
        }
        if self.l3.is_some() && (self.lat.l3 <= self.lat.l2 || self.lat.mem <= self.lat.l3) {
            return Err("L3 latency must sit between L2 and memory".into());
        }
        Ok(())
    }
}

/// Builder over a base [`MachineConfig`], used by ablation benches to vary
/// one dimension at a time.
///
/// # Examples
///
/// ```
/// use oosim::machine::MachineConfig;
///
/// let wide = MachineConfig::builder(MachineConfig::core2())
///     .dispatch_width(6)
///     .rob_size(192)
///     .build();
/// assert_eq!(wide.dispatch_width, 6);
/// ```
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    config: MachineConfig,
}

impl MachineConfigBuilder {
    /// Sets the dispatch width.
    pub fn dispatch_width(mut self, width: u32) -> Self {
        self.config.dispatch_width = width;
        self
    }

    /// Sets the front-end pipeline depth.
    pub fn frontend_depth(mut self, depth: u32) -> Self {
        self.config.frontend_depth = depth;
        self
    }

    /// Sets the ROB capacity.
    pub fn rob_size(mut self, rob: usize) -> Self {
        self.config.rob_size = rob;
        self
    }

    /// Sets the MSHR count (memory-level-parallelism ceiling).
    pub fn mshrs(mut self, mshrs: usize) -> Self {
        self.config.mshrs = mshrs;
        self
    }

    /// Sets the stream-prefetcher depth (0 disables prefetching).
    pub fn prefetch_depth(mut self, depth: u64) -> Self {
        self.config.prefetch_depth = depth;
        self
    }

    /// Sets the predictor configuration.
    pub fn predictor(mut self, predictor: PredictorConfig) -> Self {
        self.config.predictor = predictor;
        self
    }

    /// Sets the L2 geometry.
    pub fn l2(mut self, geometry: CacheGeometry) -> Self {
        self.config.l2 = geometry;
        self
    }

    /// Sets (or removes) the L3.
    pub fn l3(mut self, geometry: Option<CacheGeometry>) -> Self {
        self.config.l3 = geometry;
        self
    }

    /// Sets access latencies.
    pub fn latencies(mut self, lat: Latencies) -> Self {
        self.config.lat = lat;
        self
    }

    /// Renames the configuration (shown in reports).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.config.name = name.into();
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MachineConfig::validate`].
    pub fn build(self) -> MachineConfig {
        if let Err(e) = self.config.validate() {
            panic!("invalid machine configuration: {e}");
        }
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_2() {
        let p4 = MachineConfig::pentium4();
        assert_eq!((p4.dispatch_width, p4.frontend_depth), (3, 31));
        assert_eq!((p4.lat.l2, p4.lat.mem, p4.lat.tlb), (31, 313, 70));
        let c2 = MachineConfig::core2();
        assert_eq!((c2.dispatch_width, c2.frontend_depth), (4, 14));
        assert_eq!((c2.lat.l2, c2.lat.mem, c2.lat.tlb), (19, 169, 30));
        let i7 = MachineConfig::core_i7();
        assert_eq!((i7.dispatch_width, i7.frontend_depth), (4, 14));
        assert_eq!(
            (i7.lat.l2, i7.lat.l3, i7.lat.mem, i7.lat.tlb),
            (14, 30, 160, 40)
        );
    }

    #[test]
    fn presets_match_table_1_cache_sizes() {
        let p4 = MachineConfig::pentium4();
        assert_eq!(p4.l2.size, 1024 * 1024);
        assert!(p4.l3.is_none());
        let c2 = MachineConfig::core2();
        assert_eq!(c2.l1d.size, 32 * 1024);
        assert_eq!(c2.l2.size, 4 * 1024 * 1024);
        let i7 = MachineConfig::core_i7();
        assert_eq!(i7.l2.size, 256 * 1024);
        assert_eq!(i7.l3.unwrap().size, 8 * 1024 * 1024);
    }

    #[test]
    fn all_presets_validate() {
        for m in MachineConfig::paper_machines() {
            m.validate().unwrap();
        }
    }

    #[test]
    fn predictor_quality_ladder() {
        // Paper §6: P4 predictor beats Core 2's; i7 beats both.
        let p4 = MachineConfig::pentium4().predictor;
        let c2 = MachineConfig::core2().predictor;
        let i7 = MachineConfig::core_i7().predictor;
        assert!(p4.log2_entries > c2.log2_entries);
        assert!(i7.log2_entries > p4.log2_entries);
    }

    #[test]
    fn cracking_ladder() {
        // Netburst cracks hardest; Nehalem fuses best.
        let p4 = MachineConfig::pentium4().cracking.factor;
        let c2 = MachineConfig::core2().cracking.factor;
        let i7 = MachineConfig::core_i7().cracking.factor;
        assert!(p4 > c2);
        assert!(c2 > i7);
    }

    #[test]
    fn builder_overrides() {
        let m = MachineConfig::builder(MachineConfig::core2())
            .mshrs(1)
            .name("core2-no-mlp")
            .build();
        assert_eq!(m.mshrs, 1);
        assert_eq!(m.name, "core2-no-mlp");
        // Base untouched elsewhere.
        assert_eq!(m.l2, MachineConfig::core2().l2);
    }

    #[test]
    #[should_panic(expected = "invalid machine")]
    fn builder_rejects_invalid() {
        let _ = MachineConfig::builder(MachineConfig::core2())
            .dispatch_width(0)
            .build();
    }

    #[test]
    fn fu_latency_table() {
        let fu = MachineConfig::core2().fu;
        assert_eq!(fu.latency(UopKind::IntAlu, 3), 1);
        assert_eq!(fu.latency(UopKind::Load, 3), 3);
        assert_eq!(fu.latency(UopKind::FpDiv, 3), 18);
    }

    #[test]
    fn preset_lookup_by_id() {
        for id in MachineId::ALL {
            assert_eq!(MachineConfig::preset(id).id, id);
        }
    }

    #[test]
    fn variant_ids_decode_to_overridden_presets() {
        let id = MachineId::variant("core2+rob192+mshr32+dw6+pf0").unwrap();
        let m = MachineConfig::preset(id);
        assert_eq!(m.id, id);
        assert_eq!(m.name, "core2+rob192+mshr32+dw6+pf0");
        assert_eq!(m.rob_size, 192);
        assert_eq!(m.mshrs, 32);
        assert_eq!(m.dispatch_width, 6);
        assert_eq!(m.prefetch_depth, 0);
        // Untouched axes keep the base preset's values.
        assert_eq!(m.l2, MachineConfig::core2().l2);
        assert_eq!(m.lat, MachineConfig::core2().lat);
        m.validate().unwrap();
    }

    #[test]
    fn variant_decode_roundtrips_through_name_parse() {
        // A process that only ever saw the *name* (CSV, wire, snapshot
        // filename) rebuilds the identical machine.
        let id = MachineId::variant("corei7+pf0").unwrap();
        let direct = MachineConfig::preset(id);
        let reparsed = MachineConfig::preset("corei7+pf0".parse().unwrap());
        assert_eq!(direct, reparsed);
        assert_eq!(reparsed.prefetch_depth, 0);
    }
}
