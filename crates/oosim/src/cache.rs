//! Set-associative cache model with LRU replacement.
//!
//! The simulator only needs tag arrays — hit/miss decisions and replacement —
//! never data. One [`Cache`] instance models one level; the
//! [`hierarchy`](crate::memory) composes levels per machine.

/// A set-associative, LRU, write-allocate tag array.
///
/// # Examples
///
/// ```
/// use oosim::cache::Cache;
///
/// // 4 KiB, 64-byte lines, 2-way.
/// let mut cache = Cache::new(4096, 64, 2);
/// assert!(!cache.access(0x1000)); // cold miss
/// assert!(cache.access(0x1000));  // hit
/// assert!(cache.access(0x1038));  // same line hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// Tag per (set, way); `u64::MAX` marks invalid.
    tags: Vec<u64>,
    /// LRU stamp per (set, way); larger = more recent.
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `size_bytes` with `line_bytes` lines and
    /// `ways`-way associativity.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, `line_bytes` is not a power of two,
    /// or the geometry is inconsistent (size not divisible into whole sets).
    pub fn new(size_bytes: u64, line_bytes: u64, ways: usize) -> Self {
        assert!(
            size_bytes > 0 && line_bytes > 0 && ways > 0,
            "zero geometry"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = size_bytes / line_bytes;
        assert!(
            lines >= ways as u64 && lines.is_multiple_of(ways as u64),
            "size/line/ways geometry inconsistent: {lines} lines, {ways} ways"
        );
        let sets = (lines / ways as u64) as usize;
        Self {
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        (self.sets * self.ways) as u64 * (1u64 << self.line_shift)
    }

    /// Looks up `addr`, updating LRU state and allocating on miss.
    /// Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line = addr >> self.line_shift;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        if let Some(way) = slots.iter().position(|&t| t == tag) {
            self.stamps[base + way] = self.tick;
            self.hits += 1;
            return true;
        }
        // Miss: replace the LRU way.
        let victim = (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("ways > 0");
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.tick;
        self.misses += 1;
        false
    }

    /// Installs the line containing `addr` without touching hit/miss
    /// statistics — used for prefetch fills, which are not demand accesses.
    /// The installed line becomes most-recently-used.
    pub fn install(&mut self, addr: u64) {
        self.tick += 1;
        let line = addr >> self.line_shift;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let base = set * self.ways;
        if let Some(way) = self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == tag)
        {
            self.stamps[base + way] = self.tick;
            return;
        }
        let victim = (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("ways > 0");
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.tick;
    }

    /// Probe without updating state: would `addr` hit?
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&tag)
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resets contents and statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = Cache::new(32 * 1024, 64, 8);
        assert_eq!(c.sets(), 64);
        assert_eq!(c.ways(), 8);
        assert_eq!(c.capacity(), 32 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_lines() {
        let _ = Cache::new(1024, 48, 2);
    }

    #[test]
    #[should_panic(expected = "geometry inconsistent")]
    fn rejects_inconsistent_geometry() {
        let _ = Cache::new(1024, 64, 3); // 16 lines do not divide into 3 ways
    }

    #[test]
    fn hit_after_miss() {
        let mut c = Cache::new(4096, 64, 2);
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn same_line_different_offset_hits() {
        let mut c = Cache::new(4096, 64, 2);
        c.access(0x1000);
        assert!(c.access(0x103F));
        assert!(!c.access(0x1040), "next line is separate");
    }

    #[test]
    fn lru_eviction_order() {
        // Direct-mapped-per-set behaviour: 2 ways, force 3 conflicting lines.
        let mut c = Cache::new(4096, 64, 2);
        let sets = c.sets() as u64;
        let conflict = |i: u64| i * sets * 64; // same set, distinct tags
        c.access(conflict(0));
        c.access(conflict(1));
        c.access(conflict(0)); // touch 0 so 1 is LRU
        c.access(conflict(2)); // evicts 1
        assert!(c.probe(conflict(0)));
        assert!(!c.probe(conflict(1)));
        assert!(c.probe(conflict(2)));
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = Cache::new(4096, 64, 4);
        // Two sweeps over 16 KiB: second sweep still misses everywhere (LRU).
        for sweep in 0..2 {
            for line in 0..256u64 {
                c.access(line * 64);
            }
            if sweep == 0 {
                assert_eq!(c.misses(), 256);
            }
        }
        assert_eq!(c.misses(), 512, "LRU gets zero reuse from a cyclic sweep");
    }

    #[test]
    fn working_set_smaller_than_capacity_fits() {
        let mut c = Cache::new(32 * 1024, 64, 8);
        for _ in 0..4 {
            for line in 0..128u64 {
                c.access(line * 64); // 8 KiB working set
            }
        }
        assert_eq!(c.misses(), 128, "only cold misses");
        assert_eq!(c.hits(), 3 * 128);
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = Cache::new(4096, 64, 2);
        c.access(0x40);
        let before = (c.hits(), c.misses());
        assert!(c.probe(0x40));
        let _ = c.probe(0x4000_0040); // miss probe must not mutate either
        assert_eq!((c.hits(), c.misses()), before);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = Cache::new(4096, 64, 2);
        c.access(0x40);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.probe(0x40));
    }
}
