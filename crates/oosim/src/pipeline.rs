//! The out-of-order superscalar pipeline model.
//!
//! This is a *timestamp-based* out-of-order model in the tradition of
//! interval simulation: instead of simulating every structure cycle by
//! cycle, each µop's dispatch, issue, completion and commit times are
//! computed from its constraints —
//!
//! * **front-end**: I-cache / I-TLB misses and branch-misprediction
//!   redirects delay availability,
//! * **dispatch bandwidth**: at most `D` µops enter the ROB per cycle,
//! * **ROB occupancy**: a µop cannot dispatch until the µop `R` slots ahead
//!   of it has committed (dispatch stalls on a full reorder buffer — the
//!   paper's resource-stall mechanism),
//! * **data flow**: a µop issues once its producers complete,
//! * **functional units**: divide units are unpipelined, FP shares a
//!   pipelined port, loads contend for load ports,
//! * **memory**: loads walk the hierarchy; DRAM accesses contend for a
//!   finite MSHR pool and DRAM bandwidth, so memory-level parallelism is an
//!   emergent, bounded quantity — exactly the property the paper's MLP
//!   correction factor (Eq. 3) exists to capture,
//! * **commit**: in order, `D` per cycle.
//!
//! The model deliberately produces the second-order behaviours that the
//! mechanistic-empirical model must *infer* through regression: variable
//! branch resolution times, workload-dependent MLP, and dependence-chain
//! resource stalls. Nothing in the simulator knows about Eq. 1–6.

use crate::branch::Gshare;
use crate::machine::MachineConfig;
use crate::memory::{Hierarchy, HitLevel};
use crate::observer::{DispatchObserver, StallCause};
use pmu::{CounterSet, Event};
use specgen::{MicroOp, UopKind};

/// Why a committed µop might block the ROB head (stored per ROB slot for
/// stall attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CommitClass {
    /// Completed promptly; a stall behind it is a plain resource stall.
    Short,
    /// Long-latency computation or on-chip cache miss.
    LongLatency,
    /// Load that took a D-TLB page walk.
    DtlbLoad,
    /// Load serviced by DRAM.
    LlcLoad,
}

/// Result of simulating a workload on a machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// The collected performance counters (includes `Event::Cycles`).
    pub counters: CounterSet,
    /// Total cycles (same as `counters.get(Event::Cycles)`, for convenience).
    pub cycles: u64,
}

impl SimResult {
    /// Measured cycles per µop.
    pub fn cpi(&self) -> f64 {
        self.counters.cpi()
    }
}

/// Maximum dependence distance the generator may emit.
const DEP_WINDOW: usize = 512;

/// Reusable per-simulation working memory: the completion/commit rings and
/// the functional-unit/MSHR availability arrays that [`simulate_warmed`]
/// would otherwise `vec!` afresh on every call.
///
/// A campaign runs hundreds of simulations back to back (103 benchmarks ×
/// 3 machines per paper run); hoisting this state into one scratch that
/// each worker thread reuses across its whole chunk removes every per-call
/// allocation from the hot path and keeps the rings cache-resident.
/// Purely an allocation cache: [`SimScratch::prepare`] resets every entry,
/// so results are bit-identical whether the scratch is fresh or reused —
/// across different machines too.
///
/// # Examples
///
/// ```
/// use oosim::machine::MachineConfig;
/// use oosim::observer::NullObserver;
/// use oosim::pipeline::{simulate, simulate_warmed_with, SimScratch};
/// use pmu::Suite;
/// use specgen::{TraceGenerator, WorkloadProfile};
///
/// let machine = MachineConfig::core2();
/// let profile = WorkloadProfile::builder("demo", Suite::Cpu2000).build();
/// let mut scratch = SimScratch::new();
/// let trace = || TraceGenerator::new(&profile, machine.cracking, 1);
/// let a = simulate_warmed_with(&machine, trace(), 0, 10_000, &mut NullObserver, &mut scratch);
/// let b = simulate(&machine, trace(), 10_000, &mut NullObserver);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Completion times of the last `rob` µops (data-flow lookups).
    done_ring: Vec<u64>,
    /// Commit time per ROB slot.
    commit_ring: Vec<u64>,
    /// Commit class per ROB slot (stall attribution).
    class_ring: Vec<CommitClass>,
    /// Earliest-free time per miss-status holding register.
    mshr: Vec<u64>,
    /// Earliest-free time per load port.
    load_ports: Vec<u64>,
}

impl SimScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes and zeroes every buffer for one run on `machine`.
    fn prepare(&mut self, machine: &MachineConfig) {
        let reset = |v: &mut Vec<u64>, len: usize| {
            v.clear();
            v.resize(len, 0);
        };
        // Power-of-two sized (≥ rob) so the per-dependence index is a
        // mask, never an integer division — the hot loop reads it up to
        // twice per µop.
        reset(&mut self.done_ring, machine.rob_size.next_power_of_two());
        reset(&mut self.commit_ring, machine.rob_size);
        reset(&mut self.mshr, machine.mshrs);
        reset(&mut self.load_ports, machine.fu.load_ports);
        self.class_ring.clear();
        self.class_ring.resize(machine.rob_size, CommitClass::Short);
    }
}

/// Simulates `uops` micro-operations of `trace` on `machine`, reporting
/// dispatch stalls to `observer`. Equivalent to [`simulate_warmed`] with no
/// warm-up: counters include all compulsory (cold) misses.
///
/// The trace is consumed lazily; if it ends early the simulation stops at
/// the trace's end. All state (caches, TLBs, predictor) starts cold.
///
/// # Examples
///
/// ```
/// use oosim::machine::MachineConfig;
/// use oosim::observer::NullObserver;
/// use oosim::pipeline::simulate;
/// use pmu::Suite;
/// use specgen::{TraceGenerator, WorkloadProfile};
///
/// let machine = MachineConfig::core2();
/// let profile = WorkloadProfile::builder("demo", Suite::Cpu2000).build();
/// let trace = TraceGenerator::new(&profile, machine.cracking, 1);
/// let result = simulate(&machine, trace, 20_000, &mut NullObserver);
/// assert!(result.cpi() > 0.25); // cannot beat the dispatch width
/// ```
///
/// # Panics
///
/// Panics if `machine` fails [`MachineConfig::validate`].
pub fn simulate<T>(
    machine: &MachineConfig,
    trace: T,
    uops: u64,
    observer: &mut dyn DispatchObserver,
) -> SimResult
where
    T: IntoIterator<Item = MicroOp>,
{
    simulate_warmed(machine, trace, 0, uops, observer)
}

/// Simulates `warmup + uops` micro-operations, but counts events and cycles
/// only over the final `uops` — the standard cache/predictor warm-up
/// discipline.
///
/// Real SPEC runs execute for hundreds of billions of instructions, so
/// compulsory misses are invisible in their counter rates; a short
/// simulation without warm-up would instead be dominated by them. The
/// observer is likewise only notified of post-warm-up stalls.
///
/// # Panics
///
/// Panics if `machine` fails [`MachineConfig::validate`].
pub fn simulate_warmed<T>(
    machine: &MachineConfig,
    trace: T,
    warmup: u64,
    uops: u64,
    observer: &mut dyn DispatchObserver,
) -> SimResult
where
    T: IntoIterator<Item = MicroOp>,
{
    simulate_warmed_with(
        machine,
        trace,
        warmup,
        uops,
        observer,
        &mut SimScratch::new(),
    )
}

/// [`simulate_warmed`] with caller-owned working memory: campaigns reuse
/// one [`SimScratch`] across hundreds of runs instead of reallocating the
/// rings per call. Bit-identical to the allocating entry points.
///
/// # Panics
///
/// Panics if `machine` fails [`MachineConfig::validate`].
pub fn simulate_warmed_with<T>(
    machine: &MachineConfig,
    trace: T,
    warmup: u64,
    uops: u64,
    observer: &mut dyn DispatchObserver,
    scratch: &mut SimScratch,
) -> SimResult
where
    T: IntoIterator<Item = MicroOp>,
{
    if let Err(e) = machine.validate() {
        panic!("invalid machine configuration: {e}");
    }
    let width = machine.dispatch_width as u64;
    let rob = machine.rob_size;
    let lat = machine.lat;

    let mut hierarchy = Hierarchy::new(machine);
    let mut predictor = Gshare::new(
        machine.predictor.log2_entries,
        machine.predictor.history_bits,
    );
    let mut counters = CounterSet::new();

    scratch.prepare(machine);
    // Slice views over the scratch: ptr/len live in registers across the
    // loop instead of re-reading Vec headers.
    //
    // `done_ring` holds the completion times of the last `rob` µops — it
    // is ROB-sized (rounded up to a power of two so indexing is a mask),
    // not DEP_WINDOW-sized: a producer `d >= rob` slots back can never
    // gate readiness. Proof: the ROB constraint forces `dispatch >=
    // rob_free = commit(i - rob)`; commit times are monotone
    // non-decreasing, so for `d >= rob` the producer's `commit(i - d) <=
    // commit(i - rob)`, and every µop's `exec_done < commit`. Hence
    // `done(i - d) < rob_free <= dispatch < dispatch + 1 <= ready` —
    // reading it was always a no-op, and skipping it is byte-identical
    // while shrinking the ring ~4×.
    let done_ring: &mut [u64] = &mut scratch.done_ring;
    let done_mask = done_ring.len() - 1;
    // Commit time and class per ROB slot (indexed i % rob): entry i holds
    // µop i - rob's values until overwritten, which is exactly what the
    // ROB-occupancy constraint needs.
    let commit_ring: &mut [u64] = &mut scratch.commit_ring;
    let class_ring: &mut [CommitClass] = &mut scratch.class_ring;
    let mshr: &mut [u64] = &mut scratch.mshr;
    let load_ports: &mut [u64] = &mut scratch.load_ports;

    // Dispatch bandwidth state.
    let mut cur_cycle = 0u64;
    let mut slots_left = width;
    // Front-end availability floor and its cause.
    let mut fe_ready = 0u64;
    let mut fe_cause = StallCause::L1InstrMiss;
    // Commit frontier.
    let mut last_commit = 0u64;
    let mut commit_slots = width;
    // Memory subsystem timing state.
    let mut last_dram_start = 0u64;
    // DRAM row-buffer state: accesses to the recently-open row are faster,
    // row conflicts slower. This makes *effective* memory latency a
    // workload-dependent quantity — one of the paper's §3.3 reasons why
    // "memory access time is not constant" that the fitted MLP correction
    // factor must absorb.
    let mut open_row = u64::MAX;
    // Functional-unit availability.
    let mut fp_port_free = 0u64;
    let mut int_div_free = 0u64;
    let mut fp_div_free = 0u64;
    // Instruction-side fetch tracking.
    let mut last_line = u64::MAX;

    let total = warmup.saturating_add(uops);
    let mut cycle_offset = 0u64;
    let mut n = 0u64;
    for op in trace {
        if n >= total {
            break;
        }
        if n == warmup && warmup > 0 {
            // Warm-up ends: forget everything counted so far, but keep all
            // microarchitectural state (caches, TLBs, predictor, timing).
            counters.reset();
            cycle_offset = last_commit;
        }
        let measuring = n >= warmup;
        let i = n as usize;

        // --- Front end: I-cache / I-TLB on line change. -------------------
        let line = op.pc >> 6;
        if line != last_line {
            last_line = line;
            let fetch = hierarchy.fetch(op.pc);
            let mut penalty = 0u64;
            if fetch.tlb_miss {
                counters.inc(Event::ItlbMisses);
                penalty += lat.tlb;
            }
            match fetch.level {
                HitLevel::L1 => {}
                HitLevel::L2 => {
                    counters.inc(Event::L1InstrMisses);
                    penalty += lat.l2;
                }
                HitLevel::L3 => {
                    counters.inc(Event::L1InstrMisses);
                    penalty += lat.l3;
                }
                HitLevel::Memory => {
                    counters.inc(Event::L1InstrMisses);
                    counters.inc(Event::LlcInstrMisses);
                    penalty += lat.mem;
                }
            }
            if penalty > 0 {
                fe_ready = fe_ready.max(cur_cycle) + penalty;
                fe_cause = if fetch.level == HitLevel::Memory {
                    StallCause::LlcInstrMiss
                } else if fetch.level != HitLevel::L1 {
                    StallCause::L1InstrMiss
                } else {
                    StallCause::ItlbMiss
                };
            }
        }

        // --- Dispatch: bandwidth, front-end, ROB occupancy. ----------------
        let rob_free = commit_ring[i % rob];
        let rob_cause = match class_ring[i % rob] {
            CommitClass::LlcLoad => StallCause::LlcDataMiss,
            CommitClass::DtlbLoad => StallCause::DtlbMiss,
            CommitClass::LongLatency | CommitClass::Short => StallCause::ResourceStall,
        };
        let earliest = fe_ready.max(rob_free);

        let mut slot_cycle = cur_cycle;
        if slots_left == 0 {
            slot_cycle += 1;
        }
        if earliest > slot_cycle {
            // Only fully-lost cycles are attributed: the partially-used
            // current cycle is already charged to the base component.
            let gap = earliest.saturating_sub(cur_cycle + 1);
            if gap > 0 && measuring {
                let cause = if fe_ready >= rob_free {
                    fe_cause
                } else {
                    rob_cause
                };
                observer.on_stall(gap, cause);
            }
            slot_cycle = earliest;
        }
        if slot_cycle != cur_cycle {
            cur_cycle = slot_cycle;
            slots_left = width;
        }
        slots_left -= 1;
        let dispatch = cur_cycle;

        // --- Data-flow readiness. ------------------------------------------
        let mut ready = dispatch + 1;
        for dep in [op.dep1, op.dep2].into_iter().flatten() {
            let d = dep.get() as usize;
            // `d >= rob` producers cannot gate readiness (see the ring's
            // sizing proof above); `DEP_WINDOW` caps manually-built ops.
            if d <= i && d < rob && d <= DEP_WINDOW {
                ready = ready.max(done_ring[(i - d) & done_mask]);
            }
        }

        // --- Issue + execute. ----------------------------------------------
        let mut class = CommitClass::Short;
        let exec_done = match op.kind {
            UopKind::IntAlu => ready + 1,
            UopKind::IntMul => ready + machine.fu.int_mul,
            UopKind::IntDiv => {
                let issue = ready.max(int_div_free);
                int_div_free = issue + machine.fu.int_div;
                class = CommitClass::LongLatency;
                int_div_free
            }
            UopKind::FpAdd | UopKind::FpMul => {
                counters.inc(Event::FpOps);
                let issue = ready.max(fp_port_free);
                fp_port_free = issue + 1;
                let l = if op.kind == UopKind::FpAdd {
                    machine.fu.fp_add
                } else {
                    machine.fu.fp_mul
                };
                if l > 3 {
                    class = CommitClass::LongLatency;
                }
                issue + l
            }
            UopKind::FpDiv => {
                counters.inc(Event::FpOps);
                let issue = ready.max(fp_div_free);
                fp_div_free = issue + machine.fu.fp_div;
                class = CommitClass::LongLatency;
                fp_div_free
            }
            UopKind::Store => {
                counters.inc(Event::Stores);
                if let Some(addr) = op.addr {
                    let outcome = hierarchy.store(addr);
                    if outcome.tlb_miss {
                        counters.inc(Event::DtlbMisses);
                    }
                }
                ready + 1
            }
            UopKind::Load => {
                counters.inc(Event::Loads);
                let port = load_ports
                    .iter_mut()
                    .min_by_key(|t| **t)
                    .expect("at least one load port");
                let issue = ready.max(*port);
                *port = issue + 1;
                let addr = op.addr.unwrap_or(0);
                let outcome = hierarchy.load(addr);
                if outcome.tlb_miss {
                    counters.inc(Event::DtlbMisses);
                }
                match outcome.level {
                    HitLevel::L1 => {
                        let mut done = issue + lat.l1d;
                        if outcome.tlb_miss {
                            done += lat.tlb;
                            class = CommitClass::DtlbLoad;
                        }
                        done
                    }
                    HitLevel::L2 => {
                        counters.inc(Event::L1DataMisses);
                        class = if outcome.tlb_miss {
                            CommitClass::DtlbLoad
                        } else {
                            CommitClass::LongLatency
                        };
                        issue + lat.l2 + if outcome.tlb_miss { lat.tlb } else { 0 }
                    }
                    HitLevel::L3 => {
                        counters.inc(Event::L2DataMisses);
                        class = if outcome.tlb_miss {
                            CommitClass::DtlbLoad
                        } else {
                            CommitClass::LongLatency
                        };
                        issue + lat.l3 + if outcome.tlb_miss { lat.tlb } else { 0 }
                    }
                    HitLevel::Memory => {
                        counters.inc(Event::L2DataMisses);
                        counters.inc(Event::LlcDataMisses);
                        class = CommitClass::LlcLoad;
                        // Page walk precedes the DRAM request.
                        let request = issue + if outcome.tlb_miss { lat.tlb } else { 0 };
                        // MSHR: wait for a free miss register.
                        let slot = mshr
                            .iter_mut()
                            .min_by_key(|t| **t)
                            .expect("at least one MSHR");
                        // DRAM bandwidth: bursts cannot start back-to-back.
                        let start = request.max(*slot).max(last_dram_start + machine.dram_gap);
                        last_dram_start = start;
                        // Row-buffer locality: hits shave latency, conflicts
                        // add a precharge+activate penalty.
                        let row = addr >> 14; // 16 KiB DRAM row
                        let effective = if row == open_row {
                            lat.mem - lat.mem / 4
                        } else {
                            lat.mem + lat.mem / 8
                        };
                        open_row = row;
                        let complete = start + effective;
                        *slot = complete;
                        complete
                    }
                }
            }
            UopKind::Branch => {
                counters.inc(Event::Branches);
                let done = ready + 1;
                if let Some(info) = op.branch {
                    let predicted = predictor.predict_and_update(op.pc, info.taken);
                    if predicted != info.taken {
                        counters.inc(Event::BranchMispredicts);
                        // Redirect: fetch restarts after resolution plus the
                        // front-end refill depth.
                        fe_ready = fe_ready.max(done + machine.frontend_depth as u64);
                        fe_cause = StallCause::BranchMispredict;
                    }
                }
                done
            }
        };

        // --- Commit: in order, `width` per cycle. --------------------------
        let mut commit = exec_done + 1;
        if commit < last_commit {
            commit = last_commit;
        }
        if commit == last_commit {
            if commit_slots == 0 {
                commit += 1;
                commit_slots = width - 1;
            } else {
                commit_slots -= 1;
            }
        } else {
            commit_slots = width - 1;
        }
        last_commit = commit;

        done_ring[i & done_mask] = exec_done;
        commit_ring[i % rob] = commit;
        class_ring[i % rob] = class;

        counters.inc(Event::UopsRetired);
        if op.macro_first {
            counters.inc(Event::InstrRetired);
        }
        n += 1;
    }

    let cycles = last_commit.saturating_sub(cycle_offset);
    counters.set(Event::Cycles, cycles);
    observer.on_finish(
        cycles,
        n.saturating_sub(warmup.min(n)),
        machine.dispatch_width,
    );
    SimResult { cycles, counters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;
    use pmu::Suite;
    use specgen::{AccessPattern, MemRegion, TraceGenerator, WorkloadProfile};

    fn run(machine: &MachineConfig, profile: &WorkloadProfile, uops: u64) -> SimResult {
        let trace = TraceGenerator::new(profile, machine.cracking, 0xBEEF);
        simulate(machine, trace, uops, &mut NullObserver)
    }

    fn small_profile() -> WorkloadProfile {
        WorkloadProfile::builder("pipe-test", Suite::Cpu2000).build()
    }

    #[test]
    fn cpi_is_at_least_inverse_width() {
        let m = MachineConfig::core2();
        let r = run(&m, &small_profile(), 50_000);
        assert!(r.cpi() >= 1.0 / m.dispatch_width as f64);
        assert!(r.cpi() < 20.0, "CPI should be sane: {}", r.cpi());
    }

    #[test]
    fn deterministic() {
        let m = MachineConfig::core_i7();
        let a = run(&m, &small_profile(), 20_000);
        let b = run(&m, &small_profile(), 20_000);
        assert_eq!(a, b);
    }

    #[test]
    fn counters_are_consistent() {
        let m = MachineConfig::core2();
        let r = run(&m, &small_profile(), 30_000);
        let c = &r.counters;
        assert_eq!(c.get(Event::UopsRetired), 30_000);
        assert!(c.get(Event::InstrRetired) <= c.get(Event::UopsRetired));
        assert!(c.get(Event::BranchMispredicts) <= c.get(Event::Branches));
        assert!(c.get(Event::LlcDataMisses) <= c.get(Event::Loads));
        assert!(c.get(Event::LlcInstrMisses) <= c.get(Event::L1InstrMisses));
        assert_eq!(c.get(Event::Cycles), r.cycles);
    }

    #[test]
    fn pointer_chase_is_slower_than_streaming() {
        // Same footprint, same mix; only the access pattern differs. The
        // chaser serialises DRAM accesses (MLP ≈ 1) and must be much slower.
        let m = MachineConfig::core2();
        let chase = WorkloadProfile::builder("chase", Suite::Cpu2000)
            .regions(vec![MemRegion::kib(
                32 * 1024,
                1.0,
                AccessPattern::PointerChase,
            )])
            .build();
        let stream = WorkloadProfile::builder("stream", Suite::Cpu2000)
            .regions(vec![MemRegion::kib(
                32 * 1024,
                1.0,
                AccessPattern::Sequential { stride: 64 },
            )])
            .build();
        let slow = run(&m, &chase, 40_000);
        let fast = run(&m, &stream, 40_000);
        // Factor 1.6: the exact margin depends on the workload RNG's value
        // stream (the in-tree `rand` shim lands at ~1.8x); the claim under
        // test is the big MLP gap, not the third digit.
        assert!(
            slow.cpi() > fast.cpi() * 1.6,
            "chase {} vs stream {}",
            slow.cpi(),
            fast.cpi()
        );
    }

    #[test]
    fn bigger_cache_removes_misses() {
        // 2 MiB working set: P4's 1 MiB LLC thrashes, Core 2's 4 MiB holds it.
        let profile = WorkloadProfile::builder("ws2m", Suite::Cpu2000)
            .regions(vec![MemRegion::kib(
                2048,
                1.0,
                AccessPattern::Sequential { stride: 64 },
            )])
            .build();
        let p4 = run(&MachineConfig::pentium4(), &profile, 400_000);
        let c2 = run(&MachineConfig::core2(), &profile, 400_000);
        // Compare per-load miss *rates*: the machines crack µops differently,
        // so absolute load counts differ for the same µop budget.
        let rate = |r: &SimResult| {
            r.counters.get(Event::LlcDataMisses) as f64 / r.counters.get(Event::Loads) as f64
        };
        assert!(
            rate(&p4) > rate(&c2) * 2.0,
            "P4 rate {} vs Core 2 rate {}",
            rate(&p4),
            rate(&c2)
        );
    }

    #[test]
    fn deep_pipeline_pays_more_per_mispredict() {
        // Branch-heavy, unpredictable workload; everything else cached.
        let profile = WorkloadProfile::builder("branchy", Suite::Cpu2000)
            .branches(0.20)
            .branch_behaviour(0.5, 0.5, 0.1)
            .regions(vec![MemRegion::kib(
                8,
                1.0,
                AccessPattern::Sequential { stride: 8 },
            )])
            .build();
        let p4 = run(&MachineConfig::pentium4(), &profile, 40_000);
        let c2 = run(&MachineConfig::core2(), &profile, 40_000);
        // Penalty per mispredict ≈ lost cycles / mispredict count; the P4's
        // 31-stage refill must show up.
        let per = |r: &SimResult, m: &MachineConfig| {
            let base = r.counters.get(Event::UopsRetired) as f64 / m.dispatch_width as f64;
            (r.cycles as f64 - base) / r.counters.get(Event::BranchMispredicts) as f64
        };
        let p4_pen = per(&p4, &MachineConfig::pentium4());
        let c2_pen = per(&c2, &MachineConfig::core2());
        assert!(
            p4_pen > c2_pen + 10.0,
            "P4 {p4_pen:.1} vs Core 2 {c2_pen:.1} cycles per mispredict"
        );
    }

    #[test]
    fn mshr_count_bounds_mlp() {
        // Streaming misses: with 1 MSHR, misses serialise.
        let profile = WorkloadProfile::builder("mlp", Suite::Cpu2000)
            .regions(vec![MemRegion::kib(
                64 * 1024,
                1.0,
                AccessPattern::Sequential { stride: 64 },
            )])
            .build();
        let base = MachineConfig::core2();
        let serial = MachineConfig::builder(base.clone()).mshrs(1).build();
        let fast = run(&base, &profile, 30_000);
        let slow = run(&serial, &profile, 30_000);
        assert!(
            slow.cpi() > fast.cpi() * 1.5,
            "serialised {} vs parallel {}",
            slow.cpi(),
            fast.cpi()
        );
    }

    #[test]
    fn big_code_stresses_the_front_end() {
        let small = WorkloadProfile::builder("smallcode", Suite::Cpu2000)
            .code(16, 0.95, 0.5)
            .build();
        let big = WorkloadProfile::builder("bigcode", Suite::Cpu2000)
            .code(1024, 0.5, 0.05)
            .build();
        let m = MachineConfig::core2();
        let a = run(&m, &small, 300_000);
        let b = run(&m, &big, 300_000);
        assert!(
            b.counters.get(Event::L1InstrMisses) > a.counters.get(Event::L1InstrMisses) * 3,
            "big-code {} vs small-code {}",
            b.counters.get(Event::L1InstrMisses),
            a.counters.get(Event::L1InstrMisses)
        );
        assert!(b.cpi() > a.cpi());
    }

    #[test]
    fn scratch_reuse_is_byte_identical_across_machines() {
        // One scratch reused across runs — including a machine switch with
        // different ROB/MSHR/port sizes — must reproduce the fresh-scratch
        // results exactly.
        let profile = small_profile();
        let mut scratch = SimScratch::new();
        for machine in [
            MachineConfig::core2(),
            MachineConfig::pentium4(),
            MachineConfig::core2(),
            MachineConfig::core_i7(),
        ] {
            let trace = || TraceGenerator::new(&profile, machine.cracking, 0xBEEF);
            let reused = simulate_warmed_with(
                &machine,
                trace(),
                5_000,
                20_000,
                &mut NullObserver,
                &mut scratch,
            );
            let fresh = simulate_warmed(&machine, trace(), 5_000, 20_000, &mut NullObserver);
            assert_eq!(reused, fresh, "{:?}", machine.id);
        }
    }

    #[test]
    fn trace_shorter_than_budget_is_handled() {
        let m = MachineConfig::core2();
        let profile = small_profile();
        let trace: Vec<MicroOp> = TraceGenerator::new(&profile, m.cracking, 1)
            .take(500)
            .collect();
        let r = simulate(&m, trace, 10_000, &mut NullObserver);
        assert_eq!(r.counters.get(Event::UopsRetired), 500);
    }

    #[test]
    fn observer_receives_stalls() {
        struct Counting {
            stalls: u64,
            cycles: u64,
            finished: bool,
        }
        impl DispatchObserver for Counting {
            fn on_stall(&mut self, gap: u64, _cause: StallCause) {
                self.stalls += gap;
            }
            fn on_finish(&mut self, cycles: u64, _uops: u64, _width: u32) {
                self.cycles = cycles;
                self.finished = true;
            }
        }
        let m = MachineConfig::pentium4();
        let profile = small_profile();
        let mut obs = Counting {
            stalls: 0,
            cycles: 0,
            finished: false,
        };
        let trace = TraceGenerator::new(&profile, m.cracking, 2);
        let r = simulate(&m, trace, 20_000, &mut obs);
        assert!(obs.finished);
        assert_eq!(obs.cycles, r.cycles);
        assert!(obs.stalls > 0, "a real workload stalls somewhere");
        assert!(obs.stalls < r.cycles, "stalls are a subset of cycles");
    }
}
