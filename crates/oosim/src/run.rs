//! High-level entry points: run one benchmark (or a whole suite) on a
//! machine and get back [`RunRecord`]s — the simulated equivalent of the
//! paper's perfex measurement campaign.

use crate::machine::MachineConfig;
use crate::observer::{DispatchObserver, NullObserver};
use crate::pipeline::{simulate_warmed_with, SimResult, SimScratch};
use pmu::RunRecord;
use specgen::{TraceGenerator, WorkloadProfile};

/// Default µop budget per benchmark run used by the experiment harness.
///
/// Real SPEC runs execute for hundreds of billions of instructions; the
/// synthetic workloads are statistically stationary, so a few million µops
/// give stable counter rates (see the stability test below).
pub const DEFAULT_UOPS: u64 = 2_000_000;

/// Runs `profile` on `machine` for `uops` micro-operations and packages the
/// counters as a [`RunRecord`].
///
/// `seed` controls workload generation; experiments use a fixed global seed
/// so every machine sees the same macro-instruction stream (cracked
/// per-machine, as on real hardware).
///
/// # Examples
///
/// ```
/// use oosim::machine::MachineConfig;
/// use oosim::run::run_workload;
/// use pmu::Suite;
/// use specgen::WorkloadProfile;
///
/// let profile = WorkloadProfile::builder("quick", Suite::Cpu2000).build();
/// let record = run_workload(&MachineConfig::core2(), &profile, 10_000, 42);
/// assert_eq!(record.benchmark(), "quick");
/// assert!(record.cpi() > 0.0);
/// ```
pub fn run_workload(
    machine: &MachineConfig,
    profile: &WorkloadProfile,
    uops: u64,
    seed: u64,
) -> RunRecord {
    run_workload_observed(machine, profile, uops, seed, &mut NullObserver)
}

/// Like [`run_workload`] but with an explicit warm-up budget in µops
/// (`run_workload` warms for `uops`, i.e. a 2× total cost per run).
/// Stationary workloads often reach steady-state counter rates well before
/// a full measurement-length warm-up; campaigns that verify this can halve
/// their simulation bill.
pub fn run_workload_warmed(
    machine: &MachineConfig,
    profile: &WorkloadProfile,
    warmup: u64,
    uops: u64,
    seed: u64,
) -> RunRecord {
    run_workload_with(
        machine,
        profile,
        warmup,
        uops,
        seed,
        &mut NullObserver,
        &mut SimScratch::new(),
    )
}

/// Like [`run_workload`] but reports dispatch stalls to `observer` (used by
/// the ground-truth CPI-stack accounting in `cpicounters`).
///
/// A warm-up phase of `uops` further micro-operations precedes the
/// measured region, so counter rates reflect steady-state behaviour rather
/// than compulsory misses — mirroring how real SPEC measurements, running
/// for hundreds of billions of instructions, never see their cold start.
pub fn run_workload_observed(
    machine: &MachineConfig,
    profile: &WorkloadProfile,
    uops: u64,
    seed: u64,
    observer: &mut dyn DispatchObserver,
) -> RunRecord {
    run_workload_with(
        machine,
        profile,
        uops,
        uops,
        seed,
        observer,
        &mut SimScratch::new(),
    )
}

/// The fully-general entry point behind every `run_workload*` variant:
/// explicit warm-up budget, stall observer, and caller-owned
/// [`SimScratch`] so campaign loops reuse one set of simulation buffers
/// across hundreds of runs. Bit-identical to the convenience wrappers.
pub fn run_workload_with(
    machine: &MachineConfig,
    profile: &WorkloadProfile,
    warmup: u64,
    uops: u64,
    seed: u64,
    observer: &mut dyn DispatchObserver,
    scratch: &mut SimScratch,
) -> RunRecord {
    let trace = TraceGenerator::new(profile, machine.cracking, seed);
    let result: SimResult = simulate_warmed_with(machine, trace, warmup, uops, observer, scratch);
    RunRecord::new(
        profile.name.clone(),
        profile.suite,
        machine.id,
        result.counters,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu::{Event, Suite};

    #[test]
    fn record_carries_identity() {
        let m = MachineConfig::pentium4();
        let p = WorkloadProfile::builder("idcheck", Suite::Cpu2006).build();
        let r = run_workload(&m, &p, 5_000, 7);
        assert_eq!(r.benchmark(), "idcheck");
        assert_eq!(r.suite(), Suite::Cpu2006);
        assert_eq!(r.machine(), m.id);
        assert_eq!(r.counters().get(Event::UopsRetired), 5_000);
    }

    #[test]
    fn explicit_full_warmup_matches_default() {
        let m = MachineConfig::core2();
        let p = WorkloadProfile::builder("warmcheck", Suite::Cpu2000).build();
        let implicit = run_workload(&m, &p, 20_000, 9);
        let explicit = run_workload_warmed(&m, &p, 20_000, 20_000, 9);
        assert_eq!(implicit, explicit);
        // A shorter warm-up measures a different (colder) region.
        let colder = run_workload_warmed(&m, &p, 2_000, 20_000, 9);
        assert_ne!(implicit, colder);
    }

    #[test]
    fn rates_stabilise_with_length() {
        // CPI at 400k µops should be close to CPI at 800k µops: the
        // synthetic workloads are stationary enough for counter-rate use.
        let m = MachineConfig::core2();
        let p = WorkloadProfile::builder("stability", Suite::Cpu2000).build();
        let short = run_workload(&m, &p, 400_000, 3).cpi();
        let long = run_workload(&m, &p, 800_000, 3).cpi();
        assert!(
            (short - long).abs() / long < 0.12,
            "short {short} vs long {long}"
        );
    }
}
