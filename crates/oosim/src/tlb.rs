//! Translation lookaside buffer model.
//!
//! A TLB is structurally a small set-associative cache of page translations;
//! we wrap [`Cache`](crate::cache::Cache) with page-granular addressing.

use crate::cache::Cache;

/// Page size used throughout the simulator (4 KiB, as on the modeled
/// machines' default configuration).
pub const PAGE_BYTES: u64 = 4096;

/// A set-associative TLB over 4 KiB pages.
///
/// # Examples
///
/// ```
/// use oosim::tlb::Tlb;
///
/// let mut tlb = Tlb::new(64, 4);
/// assert!(!tlb.access(0x1000));          // cold miss
/// assert!(tlb.access(0x1FFF));           // same page: hit
/// assert!(!tlb.access(0x2000));          // next page: miss
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    inner: Cache,
}

impl Tlb {
    /// Creates a TLB with `entries` translations and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero, not divisible by `ways`, or `ways` is
    /// zero.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries > 0 && ways > 0, "zero TLB geometry");
        assert!(
            entries.is_multiple_of(ways),
            "entries must divide into ways"
        );
        Self {
            inner: Cache::new(entries as u64 * PAGE_BYTES, PAGE_BYTES, ways),
        }
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.inner.sets() * self.inner.ways()
    }

    /// Translates the page of `addr`; returns `true` on TLB hit. Misses
    /// install the translation (page walk modeled as a fixed penalty by the
    /// pipeline, not here).
    pub fn access(&mut self, addr: u64) -> bool {
        self.inner.access(addr)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// Resets contents and statistics.
    pub fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_geometry() {
        let t = Tlb::new(64, 4);
        assert_eq!(t.entries(), 64);
    }

    #[test]
    fn page_granularity() {
        let mut t = Tlb::new(16, 4);
        t.access(0x0000);
        assert!(t.access(0x0FFF), "same page");
        assert!(!t.access(0x1000), "next page misses");
    }

    #[test]
    fn capacity_pressure() {
        let mut t = Tlb::new(16, 4);
        // Touch 64 distinct pages cyclically: every access misses under LRU.
        for round in 0..3 {
            for page in 0..64u64 {
                let hit = t.access(page * PAGE_BYTES);
                if round > 0 {
                    assert!(!hit, "64-page cyclic working set thrashes a 16-entry TLB");
                }
            }
        }
        assert_eq!(t.misses(), 192);
    }

    #[test]
    fn small_working_set_fits() {
        let mut t = Tlb::new(64, 4);
        for _ in 0..10 {
            for page in 0..32u64 {
                t.access(page * PAGE_BYTES);
            }
        }
        assert_eq!(t.misses(), 32, "only cold misses");
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn rejects_ragged_geometry() {
        let _ = Tlb::new(10, 4);
    }
}
