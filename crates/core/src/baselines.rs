//! The paper's purely empirical comparison models: linear regression and a
//! one-hidden-layer artificial neural network, over *the exact same inputs*
//! as the gray-box model (§4).
//!
//! These exist to reproduce Fig. 4's conclusion: on the training suite all
//! three approaches look similar; under cross-suite validation the
//! empirical models overfit and the mechanistic-empirical model does not.

use crate::inputs::ModelInputs;
use pmu::RunRecord;
use regress::ann::{AnnModel, AnnOptions};
use regress::linear::LinearModel;
use std::fmt;

/// Which empirical model family a baseline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// Ordinary least squares on the raw counter rates.
    Linear,
    /// Multi-layer perceptron with one tanh hidden layer (paper §4).
    NeuralNetwork,
}

impl fmt::Display for BaselineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineKind::Linear => f.write_str("linear regression"),
            BaselineKind::NeuralNetwork => f.write_str("neural network"),
        }
    }
}

/// A fitted empirical baseline model.
#[derive(Debug, Clone)]
pub enum EmpiricalModel {
    /// Fitted OLS model.
    Linear(LinearModel),
    /// Fitted MLP.
    NeuralNetwork(AnnModel),
}

/// Error fitting a baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineFitError {
    what: String,
}

impl fmt::Display for BaselineFitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline fit failed: {}", self.what)
    }
}

impl std::error::Error for BaselineFitError {}

impl EmpiricalModel {
    /// Fits a baseline of the requested kind to a training set.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineFitError`] when the underlying regression cannot
    /// be solved (degenerate training sets).
    pub fn fit(kind: BaselineKind, records: &[RunRecord]) -> Result<Self, BaselineFitError> {
        let features: Vec<Vec<f64>> = records
            .iter()
            .map(|r| ModelInputs::from_record(r).features())
            .collect();
        let targets: Vec<f64> = records.iter().map(|r| r.cpi()).collect();
        match kind {
            BaselineKind::Linear => LinearModel::fit(&features, &targets, 1e-8)
                .map(EmpiricalModel::Linear)
                .map_err(|e| BaselineFitError {
                    what: e.to_string(),
                }),
            BaselineKind::NeuralNetwork => {
                let opts = AnnOptions::default();
                AnnModel::fit(&features, &targets, &opts)
                    .map(EmpiricalModel::NeuralNetwork)
                    .map_err(|e| BaselineFitError {
                        what: e.to_string(),
                    })
            }
        }
    }

    /// Predicts CPI for one run record.
    pub fn predict_record(&self, record: &RunRecord) -> f64 {
        let features = ModelInputs::from_record(record).features();
        match self {
            EmpiricalModel::Linear(m) => m.predict(&features),
            EmpiricalModel::NeuralNetwork(m) => m.predict(&features),
        }
    }

    /// The family this model belongs to.
    pub fn kind(&self) -> BaselineKind {
        match self {
            EmpiricalModel::Linear(_) => BaselineKind::Linear,
            EmpiricalModel::NeuralNetwork(_) => BaselineKind::NeuralNetwork,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workbench::SimSource;
    use oosim::machine::MachineConfig;

    fn records() -> Vec<RunRecord> {
        let machine = MachineConfig::core2();
        let suite: Vec<_> = specgen::suites::cpu2000().into_iter().take(14).collect();
        SimSource::new()
            .suite(suite)
            .uops(50_000)
            .seed(3)
            .collect_config(&machine)
    }

    #[test]
    fn linear_fits_training_set_reasonably() {
        let rs = records();
        let m = EmpiricalModel::fit(BaselineKind::Linear, &rs).unwrap();
        let mean_err: f64 = rs
            .iter()
            .map(|r| ((m.predict_record(r) - r.cpi()) / r.cpi()).abs())
            .sum::<f64>()
            / rs.len() as f64;
        assert!(mean_err < 0.35, "training error {mean_err}");
        assert_eq!(m.kind(), BaselineKind::Linear);
    }

    #[test]
    fn ann_fits_training_set_well() {
        let rs = records();
        let m = EmpiricalModel::fit(BaselineKind::NeuralNetwork, &rs).unwrap();
        let mean_err: f64 = rs
            .iter()
            .map(|r| ((m.predict_record(r) - r.cpi()) / r.cpi()).abs())
            .sum::<f64>()
            / rs.len() as f64;
        assert!(mean_err < 0.30, "training error {mean_err}");
        assert_eq!(m.kind(), BaselineKind::NeuralNetwork);
    }

    #[test]
    fn kinds_display() {
        assert_eq!(BaselineKind::Linear.to_string(), "linear regression");
        assert_eq!(BaselineKind::NeuralNetwork.to_string(), "neural network");
    }
}
