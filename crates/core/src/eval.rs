//! Evaluation harnesses: accuracy, robustness and baseline comparison —
//! the machinery behind Fig. 2, 3 and 4.

use crate::baselines::{BaselineKind, EmpiricalModel};
use crate::fit::{FitError, FitOptions, InferredModel};
use crate::params::MicroarchParams;
use pmu::RunRecord;
use regress::metrics::{error_cdf, relative_error, ErrorSummary};

/// Per-benchmark prediction outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Benchmark–input name.
    pub benchmark: String,
    /// Measured CPI (hardware counters).
    pub measured: f64,
    /// Model-predicted CPI.
    pub predicted: f64,
}

impl Prediction {
    /// Absolute relative error of this prediction.
    pub fn error(&self) -> f64 {
        relative_error(self.predicted, self.measured)
    }
}

/// Evaluates a fitted gray-box model over a record set.
pub fn evaluate_model(model: &InferredModel, records: &[RunRecord]) -> Vec<Prediction> {
    records
        .iter()
        .map(|r| Prediction {
            benchmark: r.benchmark().to_owned(),
            measured: r.cpi(),
            predicted: model.predict_record(r),
        })
        .collect()
}

/// Evaluates a fitted empirical baseline over a record set.
pub fn evaluate_baseline(model: &EmpiricalModel, records: &[RunRecord]) -> Vec<Prediction> {
    records
        .iter()
        .map(|r| Prediction {
            benchmark: r.benchmark().to_owned(),
            measured: r.cpi(),
            predicted: model.predict_record(r),
        })
        .collect()
}

/// Summarises predictions into the paper's error statistics.
pub fn summarize(predictions: &[Prediction]) -> ErrorSummary {
    let errors: Vec<f64> = predictions.iter().map(Prediction::error).collect();
    ErrorSummary::from_errors(&errors)
}

/// Sorted error CDF over predictions — the curves of Fig. 3.
pub fn prediction_cdf(predictions: &[Prediction]) -> Vec<(f64, f64)> {
    let errors: Vec<f64> = predictions.iter().map(Prediction::error).collect();
    error_cdf(&errors)
}

/// Fits on `train`, evaluates on `test` — one arm of the paper's
/// cross-validation experiments (train CPU2000 / test CPU2006 etc.).
///
/// # Errors
///
/// Propagates [`FitError`] from the underlying fit.
pub fn cross_validate_model(
    arch: &MicroarchParams,
    train: &[RunRecord],
    test: &[RunRecord],
    opts: &FitOptions,
) -> Result<Vec<Prediction>, FitError> {
    let model = InferredModel::fit(arch, train, opts)?;
    Ok(evaluate_model(&model, test))
}

/// The three-way comparison of Fig. 4 for one machine and one train/test
/// split: mechanistic-empirical vs ANN vs linear regression, mean absolute
/// relative errors.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Mean error of the gray-box model.
    pub mechanistic_empirical: f64,
    /// Mean error of the ANN baseline.
    pub neural_network: f64,
    /// Mean error of the linear-regression baseline.
    pub linear_regression: f64,
}

impl Comparison {
    /// Runs the comparison: all three models fitted on `train`, evaluated
    /// on `test` (pass the same slice twice for the no-cross-validation
    /// arm).
    ///
    /// # Panics
    ///
    /// Panics if any model fails to fit — the experiment harness treats an
    /// unfittable configuration as a setup bug.
    pub fn run(
        arch: &MicroarchParams,
        train: &[RunRecord],
        test: &[RunRecord],
        opts: &FitOptions,
    ) -> Self {
        let me = InferredModel::fit(arch, train, opts).expect("gray-box fit");
        let ann = EmpiricalModel::fit(BaselineKind::NeuralNetwork, train).expect("ann fit");
        let lin = EmpiricalModel::fit(BaselineKind::Linear, train).expect("linear fit");
        Self {
            mechanistic_empirical: summarize(&evaluate_model(&me, test)).mean,
            neural_network: summarize(&evaluate_baseline(&ann, test)).mean,
            linear_regression: summarize(&evaluate_baseline(&lin, test)).mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workbench::SimSource;
    use oosim::machine::MachineConfig;

    fn records(take: usize, seed: u64) -> Vec<RunRecord> {
        let machine = MachineConfig::core2();
        let suite: Vec<_> = specgen::suites::cpu2000().into_iter().take(take).collect();
        SimSource::new()
            .suite(suite)
            .uops(50_000)
            .seed(seed)
            .collect_config(&machine)
    }

    #[test]
    fn predictions_carry_errors() {
        let rs = records(12, 1);
        let arch = MicroarchParams::from_machine(&MachineConfig::core2());
        let model = InferredModel::fit(&arch, &rs, &FitOptions::quick()).unwrap();
        let preds = evaluate_model(&model, &rs);
        assert_eq!(preds.len(), rs.len());
        let summary = summarize(&preds);
        assert!(summary.mean < 0.5, "in-sample error {summary}");
        let cdf = prediction_cdf(&preds);
        assert_eq!(cdf.len(), preds.len());
    }

    #[test]
    fn cross_validation_runs() {
        let train = records(12, 1);
        let test = records(12, 99);
        let arch = MicroarchParams::from_machine(&MachineConfig::core2());
        let preds = cross_validate_model(&arch, &train, &test, &FitOptions::quick()).unwrap();
        assert_eq!(preds.len(), test.len());
    }

    #[test]
    fn comparison_produces_three_numbers() {
        let rs = records(12, 1);
        let arch = MicroarchParams::from_machine(&MachineConfig::core2());
        let c = Comparison::run(&arch, &rs, &rs, &FitOptions::quick());
        assert!(c.mechanistic_empirical.is_finite());
        assert!(c.neural_network.is_finite());
        assert!(c.linear_regression.is_finite());
    }
}
