//! CPI-delta stacks: where did the performance difference between two
//! machines come from? (Fig. 6 of the paper.)
//!
//! A delta stack subtracts machine A's CPI stack from machine B's for the
//! same program. Because the machines crack x86 instructions into different
//! µop counts, deltas are computed in **cycles per macro-instruction**
//! (CPI×µops-per-instruction), which is also what lets the "µop fusion"
//! bar exist at all.
//!
//! Beyond the overall stack, the model's structure lets each interesting
//! component be split into its factors (paper §6):
//!
//! * the **branch** component into misprediction *counts*, branch
//!   *resolution time* and front-end *pipeline depth* — this is how the
//!   paper shows the Core 2 beating the Pentium 4 on branches *despite
//!   mispredicting more*,
//! * the **last-level cache** component into miss *counts*, *MLP* and
//!   memory *latency* — this is how the paper shows Core i7's extra cache
//!   sometimes removing only misses that MLP had already hidden.
//!
//! Every split is an exact decomposition: the factor terms sum to the
//! component's delta (a first-order "bridge" decomposition, old→new).

use crate::fit::InferredModel;
use crate::inputs::ModelInputs;
use pmu::RunRecord;
use std::fmt;

/// One machine's fitted model plus one benchmark's measurement on it — the
/// per-side ingredients of a delta.
#[derive(Debug, Clone)]
struct Side {
    /// µops per macro-instruction.
    upi: f64,
    /// Per-instruction miss rates (mpµ × upi).
    mpi_br: f64,
    mpi_llcd: f64,
    /// Stack pieces.
    cbr: f64,
    cfe: f64,
    mlp: f64,
    c_mem: f64,
    width: f64,
    /// Per-instruction CPI stack components.
    icache_pi: f64,
    memory_pi: f64,
    branch_pi: f64,
    other_pi: f64,
}

impl Side {
    fn build(model: &InferredModel, record: &RunRecord) -> Side {
        let inputs = ModelInputs::from_record(record);
        let stack = model.stack_for(&inputs);
        let upi = record.counters().uops_per_instr();
        Side {
            upi,
            mpi_br: inputs.mpu_br * upi,
            mpi_llcd: inputs.mpu_dl2 * upi,
            cbr: stack.branch_resolution,
            cfe: model.arch().fe_depth,
            mlp: stack.mlp,
            c_mem: model.arch().c_mem,
            width: model.arch().width,
            icache_pi: (stack.l1i + stack.llc_i + stack.itlb) * upi,
            memory_pi: (stack.llc_d + stack.dtlb) * upi,
            branch_pi: stack.branch * upi,
            other_pi: stack.resource * upi,
        }
    }
}

/// The overall CPI-delta stack (Fig. 6, top row). Components are new-minus-
/// old in cycles per macro-instruction: negative values are improvements.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverallDelta {
    /// Change from dispatch width (`upi_new · (1/D_new − 1/D_old)`).
    pub width: f64,
    /// Change from µop cracking/fusion (`(upi_new − upi_old)/D_old`).
    pub fusion: f64,
    /// Change in the I-side components (L1I + LLC-I + I-TLB).
    pub icache: f64,
    /// Change in the branch misprediction component.
    pub branch: f64,
    /// Change in the memory components (LLC-D + D-TLB).
    pub memory: f64,
    /// Change in the resource-stall component ("other" in the paper).
    pub other: f64,
}

impl OverallDelta {
    /// Total CPI change per macro-instruction (sum of all components).
    pub fn total(&self) -> f64 {
        self.width + self.fusion + self.icache + self.branch + self.memory + self.other
    }

    /// Components as `(name, value)` pairs.
    pub fn components(&self) -> [(&'static str, f64); 6] {
        [
            ("width", self.width),
            ("uop_fusion", self.fusion),
            ("icache", self.icache),
            ("branch", self.branch),
            ("memory", self.memory),
            ("other", self.other),
        ]
    }
}

/// The branch component's factor split (Fig. 6, middle row).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BranchDelta {
    /// Effect of the change in misprediction counts.
    pub mispredictions: f64,
    /// Effect of the change in branch resolution time.
    pub resolution: f64,
    /// Effect of the change in front-end pipeline depth.
    pub pipeline_depth: f64,
}

impl BranchDelta {
    /// Total branch-component change (equals the overall stack's branch
    /// entry).
    pub fn total(&self) -> f64 {
        self.mispredictions + self.resolution + self.pipeline_depth
    }

    /// Components as `(name, value)` pairs.
    pub fn components(&self) -> [(&'static str, f64); 3] {
        [
            ("mispredictions", self.mispredictions),
            ("resolution_time", self.resolution),
            ("pipeline_depth", self.pipeline_depth),
        ]
    }
}

/// The last-level-cache component's factor split (Fig. 6, bottom row).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemoryDelta {
    /// Effect of the change in LLC miss counts.
    pub misses: f64,
    /// Effect of the change in memory-level parallelism.
    pub mlp: f64,
    /// Effect of the change in memory latency.
    pub latency: f64,
}

impl MemoryDelta {
    /// Total LLC-component change.
    pub fn total(&self) -> f64 {
        self.misses + self.mlp + self.latency
    }

    /// Components as `(name, value)` pairs.
    pub fn components(&self) -> [(&'static str, f64); 3] {
        [
            ("miss_count", self.misses),
            ("mlp", self.mlp),
            ("latency", self.latency),
        ]
    }
}

/// All three delta views for one comparison.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeltaStacks {
    /// Overall component deltas.
    pub overall: OverallDelta,
    /// Branch factor split.
    pub branch: BranchDelta,
    /// LLC factor split.
    pub memory: MemoryDelta,
}

impl fmt::Display for DeltaStacks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ{:+.3} cycles/instr:", self.overall.total())?;
        for (name, v) in self.overall.components() {
            write!(f, " {name}:{v:+.3}")?;
        }
        Ok(())
    }
}

/// Builds the delta stacks for one benchmark measured on two machines.
///
/// `old`/`new` order matters: components are `new − old`, so negative means
/// the new machine improved.
///
/// # Panics
///
/// Panics if the two records are for different benchmarks — a delta between
/// different programs is meaningless.
pub fn delta_stack(
    old_model: &InferredModel,
    old_record: &RunRecord,
    new_model: &InferredModel,
    new_record: &RunRecord,
) -> DeltaStacks {
    assert_eq!(
        old_record.benchmark(),
        new_record.benchmark(),
        "delta stacks compare the same benchmark on two machines"
    );
    let a = Side::build(old_model, old_record);
    let b = Side::build(new_model, new_record);

    let overall = OverallDelta {
        width: b.upi * (1.0 / b.width - 1.0 / a.width),
        fusion: (b.upi - a.upi) / a.width,
        icache: b.icache_pi - a.icache_pi,
        branch: b.branch_pi - a.branch_pi,
        memory: b.memory_pi - a.memory_pi,
        other: b.other_pi - a.other_pi,
    };
    // Exact bridge decomposition of the branch component:
    //   mpi·(cbr + cfe): counts at old costs, then each cost at new counts.
    let branch = BranchDelta {
        mispredictions: (b.mpi_br - a.mpi_br) * (a.cbr + a.cfe),
        resolution: b.mpi_br * (b.cbr - a.cbr),
        pipeline_depth: b.mpi_br * (b.cfe - a.cfe),
    };
    // Exact bridge decomposition of the LLC component: mpi·c_mem/MLP.
    let memory = MemoryDelta {
        misses: (b.mpi_llcd - a.mpi_llcd) * a.c_mem / a.mlp,
        mlp: b.mpi_llcd * a.c_mem * (1.0 / b.mlp - 1.0 / a.mlp),
        latency: b.mpi_llcd * (b.c_mem - a.c_mem) / b.mlp,
    };
    DeltaStacks {
        overall,
        branch,
        memory,
    }
}

/// Averages per-benchmark delta stacks over a suite (records paired by
/// benchmark name; unpaired records are skipped).
///
/// # Panics
///
/// Panics if no benchmark names match between the two record sets.
pub fn suite_delta(
    old_model: &InferredModel,
    old_records: &[RunRecord],
    new_model: &InferredModel,
    new_records: &[RunRecord],
) -> DeltaStacks {
    let mut acc = DeltaStacks::default();
    let mut n = 0usize;
    for old in old_records {
        let Some(new) = new_records
            .iter()
            .find(|r| r.benchmark() == old.benchmark())
        else {
            continue;
        };
        let d = delta_stack(old_model, old, new_model, new);
        acc.overall.width += d.overall.width;
        acc.overall.fusion += d.overall.fusion;
        acc.overall.icache += d.overall.icache;
        acc.overall.branch += d.overall.branch;
        acc.overall.memory += d.overall.memory;
        acc.overall.other += d.overall.other;
        acc.branch.mispredictions += d.branch.mispredictions;
        acc.branch.resolution += d.branch.resolution;
        acc.branch.pipeline_depth += d.branch.pipeline_depth;
        acc.memory.misses += d.memory.misses;
        acc.memory.mlp += d.memory.mlp;
        acc.memory.latency += d.memory.latency;
        n += 1;
    }
    assert!(n > 0, "no benchmarks in common between the two record sets");
    let k = n as f64;
    acc.overall.width /= k;
    acc.overall.fusion /= k;
    acc.overall.icache /= k;
    acc.overall.branch /= k;
    acc.overall.memory /= k;
    acc.overall.other /= k;
    acc.branch.mispredictions /= k;
    acc.branch.resolution /= k;
    acc.branch.pipeline_depth /= k;
    acc.memory.misses /= k;
    acc.memory.mlp /= k;
    acc.memory.latency /= k;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::{FitOptions, InferredModel};
    use crate::params::MicroarchParams;
    use crate::workbench::SimSource;
    use oosim::machine::MachineConfig;

    fn fitted(machine: &MachineConfig, take: usize) -> (InferredModel, Vec<RunRecord>) {
        let suite: Vec<_> = specgen::suites::cpu2000().into_iter().take(take).collect();
        let records = SimSource::new()
            .suite(suite)
            .uops(50_000)
            .seed(11)
            .collect_config(machine);
        let arch = MicroarchParams::from_machine(machine);
        let model = InferredModel::fit(&arch, &records, &FitOptions::quick()).unwrap();
        (model, records)
    }

    #[test]
    fn branch_split_sums_to_branch_delta() {
        let (m_old, r_old) = fitted(&MachineConfig::pentium4(), 12);
        let (m_new, r_new) = fitted(&MachineConfig::core2(), 12);
        for (a, b) in r_old.iter().zip(&r_new) {
            let d = delta_stack(&m_old, a, &m_new, b);
            assert!(
                (d.branch.total() - d.overall.branch).abs() < 1e-9,
                "{}: {} vs {}",
                a.benchmark(),
                d.branch.total(),
                d.overall.branch
            );
        }
    }

    #[test]
    fn width_plus_fusion_equals_base_delta() {
        let (m_old, r_old) = fitted(&MachineConfig::pentium4(), 12);
        let (m_new, r_new) = fitted(&MachineConfig::core2(), 12);
        for (a, b) in r_old.iter().zip(&r_new) {
            let d = delta_stack(&m_old, a, &m_new, b);
            let base_old = a.counters().uops_per_instr() / 3.0;
            let base_new = b.counters().uops_per_instr() / 4.0;
            assert!((d.overall.width + d.overall.fusion - (base_new - base_old)).abs() < 1e-9);
        }
    }

    #[test]
    fn core2_improves_over_pentium4_overall() {
        let (m_old, r_old) = fitted(&MachineConfig::pentium4(), 12);
        let (m_new, r_new) = fitted(&MachineConfig::core2(), 12);
        let d = suite_delta(&m_old, &r_old, &m_new, &r_new);
        assert!(d.overall.total() < 0.0, "Core 2 should improve on P4: {d}");
        // The pipeline-depth factor must be a big win (31 → 14 stages).
        assert!(d.branch.pipeline_depth < 0.0);
    }

    #[test]
    #[should_panic(expected = "same benchmark")]
    fn mismatched_benchmarks_panic() {
        let (m, rs) = fitted(&MachineConfig::core2(), 12);
        let _ = delta_stack(&m, &rs[0], &m, &rs[1]);
    }

    #[test]
    fn suite_delta_averages() {
        let (m_old, r_old) = fitted(&MachineConfig::core2(), 12);
        // Same machine twice: all deltas must vanish.
        let d = suite_delta(&m_old, &r_old, &m_old, &r_old);
        assert!(d.overall.total().abs() < 1e-9);
        assert!(d.branch.total().abs() < 1e-9);
        assert!(d.memory.total().abs() < 1e-9);
    }

    #[test]
    fn display_has_signs() {
        let (m, rs) = fitted(&MachineConfig::core2(), 12);
        let d = suite_delta(&m, &rs, &m, &rs);
        assert!(d.to_string().contains("Δ"));
    }
}
