//! Model-estimated CPI stacks — the paper's headline capability: stacks on
//! hardware whose counters cannot measure them directly.

use std::fmt;

/// A CPI stack estimated by the mechanistic-empirical model: each term of
/// Eq. 1 divided by `N`, so the components sum to the predicted CPI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpiStack {
    /// Base component `1/D` — useful work.
    pub base: f64,
    /// L1 I-cache miss component (`mpµ_L1I · c_L2`).
    pub l1i: f64,
    /// I-side last-level miss component (`mpµ_L2I · c_mem`).
    pub llc_i: f64,
    /// I-TLB component (`mpµ_ITLB · c_TLB`).
    pub itlb: f64,
    /// Branch misprediction component (`mpµ_br · (c_br + c_fe)`).
    pub branch: f64,
    /// Long-latency load component (`mpµ_DL2 · c_mem / MLP`).
    pub llc_d: f64,
    /// D-TLB component (`mpµ_DTLB · c_TLB / MLP`).
    pub dtlb: f64,
    /// Resource stall component (Eq. 4).
    pub resource: f64,
    /// The fitted branch resolution time `c_br` behind the branch component
    /// (exposed for delta stacks, which split the branch bar into counts,
    /// resolution and pipeline depth).
    pub branch_resolution: f64,
    /// The fitted MLP correction behind the memory components (exposed for
    /// delta stacks, which split the memory bar into counts, MLP and
    /// latency).
    pub mlp: f64,
}

impl CpiStack {
    /// Sum of all components: the model's predicted CPI.
    pub fn total(&self) -> f64 {
        self.base
            + self.l1i
            + self.llc_i
            + self.itlb
            + self.branch
            + self.llc_d
            + self.dtlb
            + self.resource
    }

    /// Components as `(name, value)` pairs in reporting order (the
    /// auxiliary `branch_resolution`/`mlp` diagnostics are not components).
    pub fn components(&self) -> [(&'static str, f64); 8] {
        [
            ("base", self.base),
            ("l1i_miss", self.l1i),
            ("llc_i_miss", self.llc_i),
            ("itlb_miss", self.itlb),
            ("branch_mispredict", self.branch),
            ("llc_d_miss", self.llc_d),
            ("dtlb_miss", self.dtlb),
            ("resource_stall", self.resource),
        ]
    }

    /// The fraction of predicted CPI lost to miss events (everything except
    /// the base component).
    pub fn overhead_fraction(&self) -> f64 {
        1.0 - self.base / self.total()
    }
}

impl fmt::Display for CpiStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CPI {:.3} =", self.total())?;
        for (name, value) in self.components() {
            if value > 0.0005 {
                write!(f, " {name}:{value:.3}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> CpiStack {
        CpiStack {
            base: 0.25,
            l1i: 0.02,
            llc_i: 0.01,
            itlb: 0.005,
            branch: 0.15,
            llc_d: 0.40,
            dtlb: 0.03,
            resource: 0.10,
            branch_resolution: 12.0,
            mlp: 2.5,
        }
    }

    #[test]
    fn total_sums_components() {
        let s = stack();
        let sum: f64 = s.components().iter().map(|(_, v)| v).sum();
        assert!((s.total() - sum).abs() < 1e-12);
        assert!((s.total() - 0.965).abs() < 1e-12);
    }

    #[test]
    fn overhead_fraction() {
        let s = stack();
        assert!((s.overhead_fraction() - (1.0 - 0.25 / 0.965)).abs() < 1e-12);
    }

    #[test]
    fn display_skips_negligible() {
        let mut s = stack();
        s.itlb = 0.0;
        let text = s.to_string();
        assert!(text.contains("llc_d_miss"));
        assert!(!text.contains("itlb"));
    }
}
