//! CSV export of model outputs for external plotting tools.
//!
//! The report crate renders figures as text; for publication-quality
//! plotting, these exporters dump the same numbers as CSV: per-benchmark
//! predictions (Fig. 2's points) and per-benchmark CPI stacks (the bar
//! heights behind Fig. 6's aggregates).

use crate::fit::InferredModel;
use pmu::RunRecord;
use std::fmt::Write as _;

/// CSV of `benchmark, measured_cpi, predicted_cpi, rel_error` per record —
/// the Fig. 2 scatter as data.
pub fn predictions_csv(model: &InferredModel, records: &[RunRecord]) -> String {
    let mut out = String::from("benchmark,measured_cpi,predicted_cpi,rel_error\n");
    for r in records {
        let measured = r.cpi();
        let predicted = model.predict_record(r);
        let _ = writeln!(
            out,
            "{},{measured},{predicted},{}",
            r.benchmark(),
            (predicted - measured).abs() / measured
        );
    }
    out
}

/// CSV of the full per-benchmark CPI stack (component columns) per record.
pub fn stacks_csv(model: &InferredModel, records: &[RunRecord]) -> String {
    let mut out = String::from(
        "benchmark,base,l1i_miss,llc_i_miss,itlb_miss,branch_mispredict,\
         llc_d_miss,dtlb_miss,resource_stall,total,branch_resolution,mlp\n",
    );
    for r in records {
        let s = model.cpi_stack(r);
        let _ = write!(out, "{}", r.benchmark());
        for (_, v) in s.components() {
            let _ = write!(out, ",{v}");
        }
        let _ = writeln!(out, ",{},{},{}", s.total(), s.branch_resolution, s.mlp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::FitOptions;
    use crate::params::MicroarchParams;
    use crate::workbench::SimSource;
    use oosim::machine::MachineConfig;

    fn fitted() -> (InferredModel, Vec<RunRecord>) {
        let machine = MachineConfig::core2();
        let suite: Vec<_> = specgen::suites::cpu2000().into_iter().take(12).collect();
        let records = SimSource::new()
            .suite(suite)
            .uops(20_000)
            .seed(4)
            .collect_config(&machine);
        let arch = MicroarchParams::from_machine(&machine);
        let model = InferredModel::fit(&arch, &records, &FitOptions::quick()).unwrap();
        (model, records)
    }

    #[test]
    fn predictions_csv_has_row_per_record() {
        let (model, records) = fitted();
        let csv = predictions_csv(&model, &records);
        assert_eq!(csv.lines().count(), records.len() + 1);
        assert!(csv.starts_with("benchmark,measured_cpi"));
        // Rows parse back to numbers.
        for line in csv.lines().skip(1) {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), 4);
            assert!(fields[1].parse::<f64>().unwrap() > 0.0);
        }
    }

    #[test]
    fn stacks_csv_components_sum_to_total() {
        let (model, records) = fitted();
        let csv = stacks_csv(&model, &records);
        for line in csv.lines().skip(1) {
            let fields: Vec<f64> = line
                .split(',')
                .skip(1)
                .map(|f| f.parse().unwrap())
                .collect();
            let parts: f64 = fields[..8].iter().sum();
            let total = fields[8];
            assert!((parts - total).abs() < 1e-9);
        }
    }
}
