//! The mechanistic-empirical ("gray-box") processor performance model of
//! Eyerman, Hoste and Eeckhout (ISPASS 2011) — the paper's contribution.
//!
//! The model estimates total cycles from performance-counter data through a
//! parameterized formula derived from mechanistic interval modeling
//! (Eq. 1), with three submodels whose ten parameters are inferred by
//! nonlinear regression (Eq. 2–6): the branch resolution time, the
//! memory-level-parallelism (MLP) correction factor, and the resource-stall
//! component. Because every term of Eq. 1 is attributable to a cause, a
//! fitted model yields **CPI stacks** on hardware that has no stack-capable
//! counters — and **CPI-delta stacks** that explain where performance
//! differences between machines come from (Fig. 6).
//!
//! Module map:
//!
//! * [`params`] — machine-level inputs (Table 2) and the ten `b`-parameters,
//! * [`inputs`] — counter-derived per-benchmark rates (`mpµ_x`, `fp`, CPI),
//! * [`equations`] — Eq. 1–6 as pure functions,
//! * [`stack`] — model-estimated CPI stacks,
//! * [`fit`] — model inference by relative-squared-error regression,
//! * [`eval`] — accuracy/robustness evaluation harnesses (Fig. 2–4),
//! * [`baselines`] — the purely empirical comparison models (linear
//!   regression, ANN) over the same inputs,
//! * [`delta`] — CPI-delta stacks between machines (Fig. 6),
//! * [`stability`] — bootstrap parameter-stability diagnostics,
//! * [`export`] — CSV dumps of predictions and stacks for external plots,
//! * [`workbench`] — the one-shot collect → fit → stacks/delta → export
//!   pipeline builder,
//! * [`service`] — the long-lived serving layer: [`CpiService`] batches
//!   requests from many concurrent clients over a sharded worker pool,
//!   memoizing fitted models in an LRU [`service::ModelCache`];
//!   [`Workbench::fit`](workbench::Collected::fit) itself runs on top of
//!   it, so there is one fitting code path. Its [`service::proto`]
//!   submodule is the serve-session protocol codec (stdio *and* TCP
//!   fronts, binary framing for bulk stacks) and [`service::persist`] is
//!   the durable model store that lets a restarted service warm up
//!   without refitting.
//!
//! # Examples
//!
//! The whole Fig. 1 flow — collect, fit, stacks — through the unified
//! [`workbench`] pipeline:
//!
//! ```
//! use memodel::workbench::{SimSource, Workbench};
//! use memodel::FitOptions;
//! use oosim::machine::MachineConfig;
//! use pmu::{MachineId, Suite};
//!
//! let suite: Vec<_> = specgen::suites::cpu2000().into_iter().take(12).collect();
//! let fitted = Workbench::new()
//!     .machine(MachineConfig::core2())
//!     .source(SimSource::new().suite(suite).uops(40_000).seed(42))
//!     .fit_options(FitOptions::quick())
//!     .collect()
//!     .unwrap()
//!     .fit()
//!     .unwrap();
//! let group = fitted.group(MachineId::Core2, Suite::Cpu2000).unwrap();
//! for (benchmark, stack) in group.stacks() {
//!     println!("{benchmark}: {stack}");
//! }
//! ```

pub mod baselines;
pub mod delta;
pub mod equations;
pub mod eval;
pub mod export;
pub mod fit;
pub mod inputs;
pub mod params;
pub mod service;
pub mod stability;
pub mod stack;
pub mod workbench;

pub use fit::{FitError, FitOptions, InferredModel};
pub use inputs::ModelInputs;
pub use params::{MicroarchParams, ModelParams};
pub use service::{
    CpiClient, CpiService, ModelKey, RefitMode, RefitPolicy, Request, Response, ServiceConfig,
    ServiceError, ServiceStats, TenantId,
};
pub use stack::CpiStack;
pub use workbench::{
    CounterSource, CsvSource, PipelineError, RecordsSource, SimSource, SourceError, Workbench,
};
