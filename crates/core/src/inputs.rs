//! Counter-derived model inputs: the per-µop rates of Eq. 1–6.

use pmu::{Event, RunRecord};
use std::fmt;

/// The application×machine inputs of the model, all derived from one run's
/// performance counters (the paper's §3.1 second parameter type).
///
/// Rates are per committed micro-operation, following the paper's `mpµ_x`
/// notation. The measured CPI is carried along as the regression target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelInputs {
    /// Branch mispredictions per µop (`mpµ_br`).
    pub mpu_br: f64,
    /// L1 I-cache misses per µop (`m_L1I$ / N`).
    pub mpu_l1i: f64,
    /// I-side last-level misses per µop (`m_L2I$ / N`).
    pub mpu_llci: f64,
    /// I-TLB misses per µop (`m_ITLB / N`).
    pub mpu_itlb: f64,
    /// L1 D-cache load misses that hit in L2, per µop (`mpµ_DL1`).
    pub mpu_dl1: f64,
    /// Last-level-cache load misses per µop (`mpµ_DL2` — the paper's "L2"
    /// means the last on-chip level).
    pub mpu_dl2: f64,
    /// D-TLB misses per µop (`mpµ_DTLB`).
    pub mpu_dtlb: f64,
    /// Fraction of µops that are floating-point (`fp`).
    pub fp: f64,
    /// Measured cycles per µop — the regression target.
    pub measured_cpi: f64,
}

impl ModelInputs {
    /// Derives the inputs from a completed run record.
    ///
    /// # Panics
    ///
    /// Panics if the record retired no µops (empty measurement).
    pub fn from_record(record: &RunRecord) -> Self {
        let c = record.counters();
        assert!(
            c.get(Event::UopsRetired) > 0,
            "run record has no retired µops"
        );
        Self {
            mpu_br: c.per_uop(Event::BranchMispredicts),
            mpu_l1i: c.per_uop(Event::L1InstrMisses),
            mpu_llci: c.per_uop(Event::LlcInstrMisses),
            mpu_itlb: c.per_uop(Event::ItlbMisses),
            mpu_dl1: c.per_uop(Event::L1DataMisses),
            mpu_dl2: c.per_uop(Event::LlcDataMisses),
            mpu_dtlb: c.per_uop(Event::DtlbMisses),
            fp: c.per_uop(Event::FpOps),
            measured_cpi: c.cpi(),
        }
    }

    /// The feature vector handed to the *empirical* baseline models — "the
    /// exact same input as mechanistic-empirical modeling" (paper §4).
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.mpu_br,
            self.mpu_l1i,
            self.mpu_llci,
            self.mpu_itlb,
            self.mpu_dl1,
            self.mpu_dl2,
            self.mpu_dtlb,
            self.fp,
        ]
    }

    /// Names of [`ModelInputs::features`] entries, for reports.
    pub fn feature_names() -> [&'static str; 8] {
        [
            "mpu_br", "mpu_l1i", "mpu_llci", "mpu_itlb", "mpu_dl1", "mpu_dl2", "mpu_dtlb", "fp",
        ]
    }

    /// Validates that every rate is finite and non-negative.
    pub fn is_sane(&self) -> bool {
        self.features()
            .iter()
            .chain([&self.measured_cpi])
            .all(|v| v.is_finite() && *v >= 0.0)
    }
}

impl fmt::Display for ModelInputs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpi={:.3} br={:.2e} l1i={:.2e} dl2={:.2e} dtlb={:.2e} fp={:.2}",
            self.measured_cpi, self.mpu_br, self.mpu_l1i, self.mpu_dl2, self.mpu_dtlb, self.fp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu::{CounterSet, MachineId, Suite};

    fn record() -> RunRecord {
        let mut c = CounterSet::new();
        c.add(Event::Cycles, 2_000);
        c.add(Event::UopsRetired, 1_000);
        c.add(Event::BranchMispredicts, 5);
        c.add(Event::L1InstrMisses, 4);
        c.add(Event::LlcInstrMisses, 1);
        c.add(Event::ItlbMisses, 2);
        c.add(Event::L1DataMisses, 30);
        c.add(Event::LlcDataMisses, 10);
        c.add(Event::DtlbMisses, 8);
        c.add(Event::FpOps, 200);
        RunRecord::new("x", Suite::Cpu2000, MachineId::Core2, c)
    }

    #[test]
    fn rates_are_per_uop() {
        let i = ModelInputs::from_record(&record());
        assert!((i.measured_cpi - 2.0).abs() < 1e-12);
        assert!((i.mpu_br - 0.005).abs() < 1e-12);
        assert!((i.mpu_dl2 - 0.010).abs() < 1e-12);
        assert!((i.fp - 0.2).abs() < 1e-12);
        assert!(i.is_sane());
    }

    #[test]
    fn features_align_with_names() {
        let i = ModelInputs::from_record(&record());
        assert_eq!(i.features().len(), ModelInputs::feature_names().len());
    }

    #[test]
    #[should_panic(expected = "no retired µops")]
    fn empty_record_panics() {
        let r = RunRecord::new("y", Suite::Cpu2000, MachineId::Core2, CounterSet::new());
        let _ = ModelInputs::from_record(&r);
    }

    #[test]
    fn display_is_compact() {
        let text = ModelInputs::from_record(&record()).to_string();
        assert!(text.contains("cpi=2.000"));
    }
}
