//! The multi-node serving tier behind `cpistack cluster`.
//!
//! A [`ClusterRouter`] accepts client connections speaking the exact same
//! line protocol (and binstack framing) as a single `cpistack serve`
//! node, consistent-hashes `(tenant, machine)` onto N backend nodes via a
//! [`HashRing`], and proxies each request/response over the existing TCP
//! transport. Clients cannot tell the router from a node: every golden
//! transcript replays byte-exact through it.
//!
//! Three layers stack up here:
//!
//! - **Routing** — [`HashRing`] with virtual nodes for balance; each
//!   session pins commands without a machine argument (`stats`, `help`,
//!   errors) to its *focus node* — the last node a machine-bearing
//!   command routed to — so a session's counters accumulate in one place.
//! - **Replication** — after a successful model-bearing command the
//!   router pulls the fresh snapshot from the owner (`pullsnap`, a hidden
//!   node-to-node verb) and pushes it to the owner's ring successors
//!   (`pushsnap`). Snapshots carry the records digest, so a replica only
//!   ever warm-loads when its bytes match the records a survivor holds —
//!   staleness detection is free.
//! - **Membership** — a health prober marks unreachable nodes
//!   [`NodeHealth::Down`] (typed as [`ClusterError::NodeDown`]), draining
//!   takes a node out of rotation explicitly, and routing always filters
//!   to live nodes. When a node dies, its keys reroute to the successor,
//!   which serves the dead node's tenants from replicated snapshots with
//!   zero re-fits.
//!
//! [`ClusterHarness`] boots N real TCP nodes plus a router on `:0` ports
//! inside one process, which is how the tier-1 suite kills a node and
//! watches failover happen without any external orchestration.

use super::auth::TokenRegistry;
use super::persist::fnv64_update;
use super::poller::{self, Dispatch, LoopConfig, Poller, ServeBackend};
use super::proto::{
    self, LineEvent, SessionSpec, TcpServer, TcpServerConfig, TimedLineReader,
    DEFAULT_POLL_INTERVAL,
};
use super::sweep::{self, SweepGrid, SweepSpec};
use super::{CpiService, ServiceConfig};
use crate::fit::FitOptions;
use pmu::{MachineId, Suite};
use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A consistent-hash ring over named nodes, with virtual nodes for
/// balance. Keys are `(tenant, machine)` pairs; a key's owner is the
/// first node clockwise from the key's hash point, so removing a node
/// moves only that node's keys (minimal disruption) — the invariant
/// failover correctness rests on, property-tested in
/// `tests/ring_properties.rs`.
///
/// ```
/// use memodel::service::cluster::HashRing;
/// let mut ring = HashRing::new(64);
/// ring.add("node-0");
/// ring.add("node-1");
/// ring.add("node-2");
/// let owner = ring.node_for("alpha", "core2").unwrap().to_owned();
/// ring.remove(&owner);
/// let fallback = ring.node_for("alpha", "core2").unwrap();
/// assert_ne!(fallback, owner, "the key moved to a survivor");
/// ```
#[derive(Debug, Clone)]
pub struct HashRing {
    virtual_nodes: usize,
    nodes: Vec<String>,
    /// `(point hash, index into nodes)`, sorted by hash.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// An empty ring placing `virtual_nodes` points per node (minimum 1;
    /// 64 is a good default — balance tightens as the count grows).
    pub fn new(virtual_nodes: usize) -> Self {
        Self {
            virtual_nodes: virtual_nodes.max(1),
            nodes: Vec::new(),
            points: Vec::new(),
        }
    }

    /// Adds a node (idempotent).
    pub fn add(&mut self, node: &str) {
        if self.nodes.iter().any(|n| n == node) {
            return;
        }
        self.nodes.push(node.to_owned());
        self.rebuild();
    }

    /// Removes a node; keys it owned move to their next-clockwise
    /// survivor, all other keys stay put.
    pub fn remove(&mut self, node: &str) {
        if let Some(i) = self.nodes.iter().position(|n| n == node) {
            self.nodes.remove(i);
            self.rebuild();
        }
    }

    fn rebuild(&mut self) {
        // Point hashes depend only on the node *name*, never on ring
        // membership — that independence is what makes disruption
        // minimal when the member set changes.
        self.points.clear();
        for (i, node) in self.nodes.iter().enumerate() {
            for v in 0..self.virtual_nodes {
                self.points.push((point_hash(node, v), i));
            }
        }
        self.points.sort_unstable();
    }

    /// The member names, in insertion order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The owner of `(tenant, machine)`: the first node clockwise from
    /// the key's hash point. `None` on an empty ring.
    pub fn node_for(&self, tenant: &str, machine: &str) -> Option<&str> {
        self.node_for_filtered(tenant, machine, |_| true)
    }

    /// Like [`HashRing::node_for`], but skipping nodes `admit` rejects —
    /// this is how routing walks past dead or draining members to the
    /// key's live successor.
    pub fn node_for_filtered(
        &self,
        tenant: &str,
        machine: &str,
        admit: impl Fn(&str) -> bool,
    ) -> Option<&str> {
        self.ordered(tenant, machine, admit).into_iter().next()
    }

    /// Up to `n` distinct successors after the key's owner, in ring
    /// order — the replica set for the key.
    pub fn successors(&self, tenant: &str, machine: &str, n: usize) -> Vec<&str> {
        self.ordered(tenant, machine, |_| true)
            .into_iter()
            .skip(1)
            .take(n)
            .collect()
    }

    /// Every admitted node, deduplicated, in clockwise ring order
    /// starting at the key's hash point. The first entry is the key's
    /// (admitted) owner, the rest its failover/replica chain.
    pub fn ordered(&self, tenant: &str, machine: &str, admit: impl Fn(&str) -> bool) -> Vec<&str> {
        let mut out = Vec::new();
        if self.points.is_empty() {
            return out;
        }
        let key = key_hash(tenant, machine);
        let start = self.points.partition_point(|(h, _)| *h < key);
        let mut seen = vec![false; self.nodes.len()];
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            if !seen[node] {
                seen[node] = true;
                if admit(&self.nodes[node]) {
                    out.push(self.nodes[node].as_str());
                }
            }
        }
        out
    }
}

/// FNV-1a over `tenant ++ NUL ++ machine` — NUL-separated so
/// `("ab", "c")` and `("a", "bc")` never collide structurally — then
/// avalanched: raw FNV of short strings clusters in the low bits, which
/// would skew ring balance badly.
fn key_hash(tenant: &str, machine: &str) -> u64 {
    let h = fnv64_update(0xcbf2_9ce4_8422_2325, tenant.as_bytes());
    let h = fnv64_update(h, &[0]);
    mix64(fnv64_update(h, machine.as_bytes()))
}

/// The hash point of one virtual node.
fn point_hash(node: &str, index: usize) -> u64 {
    let h = fnv64_update(0xcbf2_9ce4_8422_2325, node.as_bytes());
    let h = fnv64_update(h, &[0]);
    mix64(fnv64_update(h, index.to_string().as_bytes()))
}

/// SplitMix64's finalizer: a full-avalanche bit mixer, so every input
/// bit diffuses across the whole point — what keeps virtual nodes
/// spread evenly around the ring.
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A member's health as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Reachable; in the routing rotation.
    Alive,
    /// Administratively removed from rotation (still reachable — the
    /// prober leaves draining nodes alone).
    Draining,
    /// Unreachable; keys reroute to ring successors until a probe sees
    /// it come back.
    Down,
}

/// What went wrong inside the cluster tier. Client-visible failures are
/// rendered in-band as `err:` lines; the typed variants exist for the
/// router's own failover logic and for tests.
#[derive(Debug)]
pub enum ClusterError {
    /// A routed backend could not be reached (and reconnecting failed).
    NodeDown {
        /// The member that failed.
        node: String,
        /// The underlying I/O failure.
        detail: String,
    },
    /// No live backend remains for the request.
    NoBackends,
    /// A node name the cluster map has never heard of.
    UnknownNode {
        /// The offending name.
        node: String,
    },
    /// A partitioned sweep lost part of its grid: the surviving
    /// variants' lines (and a partial summary) were already streamed
    /// in-band before this terminator, which names exactly what is
    /// missing and why.
    SweepPartial {
        /// Expansion-order names of the variants whose slice failed.
        lost: Vec<String>,
        /// The failure that took the slice out (a dead node, or the
        /// backend's own error line).
        detail: String,
    },
    /// Client-side transport failure (ends the proxy session).
    Io(std::io::Error),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NodeDown { node, detail } => {
                write!(f, "node `{node}` is down ({detail})")
            }
            ClusterError::NoBackends => write!(f, "no live backend nodes"),
            ClusterError::UnknownNode { node } => write!(f, "unknown node `{node}`"),
            ClusterError::SweepPartial { lost, detail } => {
                write!(f, "sweep partial: lost {} ({detail})", lost.join(" "))
            }
            ClusterError::Io(e) => write!(f, "client transport error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> Self {
        ClusterError::Io(e)
    }
}

/// One member in the cluster map.
#[derive(Debug, Clone)]
struct NodeInfo {
    name: String,
    addr: SocketAddr,
    health: NodeHealth,
}

/// The ring plus per-node health — the router's single shared view of
/// membership.
#[derive(Debug)]
struct ClusterMap {
    ring: HashRing,
    nodes: Vec<NodeInfo>,
}

impl ClusterMap {
    fn new(backends: &[(String, SocketAddr)], virtual_nodes: usize) -> Self {
        let mut ring = HashRing::new(virtual_nodes);
        let mut nodes = Vec::with_capacity(backends.len());
        for (name, addr) in backends {
            ring.add(name);
            nodes.push(NodeInfo {
                name: name.clone(),
                addr: *addr,
                health: NodeHealth::Alive,
            });
        }
        Self { ring, nodes }
    }

    fn info(&self, name: &str) -> Option<&NodeInfo> {
        self.nodes.iter().find(|n| n.name == name)
    }

    fn alive(&self, name: &str) -> bool {
        self.info(name)
            .is_some_and(|n| n.health == NodeHealth::Alive)
    }

    fn set_health(&mut self, name: &str, health: NodeHealth) -> Result<(), ClusterError> {
        match self.nodes.iter_mut().find(|n| n.name == name) {
            Some(node) => {
                node.health = health;
                Ok(())
            }
            None => Err(ClusterError::UnknownNode {
                node: name.to_owned(),
            }),
        }
    }

    /// The live owner of `(tenant, machine)` — dead and draining members
    /// are walked past, so after a failure this *is* the failover target.
    fn route(&self, tenant: &str, machine: &str) -> Result<NodeInfo, ClusterError> {
        self.ring
            .node_for_filtered(tenant, machine, |n| self.alive(n))
            .and_then(|name| self.info(name))
            .cloned()
            .ok_or(ClusterError::NoBackends)
    }

    /// Every live member in ring order from the key — owner first, then
    /// the failover/replica chain.
    fn ordered_alive(&self, tenant: &str, machine: &str) -> Vec<NodeInfo> {
        self.ring
            .ordered(tenant, machine, |n| self.alive(n))
            .into_iter()
            .filter_map(|name| self.info(name))
            .cloned()
            .collect()
    }

    fn statuses(&self) -> Vec<(String, NodeHealth)> {
        self.nodes
            .iter()
            .map(|n| (n.name.clone(), n.health))
            .collect()
    }
}

/// Router-side knobs. Protocol-visible settings (banner, idle timeout,
/// connection cap, poll tick) mirror [`TcpServerConfig`] so the router
/// fronts clients exactly like a node would; the rest shape replication
/// and health probing.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Greeting line sent on connect (match the nodes' banner to stay
    /// transcript-transparent).
    pub banner: String,
    /// Client connections idle longer than this are closed in-band;
    /// `None` disables the timeout.
    pub idle_timeout: Option<Duration>,
    /// Client connections beyond this are refused with an immediate
    /// in-band `err: busy` and a close.
    pub max_connections: usize,
    /// Timer granularity, as in [`TcpServerConfig::poll_interval`].
    pub poll_interval: Duration,
    /// Which connection engine fronts clients, as in
    /// [`TcpServerConfig::backend`].
    pub backend: ServeBackend,
    /// Ring successors each key's snapshots replicate to (0 disables
    /// replication — and with it, warm failover).
    pub replicas: usize,
    /// Virtual nodes per member on the hash ring.
    pub virtual_nodes: usize,
    /// How often the health prober connects to each member; `None`
    /// disables probing (failures are still detected on first use).
    pub probe_interval: Option<Duration>,
    /// Per-backend connect budget.
    pub connect_timeout: Duration,
    /// Per-response read budget on backend connections. Generous by
    /// default: a cold fit can take seconds, and a hung backend is
    /// eventually reaped as `NodeDown` when this expires.
    pub io_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            banner: String::new(),
            idle_timeout: Some(Duration::from_secs(300)),
            max_connections: 64,
            poll_interval: DEFAULT_POLL_INTERVAL,
            backend: ServeBackend::default(),
            replicas: 1,
            virtual_nodes: 64,
            probe_interval: Some(Duration::from_secs(1)),
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(120),
        }
    }
}

impl RouterConfig {
    /// Defaults with a greeting line.
    pub fn new(banner: impl Into<String>) -> Self {
        Self {
            banner: banner.into(),
            ..Self::default()
        }
    }

    /// Sets (or disables) the client idle timeout.
    pub fn with_idle_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Sets the client connection cap (minimum 1).
    pub fn with_max_connections(mut self, max: usize) -> Self {
        self.max_connections = max.max(1);
        self
    }

    /// Sets the stop/idle polling tick (clamped to at least 1 ms).
    pub fn with_poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval.max(Duration::from_millis(1));
        self
    }

    /// Selects the client-facing connection engine.
    pub fn with_backend(mut self, backend: ServeBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the snapshot replication factor.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Sets the virtual-node count per member (minimum 1).
    pub fn with_virtual_nodes(mut self, count: usize) -> Self {
        self.virtual_nodes = count.max(1);
        self
    }

    /// Sets (or disables) the background health-probe period.
    pub fn with_probe_interval(mut self, interval: Option<Duration>) -> Self {
        self.probe_interval = interval;
        self
    }

    /// Sets the per-backend connect budget.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout.max(Duration::from_millis(1));
        self
    }
}

fn lock_map(map: &Mutex<ClusterMap>) -> MutexGuard<'_, ClusterMap> {
    // A panicking session thread must not wedge routing for everyone.
    map.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// State every proxy session shares.
#[derive(Debug)]
struct RouterShared {
    map: Mutex<ClusterMap>,
    config: RouterConfig,
}

/// One pooled connection to a backend node, speaking the node's client
/// protocol. Responses are read *completely* (payload, any announced
/// binary frame, the `ok`/`err:` terminator) before a byte is relayed, so
/// a backend dying mid-response never leaves the client with a torn
/// transcript — the router just retries the buffered command elsewhere.
#[derive(Debug)]
struct BackendConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl BackendConn {
    /// Connects, swallows the node's banner, and replays the session's
    /// `hello` greeting (if one is active) so the new connection acts as
    /// the same tenant.
    fn open(
        addr: SocketAddr,
        connect_timeout: Duration,
        io_timeout: Duration,
        greeting: Option<&str>,
    ) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(io_timeout))?;
        let mut conn = Self {
            stream,
            buf: Vec::new(),
        };
        conn.read_line_raw()?; // the banner
        if let Some(hello) = greeting {
            let reply = conn.forward(hello)?;
            if !reply.ends_with(b"ok\n") {
                return Err(std::io::Error::other("token replay rejected by backend"));
            }
        }
        Ok(conn)
    }

    /// Sends one command line and returns the complete raw response.
    fn forward(&mut self, line: &str) -> std::io::Result<Vec<u8>> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        self.read_response()
    }

    /// One raw line including its trailing newline.
    fn read_line_raw(&mut self) -> std::io::Result<Vec<u8>> {
        loop {
            if let Some(pos) = self.buf.iter().position(|b| *b == b'\n') {
                return Ok(self.buf.drain(..=pos).collect());
            }
            self.fill()?;
        }
    }

    fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Err(std::io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn read_exact_into(&mut self, n: usize, out: &mut Vec<u8>) -> std::io::Result<()> {
        while self.buf.len() < n {
            self.fill()?;
        }
        out.extend(self.buf.drain(..n));
        Ok(())
    }

    /// One complete protocol response, byte-exact as the backend wrote
    /// it: payload lines, any `frame <kind> <len>`-announced binary
    /// bytes, and the terminating `ok`/`err:` line.
    fn read_response(&mut self) -> std::io::Result<Vec<u8>> {
        let mut out = Vec::new();
        loop {
            let line = self.read_line_raw()?;
            out.extend_from_slice(&line);
            let text = trim_line(&line);
            if text == b"ok" || text.starts_with(b"err: ") {
                return Ok(out);
            }
            if let Some(len) = frame_len(text) {
                if len > proto::MAX_FRAME_PAYLOAD + 64 {
                    return Err(std::io::Error::other("announced frame too large"));
                }
                self.read_exact_into(len, &mut out)?;
            }
        }
    }
}

/// Strips the trailing `\n` (and `\r\n`) for terminator comparison.
fn trim_line(line: &[u8]) -> &[u8] {
    let line = line.strip_suffix(b"\n").unwrap_or(line);
    line.strip_suffix(b"\r").unwrap_or(line)
}

/// Parses `frame <kind> <len>` announcements; `None` for ordinary lines.
fn frame_len(line: &[u8]) -> Option<usize> {
    let text = std::str::from_utf8(line).ok()?;
    let rest = text.strip_prefix("frame ")?;
    rest.split_whitespace().nth(1)?.parse().ok()
}

/// Extracts the hex payload of a successful `pullsnap` response.
fn snapshot_hex(resp: &[u8]) -> Option<&str> {
    if !resp.ends_with(b"ok\n") {
        return None;
    }
    let first = resp.split(|b| *b == b'\n').next()?;
    std::str::from_utf8(first).ok()?.strip_prefix("snapshot ")
}

/// Extracts the `(hex-arch, hex-csv)` payload of a successful
/// `pullrecs` response.
fn records_payload(resp: &[u8]) -> Option<(String, String)> {
    if !resp.ends_with(b"ok\n") {
        return None;
    }
    let first = resp.split(|b| *b == b'\n').next()?;
    let rest = std::str::from_utf8(first).ok()?.strip_prefix("records ")?;
    let mut fields = rest.split_whitespace().skip(1);
    Some((fields.next()?.to_owned(), fields.next()?.to_owned()))
}

/// Parses just enough of a client `sweep` line to partition it across
/// the ring: the base, the concrete suite, the grid axes, and any
/// `only=` filter — producing the same expansion-order variant list a
/// node computes ([`sweep::expand_selected`]). `None` means the line
/// cannot be planned here (malformed words, an `all` suite, a bad
/// axis); the caller then forwards it verbatim so a backend produces
/// its exact error bytes.
fn sweep_expansion(words: &[&str]) -> Option<(MachineId, Vec<MachineId>)> {
    let base: MachineId = words[1].parse().ok()?;
    let suite: Suite = words[2].parse().ok()?;
    let mut grid = SweepGrid::new();
    let mut only: Option<Vec<MachineId>> = None;
    for arg in &words[3..] {
        let (key, value) = arg.split_once('=')?;
        match key {
            // Forwarded verbatim; they do not change the variant set.
            "uops" | "seed" | "limit" | "component" => {}
            "only" => {
                let mut ids = Vec::new();
                for name in value.split(',') {
                    ids.push(name.parse().ok()?);
                }
                only = Some(ids);
            }
            _ => grid.parse_arg(arg).ok()?,
        }
    }
    let mut spec = SweepSpec::new(base, grid, suite);
    spec.only = only;
    let variants = sweep::expand_selected(&spec).ok()?;
    Some((base, variants.into_iter().map(|v| v.id).collect()))
}

/// One `variant …` line parsed out of a backend's sweep response: the
/// raw bytes for re-emission plus the fields the router needs to merge
/// (Pareto recomputation, replication of fresh fits).
struct SweptVariant {
    name: String,
    raw: String,
    cpi: f64,
    component: f64,
    cached: bool,
}

/// Splits a backend's sweep response into its variant lines and the
/// summary's simulated-work counters. `Err` carries the backend's own
/// `err:` message — the whole slice failed with those exact words.
fn parse_sweep_response(resp: &[u8]) -> Result<(Vec<SweptVariant>, u64, u64), String> {
    let text = String::from_utf8_lossy(resp);
    let mut variants = Vec::new();
    let (mut configs, mut runs) = (0u64, 0u64);
    for line in text.lines() {
        if let Some(message) = line.strip_prefix("err: ") {
            return Err(message.to_owned());
        }
        let w: Vec<&str> = line.split_whitespace().collect();
        if w.first() == Some(&"variant") && w.len() == 12 {
            let (Ok(cpi), Ok(component)) = (w[3].parse::<f64>(), w[5].parse::<f64>()) else {
                continue;
            };
            variants.push(SweptVariant {
                name: w[1].to_owned(),
                raw: line.to_owned(),
                cpi,
                component,
                cached: w[11] == "hit",
            });
        } else if w.first() == Some(&"sweep:") && w.len() == 8 {
            configs = w[5].parse().unwrap_or(0);
            runs = w[7].parse().unwrap_or(0);
        }
    }
    Ok((variants, configs, runs))
}

/// What a proxied command decided about the session.
enum ProxyOutcome {
    Continue,
    Quit,
    Shutdown,
}

/// One client connection's proxy state: pooled backend connections, the
/// active tenant (tracked by observing `hello` handshakes), the focus
/// node, and the per-`(machine, suite)` replication ledger.
struct ProxySession<'a> {
    shared: &'a RouterShared,
    /// The raw `hello <token>` line to replay on every backend
    /// connection once a handshake has succeeded.
    greeting: Option<String>,
    /// Display name of the authenticated tenant (`local` for open
    /// sessions) — the routing key's first half.
    tenant: String,
    conns: Vec<(String, BackendConn)>,
    /// The node the last machine-routed command landed on; zero-machine
    /// commands (`stats`, `help`, errors) follow it so a session's
    /// request counters accumulate on one node.
    focus: Option<String>,
    /// `(machine, suite)` pairs already replicated since their last
    /// write — resets on writes and on tenant changes.
    clean: HashSet<(String, String)>,
    /// `(node, machine)` pairs whose records this session already
    /// shipped for a cross-owner join (`delta`, partitioned `sweep`) —
    /// resets on writes and tenant changes, like `clean`. Purely an
    /// economy: the receiving node is digest-idempotent.
    shipped: HashSet<(String, String)>,
}

impl<'a> ProxySession<'a> {
    fn new(shared: &'a RouterShared) -> Self {
        Self {
            shared,
            greeting: None,
            tenant: "local".to_owned(),
            conns: Vec::new(),
            focus: None,
            clean: HashSet::new(),
            shipped: HashSet::new(),
        }
    }

    /// The node a machine-less command should land on: the focus node
    /// while it lives, else the tenant's home node (ring owner of the
    /// empty machine key).
    fn primary(&self) -> Result<NodeInfo, ClusterError> {
        let map = lock_map(&self.shared.map);
        if let Some(name) = &self.focus {
            if let Some(info) = map.info(name) {
                if info.health == NodeHealth::Alive {
                    return Ok(info.clone());
                }
            }
        }
        map.route(&self.tenant, "")
    }

    fn route_machine(&self, machine: &str) -> Result<NodeInfo, ClusterError> {
        lock_map(&self.shared.map).route(&self.tenant, machine)
    }

    fn mark_down(&self, node: &str, detail: &str) {
        let mut map = lock_map(&self.shared.map);
        if map.alive(node) {
            let _ = map.set_health(node, NodeHealth::Down);
            drop(map);
            // Visible in the router's process log, not to clients.
            let _ = detail;
        }
    }

    /// Gets or opens the pooled connection to `node` and forwards one
    /// command. A transport failure drops the pooled connection and
    /// retries once on a fresh one (healing server-side idle closes);
    /// if that also fails the node is reported [`ClusterError::NodeDown`].
    fn forward_to(&mut self, node: &NodeInfo, line: &str) -> Result<Vec<u8>, ClusterError> {
        let config = &self.shared.config;
        let mut detail = String::new();
        for _ in 0..2 {
            let idx = match self.conns.iter().position(|(n, _)| *n == node.name) {
                Some(i) => i,
                None => match BackendConn::open(
                    node.addr,
                    config.connect_timeout,
                    config.io_timeout,
                    self.greeting.as_deref(),
                ) {
                    Ok(conn) => {
                        self.conns.push((node.name.clone(), conn));
                        self.conns.len() - 1
                    }
                    Err(e) => {
                        detail = e.to_string();
                        continue;
                    }
                },
            };
            match self.conns[idx].1.forward(line) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    detail = e.to_string();
                    self.conns.remove(idx);
                }
            }
        }
        Err(ClusterError::NodeDown {
            node: node.name.clone(),
            detail,
        })
    }

    /// Routes by machine and forwards with failover: if the owner turns
    /// out to be down it is marked so, the ring reroutes the key, and the
    /// buffered command retries cleanly on the successor (nothing has
    /// reached the client yet).
    fn forward_routed(
        &mut self,
        machine: &str,
        line: &str,
    ) -> Result<(NodeInfo, Vec<u8>), ClusterError> {
        let owner = self.route_machine(machine)?;
        match self.forward_to(&owner, line) {
            Ok(resp) => Ok((owner, resp)),
            Err(ClusterError::NodeDown { node, detail }) => {
                self.mark_down(&node, &detail);
                let successor = self.route_machine(machine)?;
                let resp = self.forward_to(&successor, line)?;
                Ok((successor, resp))
            }
            Err(e) => Err(e),
        }
    }

    /// Forwards to the primary with the same failover discipline.
    fn forward_primary(&mut self, line: &str) -> Result<(NodeInfo, Vec<u8>), ClusterError> {
        let node = self.primary()?;
        match self.forward_to(&node, line) {
            Ok(resp) => Ok((node, resp)),
            Err(ClusterError::NodeDown { node: name, detail }) => {
                self.mark_down(&name, &detail);
                if self.focus.as_deref() == Some(name.as_str()) {
                    self.focus = None;
                }
                let next = self.primary()?;
                let resp = self.forward_to(&next, line)?;
                Ok((next, resp))
            }
            Err(e) => Err(e),
        }
    }

    /// The live replica set for `machine`: up to `replicas` nodes after
    /// `owner` in ring order.
    fn successor_set(&self, owner: &NodeInfo, machine: &str) -> Vec<NodeInfo> {
        let replicas = self.shared.config.replicas;
        if replicas == 0 {
            return Vec::new();
        }
        let ordered = lock_map(&self.shared.map).ordered_alive(&self.tenant, machine);
        let mut out: Vec<NodeInfo> = Vec::new();
        let mut past_owner = false;
        for node in &ordered {
            if node.name == owner.name {
                past_owner = true;
            } else if past_owner {
                out.push(node.clone());
            }
        }
        if !past_owner {
            // The owner raced out of the live set; replicate to the
            // chain's front instead.
            out = ordered;
        }
        out.truncate(replicas);
        out
    }

    /// Ships the owner's snapshot for `(machine, suite)` to the ring
    /// successors, at most once per write. Best-effort by design: a
    /// replica that cannot store (no state dir, down) is skipped, and a
    /// key with nothing to pull (e.g. the owner runs cache-only and
    /// evicted) is marked clean so it is not re-pulled per request.
    fn replicate(&mut self, machine: &str, suite: &str) {
        let key = (machine.to_owned(), suite.to_owned());
        if self.clean.contains(&key) {
            return;
        }
        let Ok(owner) = self.route_machine(machine) else {
            return;
        };
        let successors = self.successor_set(&owner, machine);
        if successors.is_empty() {
            self.clean.insert(key);
            return;
        }
        let Ok(resp) = self.forward_to(&owner, &format!("pullsnap {machine} {suite}")) else {
            return;
        };
        match snapshot_hex(&resp).map(str::to_owned) {
            Some(hex) => {
                let push = format!("pushsnap {hex}");
                for succ in successors {
                    let _ = self.forward_to(&succ, &push);
                }
                self.clean.insert(key);
            }
            None => {
                self.clean.insert(key);
            }
        }
    }

    /// Ships `machine`'s records (arch constants included) from its
    /// ring owner to `to`, so `to` can run any single-node fitting
    /// path over the exact same bytes. `Ok(false)` means the owner had
    /// nothing to export (never ingested — the data will come from
    /// deterministic simulation instead), which is not a failure.
    fn ship_records(&mut self, machine: &str, to: &NodeInfo) -> Result<bool, ClusterError> {
        let key = (to.name.clone(), machine.to_owned());
        if self.shipped.contains(&key) {
            return Ok(true);
        }
        let (_, resp) = self.forward_routed(machine, &format!("pullrecs {machine}"))?;
        let Some((arch, csv)) = records_payload(&resp) else {
            return Ok(false);
        };
        let resp = self.forward_to(to, &format!("pushrecs {machine} {arch} {csv}"))?;
        let installed = resp.ends_with(b"ok\n");
        if installed {
            self.shipped.insert(key);
        }
        Ok(installed)
    }

    /// Best-effort warm transfer: pulls `(machine, suite)`'s snapshot
    /// from its owner and pushes it to `to`, so the next fit there is
    /// a digest-matched warm load instead of a re-fit. Failures cost
    /// only time — a fresh fit over the shipped records is
    /// deterministic, so results never depend on this succeeding.
    fn warm_snapshot(&mut self, machine: &str, suite: &str, to: &NodeInfo) {
        let pull = format!("pullsnap {machine} {suite}");
        let Ok((_, resp)) = self.forward_routed(machine, &pull) else {
            return;
        };
        if let Some(hex) = snapshot_hex(&resp).map(str::to_owned) {
            let _ = self.forward_to(to, &format!("pushsnap {hex}"));
        }
    }

    /// Satisfies a two-machine command's data dependency: `delta <old>
    /// <new> <suite>` serves from the *old* machine's owner, which
    /// needs the new machine's records too. When the ring puts them on
    /// different nodes, ship the new side's records (and its fitted
    /// snapshot, so the join is warm) to the serving node first — the
    /// forwarded command then runs the unchanged single-node path,
    /// byte-identical output included. Best-effort by design: a
    /// machine missing everywhere still errors with the backend's
    /// exact bytes on the forward.
    fn prepare_join(&mut self, serving: &str, missing: &str, suite: &str) {
        let (Ok(serving_owner), Ok(missing_owner)) =
            (self.route_machine(serving), self.route_machine(missing))
        else {
            return;
        };
        if serving_owner.name == missing_owner.name {
            return;
        }
        if matches!(self.ship_records(missing, &serving_owner), Ok(true)) {
            self.warm_snapshot(missing, suite, &serving_owner);
        }
    }

    /// Replays the active greeting on every pooled connection except
    /// `just_used`, dropping connections that reject it — after a
    /// rebind, every backend this session talks to must agree on the
    /// tenant.
    fn replay_greeting(&mut self, just_used: &str) {
        let Some(greeting) = self.greeting.clone() else {
            return;
        };
        let mut keep = Vec::new();
        for (name, mut conn) in std::mem::take(&mut self.conns) {
            if name == just_used {
                keep.push((name, conn));
                continue;
            }
            if matches!(conn.forward(&greeting), Ok(ref r) if r.ends_with(b"ok\n")) {
                keep.push((name, conn));
            }
        }
        self.conns = keep;
    }

    /// Proxies one client line. Cluster-level failures (every candidate
    /// node down) surface as in-band `err:` lines; only client-transport
    /// failures end the session.
    fn handle_line(&mut self, line: &str, out: &mut impl Write) -> std::io::Result<ProxyOutcome> {
        match self.dispatch(line, out) {
            Ok(outcome) => Ok(outcome),
            Err(ClusterError::Io(e)) => Err(e),
            Err(e) => {
                writeln!(out, "err: {e}")?;
                Ok(ProxyOutcome::Continue)
            }
        }
    }

    fn dispatch(&mut self, line: &str, out: &mut impl Write) -> Result<ProxyOutcome, ClusterError> {
        let words: Vec<&str> = line.split_whitespace().collect();
        let Some(&first) = words.first() else {
            // Blank lines produce no response, exactly like a node.
            return Ok(ProxyOutcome::Continue);
        };
        match first {
            "hello" => {
                let (node, resp) = self.forward_primary(line)?;
                out.write_all(&resp)?;
                if resp.ends_with(b"ok\n") && words.len() == 2 {
                    if let Some(tenant) = resp
                        .split(|b| *b == b'\n')
                        .next()
                        .and_then(|l| std::str::from_utf8(l).ok())
                        .and_then(|l| l.strip_prefix("hello "))
                    {
                        self.tenant = tenant.trim().to_owned();
                    }
                    self.greeting = Some(format!("hello {}", words[1]));
                    // A rebind changes the routing key space wholesale.
                    self.focus = None;
                    self.clean.clear();
                    self.shipped.clear();
                    self.replay_greeting(&node.name);
                }
                Ok(ProxyOutcome::Continue)
            }
            // Writes: relay the owner's response, mirror the write to
            // the key's replica set so successors can serve it later.
            "machine" if words.len() >= 2 => {
                let (owner, resp) = self.forward_routed(words[1], line)?;
                out.write_all(&resp)?;
                self.focus = Some(owner.name.clone());
                self.clean.retain(|(m, _)| m != words[1]);
                self.shipped.retain(|(_, m)| m != words[1]);
                if resp.ends_with(b"ok\n") {
                    for succ in self.successor_set(&owner, words[1]) {
                        let _ = self.forward_to(&succ, line);
                    }
                }
                Ok(ProxyOutcome::Continue)
            }
            "ingest" if words.len() == 2 => self.dispatch_ingest(words[1], line, out),
            // Model-bearing reads route by machine; a success freshens
            // the replica set (the fit — or warm load — just happened).
            "fit" | "stack" | "binstack" | "predict" | "pullsnap" if words.len() == 3 => {
                let (owner, resp) = self.forward_routed(words[1], line)?;
                out.write_all(&resp)?;
                self.focus = Some(owner.name.clone());
                if first != "pullsnap" && resp.ends_with(b"ok\n") {
                    self.replicate(words[1], words[2]);
                }
                Ok(ProxyOutcome::Continue)
            }
            "delta" if words.len() == 4 => {
                // `delta <old> <new> <suite>` fits both machines on the
                // old machine's owner. The ring hashes the two machines
                // independently, so the new side may live elsewhere —
                // ship its records (and warm snapshot) over first, then
                // forward; the owner runs the unchanged single-node
                // path. Replicate what that node now holds.
                self.prepare_join(words[1], words[2], words[3]);
                let (owner, resp) = self.forward_routed(words[1], line)?;
                out.write_all(&resp)?;
                self.focus = Some(owner.name.clone());
                if resp.ends_with(b"ok\n") {
                    self.replicate(words[1], words[3]);
                }
                Ok(ProxyOutcome::Continue)
            }
            "sweep" if words.len() >= 3 => self.dispatch_sweep(&words, line, out),
            "quit" => {
                let resp = match self.forward_primary(line) {
                    Ok((_, resp)) => resp,
                    // No backend left to say goodbye through — honor the
                    // quit locally instead of stranding the client on an
                    // open connection.
                    Err(_) if words.len() == 1 => b"ok\n".to_vec(),
                    Err(e) => return Err(e),
                };
                out.write_all(&resp)?;
                if resp == b"ok\n" {
                    return Ok(ProxyOutcome::Quit);
                }
                Ok(ProxyOutcome::Continue)
            }
            "shutdown" => {
                let (node, resp) = match self.forward_primary(line) {
                    Ok(forwarded) => forwarded,
                    // Every backend is already unreachable; the router
                    // itself must still be stoppable in-band.
                    Err(_) if words.len() == 1 => {
                        out.write_all(b"ok\n")?;
                        return Ok(ProxyOutcome::Shutdown);
                    }
                    Err(e) => return Err(e),
                };
                out.write_all(&resp)?;
                if resp == b"ok\n" {
                    // The primary shut itself down via the forwarded
                    // command; take the rest of the tier with it.
                    let others: Vec<NodeInfo> = lock_map(&self.shared.map)
                        .nodes
                        .iter()
                        .filter(|n| n.health == NodeHealth::Alive && n.name != node.name)
                        .cloned()
                        .collect();
                    for other in others {
                        let _ = self.forward_to(&other, "shutdown");
                    }
                    return Ok(ProxyOutcome::Shutdown);
                }
                Ok(ProxyOutcome::Continue)
            }
            // Everything else — stats, help, malformed input, unknown
            // verbs, wrong arities — goes to the focus node so its
            // response (and its effect on the request counters) lands
            // where the session's real work lives.
            _ => {
                let (_, resp) = self.forward_primary(line)?;
                out.write_all(&resp)?;
                Ok(ProxyOutcome::Continue)
            }
        }
    }

    /// `sweep <base> <suite> …` fans a design-space grid across the
    /// ring. Each variant hashes to its own owner, so the router
    /// expands the grid exactly like a node would, partitions the
    /// expansion-order variant list by live owner, ships the base
    /// machine's records to every involved node (each node fits the
    /// base itself for the delta columns), and forwards each node its
    /// slice as `sweep … only=<subset>` — the node-side serving path
    /// is unchanged. Variant lines come back merged in expansion
    /// order, the Pareto front is recomputed over the merged results
    /// with the same minimization a node runs, and fresh fits (cache
    /// misses) replicate like any other model-bearing write. A node
    /// dying mid-sweep costs only its slice: survivors' lines still
    /// stream, followed by a typed partial error naming what was lost.
    fn dispatch_sweep(
        &mut self,
        words: &[&str],
        line: &str,
        out: &mut impl Write,
    ) -> Result<ProxyOutcome, ClusterError> {
        let plan = sweep_expansion(words);
        let Some((base, variants)) = plan.filter(|(_, v)| !v.is_empty()) else {
            // Unplannable (malformed axis, `all` suite, empty `only=`):
            // one backend produces its exact error bytes.
            let (owner, resp) = self.forward_routed(words[1], line)?;
            out.write_all(&resp)?;
            self.focus = Some(owner.name.clone());
            return Ok(ProxyOutcome::Continue);
        };
        // Partition by live owner, preserving expansion order within
        // and across groups.
        let mut groups: Vec<(NodeInfo, Vec<MachineId>)> = Vec::new();
        for id in &variants {
            let owner = self.route_machine(id.name())?;
            match groups.iter_mut().find(|(node, _)| node.name == owner.name) {
                Some((_, ids)) => ids.push(*id),
                None => groups.push((owner, vec![*id])),
            }
        }
        self.focus = groups.first().map(|(node, _)| node.name.clone());
        let mut results: Vec<Option<SweptVariant>> = variants.iter().map(|_| None).collect();
        let (mut configs, mut runs) = (0u64, 0u64);
        let mut lost: Vec<String> = Vec::new();
        let mut lost_detail = String::new();
        for (node, ids) in groups {
            // The original line minus any client `only=`, plus this
            // slice's own selection.
            let mut cmd = format!("sweep {} {}", words[1], words[2]);
            for arg in &words[3..] {
                if !arg.starts_with("only=") {
                    cmd.push(' ');
                    cmd.push_str(arg);
                }
            }
            let names: Vec<&str> = ids.iter().map(|id| id.name()).collect();
            cmd.push_str(" only=");
            cmd.push_str(&names.join(","));
            let resp = match self.sweep_slice(&node, base, &cmd) {
                Ok(resp) => Ok(resp),
                Err(ClusterError::NodeDown { node: name, detail }) => {
                    // The slice never reached the client; mark the
                    // owner down, let the ring reroute its variants,
                    // and retry the buffered slice on the successor.
                    self.mark_down(&name, &detail);
                    self.route_machine(ids[0].name())
                        .and_then(|successor| self.sweep_slice(&successor, base, &cmd))
                }
                Err(e) => Err(e),
            };
            let parsed = match &resp {
                Ok(bytes) => parse_sweep_response(bytes),
                Err(e) => Err(e.to_string()),
            };
            match parsed {
                Ok((swept, slice_configs, slice_runs)) => {
                    configs += slice_configs;
                    runs += slice_runs;
                    for variant in swept {
                        if let Some(i) = variants.iter().position(|id| id.name() == variant.name) {
                            results[i] = Some(variant);
                        }
                    }
                }
                Err(detail) => {
                    lost.extend(names.iter().map(|n| (*n).to_owned()));
                    lost_detail = detail;
                }
            }
        }
        // Merged output, byte-shaped exactly like a node's: variant
        // lines in expansion order, the Pareto line, the summary.
        let mut served: Vec<(usize, f64, f64)> = Vec::new();
        for (i, slot) in results.iter().enumerate() {
            if let Some(v) = slot {
                writeln!(out, "{}", v.raw)?;
                served.push((i, v.cpi, v.component));
            }
        }
        let fresh: Vec<String> = results
            .iter()
            .flatten()
            .filter(|v| !v.cached)
            .map(|v| v.name.clone())
            .collect();
        for name in fresh {
            self.replicate(&name, words[2]);
        }
        let points: Vec<(f64, f64)> = served.iter().map(|&(_, c, v)| (c, v)).collect();
        let front: Vec<&str> = sweep::pareto_front(&points)
            .into_iter()
            .map(|k| variants[served[k].0].name())
            .collect();
        writeln!(out, "pareto {}", front.join(" "))?;
        writeln!(
            out,
            "sweep: variants {} simulated configs {configs} runs {runs}",
            served.len()
        )?;
        if lost.is_empty() {
            writeln!(out, "ok")?;
            Ok(ProxyOutcome::Continue)
        } else {
            Err(ClusterError::SweepPartial {
                lost,
                detail: lost_detail,
            })
        }
    }

    /// Forwards one sweep slice to `node`, first making sure the node
    /// holds the base machine's records (skipped when the node owns
    /// them already, or when the base has nothing ingested — every
    /// node then simulates identical records deterministically).
    fn sweep_slice(
        &mut self,
        node: &NodeInfo,
        base: MachineId,
        cmd: &str,
    ) -> Result<Vec<u8>, ClusterError> {
        if let Ok(owner) = self.route_machine(base.name()) {
            if owner.name != node.name {
                self.ship_records(base.name(), node)?;
            }
        }
        self.forward_to(node, cmd)
    }

    /// `ingest <path>` writes records for every machine named in the
    /// CSV. The router reads the file itself to learn that machine set,
    /// relays the owner's response for the first machine, and mirrors
    /// the command to every other owner and replica so each shard holds
    /// the records its keys need for digest-matched warm loads.
    fn dispatch_ingest(
        &mut self,
        path: &str,
        line: &str,
        out: &mut impl Write,
    ) -> Result<ProxyOutcome, ClusterError> {
        let machines: Option<Vec<String>> = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| pmu::csv::from_csv(&text).ok())
            .map(|records| {
                let mut names: Vec<String> = Vec::new();
                for record in &records {
                    // The protocol's machine identifier (`core2`), NOT the
                    // Display form (`Core 2`) — routing keys must match
                    // what clients type.
                    let name = record.machine().name().to_owned();
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
                names
            });
        let Some(machines) = machines else {
            // Unreadable or malformed: let a backend produce its exact
            // error bytes.
            let (_, resp) = self.forward_primary(line)?;
            out.write_all(&resp)?;
            return Ok(ProxyOutcome::Continue);
        };
        let Some(lead) = machines.first() else {
            let (_, resp) = self.forward_primary(line)?;
            out.write_all(&resp)?;
            return Ok(ProxyOutcome::Continue);
        };
        let (owner, resp) = self.forward_routed(lead, line)?;
        out.write_all(&resp)?;
        self.focus = Some(owner.name.clone());
        self.clean
            .retain(|(m, _)| !machines.iter().any(|name| name == m));
        self.shipped
            .retain(|(_, m)| !machines.iter().any(|name| name == m));
        if resp.ends_with(b"ok\n") {
            let mut targets: Vec<NodeInfo> = Vec::new();
            for machine in &machines {
                let Ok(machine_owner) = self.route_machine(machine) else {
                    continue;
                };
                for node in std::iter::once(machine_owner.clone())
                    .chain(self.successor_set(&machine_owner, machine))
                {
                    if node.name != owner.name && !targets.iter().any(|t| t.name == node.name) {
                        targets.push(node);
                    }
                }
            }
            for target in targets {
                let _ = self.forward_to(&target, line);
            }
        }
        Ok(ProxyOutcome::Continue)
    }
}

/// A running cluster router: the client-facing accept loop, the shared
/// cluster map, and (optionally) the background health prober. Obtained
/// from [`serve_router`].
#[derive(Debug)]
pub struct ClusterRouter {
    local_addr: SocketAddr,
    shared: Arc<RouterShared>,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    prober: Option<std::thread::JoinHandle<()>>,
}

impl ClusterRouter {
    /// The address the router actually bound (resolves `:0` ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signals every router thread to stop without waiting.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Blocks until the router stops (via [`ClusterRouter::stop`], drop,
    /// or a client's `shutdown`). Proxy sessions drain before this
    /// returns. The backend *nodes* are not owned here — the caller
    /// (or [`ClusterHarness`]) shuts them down separately.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.prober.take() {
            let _ = handle.join();
        }
    }

    /// Stops the router and waits for its threads.
    pub fn shutdown(self) {
        self.stop();
        self.wait();
    }

    /// Every member with its current health.
    pub fn node_health(&self) -> Vec<(String, NodeHealth)> {
        lock_map(&self.shared.map).statuses()
    }

    /// Takes a node out of the routing rotation without touching it —
    /// its keys reroute to ring successors while it keeps running.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownNode`] when no member has that name.
    pub fn drain(&self, node: &str) -> Result<(), ClusterError> {
        lock_map(&self.shared.map).set_health(node, NodeHealth::Draining)
    }

    /// Puts a node (drained or down) back into the rotation.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownNode`] when no member has that name.
    pub fn revive(&self, node: &str) -> Result<(), ClusterError> {
        lock_map(&self.shared.map).set_health(node, NodeHealth::Alive)
    }

    /// The live owner a `(tenant, machine)` key currently routes to.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoBackends`] when no live member remains.
    pub fn owner_of(&self, tenant: &str, machine: &str) -> Result<String, ClusterError> {
        lock_map(&self.shared.map)
            .route(tenant, machine)
            .map(|n| n.name)
    }

    /// Probes one member right now: connects, and updates its health
    /// from the result.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownNode`] for unknown names,
    /// [`ClusterError::NodeDown`] when the connect fails.
    pub fn probe(&self, node: &str) -> Result<(), ClusterError> {
        let info = lock_map(&self.shared.map)
            .info(node)
            .cloned()
            .ok_or_else(|| ClusterError::UnknownNode {
                node: node.to_owned(),
            })?;
        match TcpStream::connect_timeout(&info.addr, self.shared.config.connect_timeout) {
            Ok(_) => {
                if info.health == NodeHealth::Down {
                    let _ = lock_map(&self.shared.map).set_health(node, NodeHealth::Alive);
                }
                Ok(())
            }
            Err(e) => {
                if info.health == NodeHealth::Alive {
                    let _ = lock_map(&self.shared.map).set_health(node, NodeHealth::Down);
                }
                Err(ClusterError::NodeDown {
                    node: node.to_owned(),
                    detail: e.to_string(),
                })
            }
        }
    }
}

impl Drop for ClusterRouter {
    fn drop(&mut self) {
        self.stop();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.prober.take() {
            let _ = handle.join();
        }
    }
}

/// Starts the router front on an already-bound listener over the given
/// backend nodes. The backends are *addresses*, not owned processes —
/// [`ClusterHarness`] (or the CLI) owns their lifecycles.
///
/// # Errors
///
/// Setup failures only (non-blocking mode, thread spawn); per-connection
/// and per-backend failures are handled in-band and never take the
/// router down.
pub fn serve_router(
    listener: TcpListener,
    backends: &[(String, SocketAddr)],
    config: RouterConfig,
) -> std::io::Result<ClusterRouter> {
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(RouterShared {
        map: Mutex::new(ClusterMap::new(backends, config.virtual_nodes)),
        config,
    });
    let stop = Arc::new(AtomicBool::new(false));
    let accept_shared = Arc::clone(&shared);
    let accept_stop = Arc::clone(&stop);
    // Unsupported platforms fall back to the threaded engine, exactly
    // as in `proto::serve_tcp`.
    let poller = match shared.config.backend {
        ServeBackend::Events => Poller::new().ok(),
        ServeBackend::Threads => None,
    };
    let accept = std::thread::Builder::new()
        .name("cpi-router-front".into())
        .spawn(move || match poller {
            Some(poller) => router_event_front(poller, &listener, &accept_shared, &accept_stop),
            None => router_accept_loop(&listener, &accept_shared, &accept_stop),
        })?;
    let prober = match shared.config.probe_interval {
        Some(period) => {
            let probe_shared = Arc::clone(&shared);
            let probe_stop = Arc::clone(&stop);
            Some(
                std::thread::Builder::new()
                    .name("cpi-router-probe".into())
                    .spawn(move || probe_loop(&probe_shared, &probe_stop, period))?,
            )
        }
        None => None,
    };
    Ok(ClusterRouter {
        local_addr,
        shared,
        stop,
        accept: Some(accept),
        prober,
    })
}

/// The readiness-loop router front: one thread multiplexing every
/// client connection, each line dispatched through a [`ProxySession`].
/// Backend hops inside a dispatch reuse the session's pooled blocking
/// connections — the polling the loop eliminates is all client-side.
fn router_event_front(
    poller: Poller,
    listener: &TcpListener,
    shared: &Arc<RouterShared>,
    stop: &AtomicBool,
) {
    let loop_config = LoopConfig {
        banner: shared.config.banner.clone(),
        idle_timeout: shared.config.idle_timeout,
        max_connections: shared.config.max_connections,
        tick: shared.config.poll_interval,
    };
    poller::run_event_loop(poller, listener, &loop_config, stop, || {
        let mut session = ProxySession::new(shared);
        move |line: &str, out: &mut Vec<u8>| {
            session.handle_line(line, out).map(|outcome| match outcome {
                ProxyOutcome::Continue => Dispatch::Continue,
                ProxyOutcome::Quit => Dispatch::Close,
                ProxyOutcome::Shutdown => Dispatch::Shutdown,
            })
        }
    });
}

fn router_accept_loop(listener: &TcpListener, shared: &Arc<RouterShared>, stop: &Arc<AtomicBool>) {
    let live = Arc::new(AtomicUsize::new(0));
    let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        sessions.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _)) => {
                if live.load(Ordering::SeqCst) >= shared.config.max_connections {
                    // Same rejection bytes as the events engine.
                    let mut stream = stream;
                    let _ = stream.write_all(b"err: busy\n");
                    continue;
                }
                live.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(shared);
                let conn_stop = Arc::clone(stop);
                let conn_live = Arc::clone(&live);
                let spawned = std::thread::Builder::new()
                    .name("cpi-router-conn".into())
                    .spawn(move || {
                        let _ = proxy_connection_loop(stream, &conn_shared, &conn_stop);
                        conn_live.fetch_sub(1, Ordering::SeqCst);
                    });
                match spawned {
                    Ok(handle) => sessions.push(handle),
                    Err(_) => {
                        live.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.poll_interval);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    for handle in sessions {
        let _ = handle.join();
    }
}

/// One proxied client connection: greet, read lines with the same
/// stop/idle polling as a node front, dispatch each through the proxy.
fn proxy_connection_loop(
    stream: TcpStream,
    shared: &RouterShared,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(shared.config.poll_interval))?;
    let mut reader = TimedLineReader::new(stream.try_clone()?);
    let mut output = std::io::BufWriter::new(stream);
    writeln!(output, "{}", shared.config.banner)?;
    output.flush()?;
    let mut session = ProxySession::new(shared);
    loop {
        match reader.next_line(stop, shared.config.idle_timeout) {
            LineEvent::Line(line) => {
                let outcome = session.handle_line(&line, &mut output)?;
                output.flush()?;
                match outcome {
                    ProxyOutcome::Continue => {}
                    ProxyOutcome::Quit => return Ok(()),
                    ProxyOutcome::Shutdown => {
                        stop.store(true, Ordering::SeqCst);
                        return Ok(());
                    }
                }
            }
            LineEvent::Eof => return Ok(()),
            LineEvent::Stopped => {
                writeln!(output, "err: server shutting down")?;
                return output.flush();
            }
            LineEvent::IdleTimeout => {
                writeln!(output, "err: idle timeout — closing connection")?;
                return output.flush();
            }
            LineEvent::Error(e) => return Err(e),
        }
    }
}

/// Background membership probing: connect to every non-draining member
/// each period, flipping Alive⇄Down from the result. Probe connections
/// are harmless to nodes — they see the banner and an immediate EOF.
fn probe_loop(shared: &RouterShared, stop: &AtomicBool, period: Duration) {
    let tick = shared.config.poll_interval;
    let mut next = Instant::now() + period;
    while !stop.load(Ordering::SeqCst) {
        if Instant::now() >= next {
            let members: Vec<NodeInfo> = lock_map(&shared.map).nodes.clone();
            for node in members {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                if node.health == NodeHealth::Draining {
                    continue;
                }
                match TcpStream::connect_timeout(&node.addr, shared.config.connect_timeout) {
                    Ok(_) => {
                        if node.health == NodeHealth::Down {
                            let _ = lock_map(&shared.map).set_health(&node.name, NodeHealth::Alive);
                        }
                    }
                    Err(_) => {
                        if node.health == NodeHealth::Alive {
                            let _ = lock_map(&shared.map).set_health(&node.name, NodeHealth::Down);
                        }
                    }
                }
            }
            next = Instant::now() + period;
        }
        std::thread::sleep(tick);
    }
}

/// One backend node a [`ClusterHarness`] owns: its service, its TCP
/// front, and its on-disk state dir.
#[derive(Debug)]
struct HarnessNode {
    name: String,
    addr: SocketAddr,
    service: Option<CpiService>,
    server: Option<TcpServer>,
}

/// An in-process cluster: N real `cpistack serve` nodes (each its own
/// [`CpiService`] + TCP front on a `:0` port, each with its own state
/// dir under the harness root) fronted by a [`ClusterRouter`]. This is
/// how tier-1 tests exercise routing, replication and kill-a-node
/// failover without external orchestration.
#[derive(Debug)]
pub struct ClusterHarness {
    nodes: Vec<HarnessNode>,
    router: Option<ClusterRouter>,
}

/// Builder for [`ClusterHarness`]; see [`ClusterHarness::builder`].
pub struct ClusterHarnessBuilder {
    state_root: PathBuf,
    nodes: usize,
    workers: usize,
    cache: usize,
    options: FitOptions,
    registry: Option<Arc<TokenRegistry>>,
    router: RouterConfig,
    listen: String,
}

impl ClusterHarness {
    /// A builder rooted at `state_root` (each node persists snapshots
    /// under `state_root/node-<i>` — replication needs somewhere to
    /// land). Defaults: 3 nodes, 2 workers and cache 8 per node, quick
    /// fits, open sessions, default [`RouterConfig`].
    pub fn builder(state_root: impl Into<PathBuf>) -> ClusterHarnessBuilder {
        ClusterHarnessBuilder {
            state_root: state_root.into(),
            nodes: 3,
            workers: 2,
            cache: 8,
            options: FitOptions::quick(),
            registry: None,
            router: RouterConfig::default(),
            listen: "127.0.0.1:0".to_owned(),
        }
    }

    /// The router front clients connect to.
    pub fn router(&self) -> &ClusterRouter {
        self.router.as_ref().expect("router lives until shutdown")
    }

    /// The router's client-facing address.
    pub fn router_addr(&self) -> SocketAddr {
        self.router().local_addr()
    }

    /// Number of backend nodes (live or killed).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// A node's member name (`node-<i>`).
    pub fn node_name(&self, index: usize) -> &str {
        &self.nodes[index].name
    }

    /// A node's direct TCP address (for bypassing the router).
    pub fn node_addr(&self, index: usize) -> SocketAddr {
        self.nodes[index].addr
    }

    /// The index of the node currently owning `(tenant, machine)`.
    pub fn owner_index(&self, tenant: &str, machine: &str) -> Option<usize> {
        let owner = self.router().owner_of(tenant, machine).ok()?;
        self.nodes.iter().position(|n| n.name == owner)
    }

    /// Kills a node for real: its TCP front and service stop, its port
    /// refuses connections. The router discovers this on next use or
    /// probe — exactly like a crashed process.
    pub fn kill(&mut self, index: usize) {
        if let Some(server) = self.nodes[index].server.take() {
            server.shutdown();
        }
        if let Some(service) = self.nodes[index].service.take() {
            service.shutdown();
        }
    }

    /// Drains a node at the router (the node itself keeps running).
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownNode`] when the index is stale.
    pub fn drain(&self, index: usize) -> Result<(), ClusterError> {
        let name = self.nodes[index].name.clone();
        self.router().drain(&name)
    }

    /// Blocks until the router stops (a client's in-band `shutdown`, a
    /// signal via [`ClusterRouter::stop`]), then stops every surviving
    /// node — the `cpistack cluster` foreground lifecycle.
    pub fn wait(mut self) {
        if let Some(router) = self.router.take() {
            router.wait();
        }
        for index in 0..self.nodes.len() {
            self.kill(index);
        }
    }

    /// Stops the router, then every surviving node.
    pub fn shutdown(mut self) {
        if let Some(router) = self.router.take() {
            router.shutdown();
        }
        for index in 0..self.nodes.len() {
            self.kill(index);
        }
    }
}

impl ClusterHarnessBuilder {
    /// Sets the node count (minimum 1).
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes.max(1);
        self
    }

    /// Sets each node's worker-shard count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets each node's model-cache capacity.
    pub fn with_cache(mut self, cache: usize) -> Self {
        self.cache = cache.max(1);
        self
    }

    /// Sets the fit options every node session uses.
    pub fn with_options(mut self, options: FitOptions) -> Self {
        self.options = options;
        self
    }

    /// Gates every node behind the token registry (the router forwards
    /// `hello` verbatim, so auth semantics are the nodes').
    pub fn with_registry(mut self, registry: Arc<TokenRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Replaces the router configuration wholesale.
    pub fn with_router(mut self, config: RouterConfig) -> Self {
        self.router = config;
        self
    }

    /// Binds the router's client-facing listener to this address
    /// (default `127.0.0.1:0` — an ephemeral loopback port).
    pub fn with_listen(mut self, addr: impl Into<String>) -> Self {
        self.listen = addr.into();
        self
    }

    /// Boots the nodes and the router.
    ///
    /// # Errors
    ///
    /// Any node or router setup failure (state dir, bind, spawn).
    pub fn start(self) -> std::io::Result<ClusterHarness> {
        let mut nodes = Vec::with_capacity(self.nodes);
        let mut backends = Vec::with_capacity(self.nodes);
        for i in 0..self.nodes {
            let name = format!("node-{i}");
            let config = ServiceConfig::new()
                .with_workers(self.workers)
                .with_cache_capacity(self.cache)
                .with_state_dir(self.state_root.join(&name));
            let service =
                CpiService::try_start(config).map_err(|e| std::io::Error::other(e.to_string()))?;
            let spec = match &self.registry {
                Some(registry) => SessionSpec::with_auth(
                    service.client(),
                    self.options.clone(),
                    Arc::clone(registry),
                ),
                None => SessionSpec::open(service.client(), self.options.clone()),
            };
            let listener = TcpListener::bind("127.0.0.1:0")?;
            // Nodes share the router's banner (so a one-node cluster is
            // transparent even on direct connects) and never idle-close:
            // the router pools its backend connections across client
            // think time. Engine and connection cap follow the router's
            // too — every admitted client may pool one backend
            // connection per node, so a tighter node cap would refuse
            // backends for clients the router already accepted.
            let server = proto::serve_tcp(
                listener,
                spec,
                TcpServerConfig::new(self.router.banner.clone())
                    .with_idle_timeout(None)
                    .with_poll_interval(self.router.poll_interval)
                    .with_max_connections(self.router.max_connections)
                    .with_backend(self.router.backend),
            )?;
            let addr = server.local_addr();
            backends.push((name.clone(), addr));
            nodes.push(HarnessNode {
                name,
                addr,
                service: Some(service),
                server: Some(server),
            });
        }
        let listener = TcpListener::bind(self.listen.as_str())?;
        let router = serve_router(listener, &backends, self.router)?;
        Ok(ClusterHarness {
            nodes,
            router: Some(router),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_node_ring() -> HashRing {
        let mut ring = HashRing::new(64);
        ring.add("node-0");
        ring.add("node-1");
        ring.add("node-2");
        ring
    }

    #[test]
    fn ring_routing_is_deterministic_and_total() {
        let ring = three_node_ring();
        for machine in ["core2", "corei7", "atom", "zen", ""] {
            let a = ring.node_for("local", machine).expect("owner");
            let b = ring.node_for("local", machine).expect("owner");
            assert_eq!(a, b);
            assert!(ring.nodes().iter().any(|n| n == a));
        }
        // Tenant is part of the key: at least one machine routes
        // differently for a different tenant across a small sample.
        let moved = ["m0", "m1", "m2", "m3", "m4", "m5", "m6", "m7"]
            .iter()
            .any(|m| ring.node_for("alpha", m) != ring.node_for("beta", m));
        assert!(moved, "tenant must participate in the routing key");
    }

    #[test]
    fn successors_are_distinct_and_exclude_the_owner() {
        let ring = three_node_ring();
        let owner = ring.node_for("local", "core2").unwrap();
        let successors = ring.successors("local", "core2", 2);
        assert_eq!(successors.len(), 2);
        assert!(!successors.contains(&owner));
        assert_ne!(successors[0], successors[1]);
    }

    #[test]
    fn removing_a_node_moves_only_its_keys() {
        let ring = three_node_ring();
        let mut shrunk = ring.clone();
        shrunk.remove("node-1");
        for i in 0..200 {
            let machine = format!("machine-{i}");
            let before = ring.node_for("local", &machine).unwrap();
            let after = shrunk.node_for("local", &machine).unwrap();
            if before == "node-1" {
                assert_ne!(after, "node-1");
                // The key lands exactly where filtered routing said it
                // would — failover and membership change agree.
                let failover = ring
                    .node_for_filtered("local", &machine, |n| n != "node-1")
                    .unwrap();
                assert_eq!(after, failover);
            } else {
                assert_eq!(before, after, "key `{machine}` moved needlessly");
            }
        }
    }

    #[test]
    fn cluster_map_routes_around_dead_and_draining_nodes() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let backends: Vec<(String, SocketAddr)> =
            (0..3).map(|i| (format!("node-{i}"), addr)).collect();
        let mut map = ClusterMap::new(&backends, 64);
        let owner = map.route("local", "core2").expect("owner").name;
        map.set_health(&owner, NodeHealth::Down).unwrap();
        let next = map.route("local", "core2").expect("successor").name;
        assert_ne!(next, owner);
        map.set_health(&next, NodeHealth::Draining).unwrap();
        let last = map.route("local", "core2").expect("last survivor").name;
        assert!(last != owner && last != next);
        map.set_health(&last, NodeHealth::Down).unwrap();
        assert!(matches!(
            map.route("local", "core2"),
            Err(ClusterError::NoBackends)
        ));
        assert!(matches!(
            map.set_health("node-9", NodeHealth::Alive),
            Err(ClusterError::UnknownNode { .. })
        ));
    }

    #[test]
    fn frame_announcements_and_terminators_parse() {
        assert_eq!(frame_len(b"frame stacks 123"), Some(123));
        assert_eq!(frame_len(b"stack bench 1.0"), None);
        assert_eq!(trim_line(b"ok\n"), b"ok");
        assert_eq!(trim_line(b"ok\r\n"), b"ok");
        assert_eq!(snapshot_hex(b"snapshot deadbeef\nok\n"), Some("deadbeef"));
        assert_eq!(snapshot_hex(b"err: no snapshot\n"), None);
    }
}
