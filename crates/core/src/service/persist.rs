//! Durable model state for [`CpiService`](super::CpiService): fitted
//! [`ModelParams`](crate::params::ModelParams) snapshots on disk, so a
//! restarted service warms up without re-running a single regression.
//!
//! A [`SnapshotStore`] maps one file per
//! `(machine, suite, FitOptions fingerprint, records digest)` key under a
//! state directory (`cpistack serve --state-dir`, or
//! [`ServiceConfig::with_state_dir`](super::ServiceConfig::with_state_dir)).
//! The service writes a snapshot behind the worker pool whenever a fresh
//! fit completes, and consults the store lazily on a model-cache miss:
//! a disk hit re-assembles the [`InferredModel`](crate::fit::InferredModel)
//! from its persisted parts (the fit is deterministic, so the restored
//! model is bit-identical to the one that was saved) and promotes it into
//! the in-memory cache.
//!
//! The **records digest** is the load-bearing part of the key: it is a
//! content hash of the exact suite-filtered training records, so ingesting
//! a different batch after a restart — one more run, one changed counter —
//! produces a different digest, the lookup misses, and the service falls
//! through to a fresh fit. Stale parameters are never served.
//!
//! # File format (version 1)
//!
//! Everything is little-endian, and the whole file is covered by a
//! trailing FNV-1a checksum — a single flipped byte anywhere (magic,
//! header, a parameter, even the checksum itself) fails [`decode`] and is
//! treated by the service as a cache miss, never a panic:
//!
//! ```text
//! magic   b"CPIS"                    4 bytes
//! version u32 = 1                    4 bytes
//! machine u16 length + name bytes
//! suite   u16 length + name bytes    (length 0 = pooled / all suites)
//! options fingerprint u64
//! records digest u64
//! records count u32
//! arch    5 × f64  (D, c_fe, c_L2, c_mem, c_TLB)
//! params  10 × f64 (b1 … b10)
//! interval_cap f64
//! objective    f64
//! checksum u64 = fnv64(all preceding bytes)
//! ```
//!
//! # Examples
//!
//! ```
//! use memodel::service::persist::{records_digest, ModelSnapshot, SnapshotStore};
//! use memodel::{MicroarchParams, ModelParams};
//! use pmu::{MachineId, Suite};
//!
//! let dir = std::env::temp_dir().join(format!("cpis_doc_{}", std::process::id()));
//! let store = SnapshotStore::open(&dir).unwrap();
//! let snap = ModelSnapshot {
//!     machine: MachineId::Core2,
//!     suite: Some(Suite::Cpu2000),
//!     options_fingerprint: 7,
//!     records_digest: 9,
//!     records: 12,
//!     arch: MicroarchParams::new(4.0, 14.0, 19.0, 169.0, 30.0),
//!     params: ModelParams::initial_guess(),
//!     interval_cap: 256.0,
//!     objective: 0.25,
//! };
//! store.save(&snap).unwrap();
//! let back = store.load(MachineId::Core2, Some(Suite::Cpu2000), 7, 9).unwrap();
//! assert_eq!(back.unwrap().params, snap.params);
//! assert!(store.load(MachineId::Core2, Some(Suite::Cpu2000), 7, 10).unwrap().is_none());
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

use crate::params::{MicroarchParams, ModelParams};
use pmu::{MachineId, RunRecord, Suite};
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 4] = *b"CPIS";

/// Current snapshot format version.
pub const VERSION: u32 = 1;

/// 64-bit FNV-1a over a byte stream — the checksum for snapshot files and
/// binary protocol frames. Not cryptographic; it exists to catch
/// corruption (any single-byte difference changes the digest, because
/// every round is an injective map of the running state for a fixed
/// input suffix).
pub fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_update(0xcbf2_9ce4_8422_2325, bytes)
}

/// Folds more bytes into a running FNV-1a state, for checksums over
/// non-contiguous parts (`fnv64(a ++ b) == fnv64_update(fnv64(a), b)`).
pub fn fnv64_update(state: u64, bytes: &[u8]) -> u64 {
    let mut hash = state;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Content digest of a training-record set: the hash of its canonical CSV
/// serialization (benchmark order preserved — the service snapshots
/// records in batch-arrival order, which a replayed ingest reproduces).
pub fn records_digest(records: &[RunRecord]) -> u64 {
    fnv64(pmu::csv::to_csv(records).as_bytes())
}

/// A persistence failure. The service itself only ever *logs through* a
/// corrupt or unreadable snapshot (treating it as a cache miss); the typed
/// error exists for tools and tests that need to see why a file was
/// rejected.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Reading or writing the state directory failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The file's bytes do not decode as a snapshot (bad magic, wrong
    /// version, truncation, checksum mismatch, an unknown machine or
    /// suite name…). The payload says which check failed.
    Corrupt {
        /// Which structural check rejected the bytes.
        reason: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, error } => {
                write!(f, "snapshot i/o on `{}`: {error}", path.display())
            }
            PersistError::Corrupt { reason } => write!(f, "corrupt snapshot: {reason}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { error, .. } => Some(error),
            PersistError::Corrupt { .. } => None,
        }
    }
}

/// Everything needed to re-assemble one fitted model without refitting,
/// plus the key identifying which training state it belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// The machine modeled.
    pub machine: MachineId,
    /// The suite slice trained on (`None` = pooled).
    pub suite: Option<Suite>,
    /// [`FitOptions::fingerprint`](crate::fit::FitOptions::fingerprint) of
    /// the options the fit ran with.
    pub options_fingerprint: u64,
    /// [`records_digest`] of the exact training records.
    pub records_digest: u64,
    /// Training-record count (informational; the digest is authoritative).
    pub records: u32,
    /// The microarchitectural constants the model was fitted against.
    pub arch: MicroarchParams,
    /// The ten fitted regression parameters.
    pub params: ModelParams,
    /// The interval cap the fit used.
    pub interval_cap: f64,
    /// Final objective value of the fit.
    pub objective: f64,
}

fn push_name(buf: &mut Vec<u8>, name: &str) {
    let len = u16::try_from(name.len()).expect("machine/suite names are short");
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(name.as_bytes());
}

/// Serializes a snapshot into the version-1 byte format (checksum
/// included).
pub fn encode(snap: &ModelSnapshot) -> Vec<u8> {
    let mut buf = Vec::with_capacity(192);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    push_name(&mut buf, snap.machine.name());
    push_name(&mut buf, snap.suite.map(Suite::name).unwrap_or(""));
    buf.extend_from_slice(&snap.options_fingerprint.to_le_bytes());
    buf.extend_from_slice(&snap.records_digest.to_le_bytes());
    buf.extend_from_slice(&snap.records.to_le_bytes());
    for v in [
        snap.arch.width,
        snap.arch.fe_depth,
        snap.arch.c_l2,
        snap.arch.c_mem,
        snap.arch.c_tlb,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    for v in snap.params.b {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf.extend_from_slice(&snap.interval_cap.to_le_bytes());
    buf.extend_from_slice(&snap.objective.to_le_bytes());
    let checksum = fnv64(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// A bounds-checked little-endian reader over a snapshot body.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.at + n > self.bytes.len() {
            return Err(PersistError::Corrupt {
                reason: format!("truncated at byte {} (wanted {n} more)", self.at),
            });
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn name(&mut self) -> Result<&'a str, PersistError> {
        let len = self.u16()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| PersistError::Corrupt {
            reason: "name is not utf-8".into(),
        })
    }
}

/// Decodes (and fully validates) one snapshot file's bytes.
///
/// # Errors
///
/// [`PersistError::Corrupt`] naming the failed check. The checksum is
/// verified over the *entire* prefix before any field is interpreted, so
/// any single-byte corruption — in the header, a parameter, or the
/// checksum itself — is rejected here rather than surfacing as a wrong
/// model.
pub fn decode(bytes: &[u8]) -> Result<ModelSnapshot, PersistError> {
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(PersistError::Corrupt {
            reason: format!("{} bytes is too short for a snapshot", bytes.len()),
        });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    let computed = fnv64(body);
    if stored != computed {
        return Err(PersistError::Corrupt {
            reason: format!("checksum mismatch (stored {stored:016x}, computed {computed:016x})"),
        });
    }
    let mut r = Reader { bytes: body, at: 0 };
    if r.take(4)? != MAGIC {
        return Err(PersistError::Corrupt {
            reason: "bad magic".into(),
        });
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(PersistError::Corrupt {
            reason: format!("unsupported snapshot version {version}"),
        });
    }
    let machine = MachineId::from_str(r.name()?).map_err(|e| PersistError::Corrupt {
        reason: e.to_string(),
    })?;
    let suite_name = r.name()?;
    let suite = if suite_name.is_empty() {
        None
    } else {
        Some(
            Suite::from_str(suite_name).map_err(|e| PersistError::Corrupt {
                reason: e.to_string(),
            })?,
        )
    };
    let options_fingerprint = r.u64()?;
    let records_digest = r.u64()?;
    let records = r.u32()?;
    let arch_raw = [r.f64()?, r.f64()?, r.f64()?, r.f64()?, r.f64()?];
    if arch_raw.iter().any(|v| !v.is_finite() || *v <= 0.0) {
        return Err(PersistError::Corrupt {
            reason: "non-positive microarchitectural constant".into(),
        });
    }
    let mut b = [0.0f64; ModelParams::COUNT];
    for slot in &mut b {
        *slot = r.f64()?;
    }
    let interval_cap = r.f64()?;
    let objective = r.f64()?;
    if r.at != body.len() {
        return Err(PersistError::Corrupt {
            reason: format!("{} trailing bytes", body.len() - r.at),
        });
    }
    Ok(ModelSnapshot {
        machine,
        suite,
        options_fingerprint,
        records_digest,
        records,
        arch: MicroarchParams::new(
            arch_raw[0],
            arch_raw[1],
            arch_raw[2],
            arch_raw[3],
            arch_raw[4],
        ),
        params: ModelParams { b },
        interval_cap,
        objective,
    })
}

/// The on-disk store: one snapshot file per key under a state directory.
///
/// Cloneable and cheap — workers clone the handle out of the service lock
/// and do all file i/o outside it.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, PersistError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|error| PersistError::Io {
            path: dir.clone(),
            error,
        })?;
        Ok(Self { dir })
    }

    /// The state directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The tenant-scoped view of this store: the implicit local tenant
    /// keeps the root directory itself (so single-tenant deployments are
    /// unchanged on disk), every other tenant gets its own
    /// `tenant-<name>/` subdirectory — created on first use. Tenant names
    /// are path-safe by construction
    /// ([`TenantId::new`](super::TenantId::new) admits only
    /// `[a-z0-9_-]`), so a hostile tenant name can never escape the state
    /// dir.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the subdirectory cannot be created.
    pub fn for_tenant(&self, tenant: &super::TenantId) -> Result<SnapshotStore, PersistError> {
        if tenant.is_local() {
            return Ok(self.clone());
        }
        Self::open(self.dir.join(format!("tenant-{}", tenant.name())))
    }

    /// The file a key persists to: every component of the cache identity
    /// is in the name, so a lookup is one `read`, no directory scan.
    pub fn path_for(
        &self,
        machine: MachineId,
        suite: Option<Suite>,
        fingerprint: u64,
        digest: u64,
    ) -> PathBuf {
        self.dir.join(format!(
            "{}-{}-{fingerprint:016x}-{digest:016x}.cpis",
            machine.name(),
            suite.map(Suite::name).unwrap_or("all"),
        ))
    }

    /// Writes one snapshot (atomically: temp file + rename, so a crash
    /// mid-write never leaves a half-snapshot under the final name).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when writing fails.
    pub fn save(&self, snap: &ModelSnapshot) -> Result<PathBuf, PersistError> {
        let path = self.path_for(
            snap.machine,
            snap.suite,
            snap.options_fingerprint,
            snap.records_digest,
        );
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let io_err = |p: &Path| {
            let path = p.to_owned();
            move |error| PersistError::Io {
                path: path.clone(),
                error,
            }
        };
        let mut file = std::fs::File::create(&tmp).map_err(io_err(&tmp))?;
        file.write_all(&encode(snap)).map_err(io_err(&tmp))?;
        file.sync_all().map_err(io_err(&tmp))?;
        drop(file);
        std::fs::rename(&tmp, &path).map_err(io_err(&path))?;
        Ok(path)
    }

    /// Loads the snapshot for a key. `Ok(None)` when no file exists for
    /// it, or when the file decodes but its header disagrees with the
    /// requested key (a renamed or misplaced file — never served).
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] when the file exists but fails
    /// validation; [`PersistError::Io`] on read failures other than
    /// not-found.
    pub fn load(
        &self,
        machine: MachineId,
        suite: Option<Suite>,
        fingerprint: u64,
        digest: u64,
    ) -> Result<Option<ModelSnapshot>, PersistError> {
        let path = self.path_for(machine, suite, fingerprint, digest);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(error) => return Err(PersistError::Io { path, error }),
        };
        let snap = decode(&bytes)?;
        let matches = snap.machine == machine
            && snap.suite == suite
            && snap.options_fingerprint == fingerprint
            && snap.records_digest == digest;
        Ok(matches.then_some(snap))
    }

    /// Snapshot files currently in the store (any key), newest last by
    /// name order. Diagnostics and tests only.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the directory cannot be read.
    pub fn snapshot_files(&self) -> Result<Vec<PathBuf>, PersistError> {
        let entries = std::fs::read_dir(&self.dir).map_err(|error| PersistError::Io {
            path: self.dir.clone(),
            error,
        })?;
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "cpis"))
            .collect();
        files.sort();
        Ok(files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ModelSnapshot {
        ModelSnapshot {
            machine: MachineId::Core2,
            suite: Some(Suite::Cpu2000),
            options_fingerprint: 0xDEAD_BEEF,
            records_digest: 0x1234_5678_9ABC_DEF0,
            records: 48,
            arch: MicroarchParams::new(4.0, 14.0, 19.0, 169.0, 30.0),
            params: ModelParams::initial_guess(),
            interval_cap: 256.0,
            objective: 0.03125,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample();
        assert_eq!(decode(&encode(&snap)).unwrap(), snap);
        // Pooled keys use the empty suite name.
        let pooled = ModelSnapshot {
            suite: None,
            ..snap
        };
        assert_eq!(decode(&encode(&pooled)).unwrap(), pooled);
    }

    #[test]
    fn version_is_checked() {
        let mut bytes = encode(&sample());
        bytes[4] = 2; // version byte
                      // Re-checksum so only the version differs.
        let body_len = bytes.len() - 8;
        let checksum = fnv64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("unsupported snapshot version 2"));
    }

    #[test]
    fn truncation_is_corrupt_not_panic() {
        let bytes = encode(&sample());
        for cut in [0, 3, 11, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn store_round_trips_and_mismatched_keys_miss() {
        let dir = std::env::temp_dir().join(format!("cpis_store_test_{}", std::process::id()));
        let store = SnapshotStore::open(&dir).unwrap();
        let snap = sample();
        let path = store.save(&snap).unwrap();
        assert!(path.ends_with(format!(
            "core2-cpu2000-{:016x}-{:016x}.cpis",
            snap.options_fingerprint, snap.records_digest
        )));
        let hit = store
            .load(
                snap.machine,
                snap.suite,
                snap.options_fingerprint,
                snap.records_digest,
            )
            .unwrap();
        assert_eq!(hit, Some(snap.clone()));
        // Any key component off by one → a miss, not a wrong model.
        assert!(store
            .load(snap.machine, snap.suite, snap.options_fingerprint, 1)
            .unwrap()
            .is_none());
        assert!(store
            .load(
                snap.machine,
                None,
                snap.options_fingerprint,
                snap.records_digest
            )
            .unwrap()
            .is_none());
        assert_eq!(store.snapshot_files().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        use pmu::{CounterSet, Event, RunRecord};
        let rec = |bench: &str, cycles: u64| {
            let mut c = CounterSet::new();
            c.add(Event::Cycles, cycles);
            c.add(Event::UopsRetired, 100);
            RunRecord::new(bench, Suite::Cpu2000, MachineId::Core2, c)
        };
        let a = vec![rec("gzip", 10), rec("gcc", 20)];
        let b = vec![rec("gcc", 20), rec("gzip", 10)];
        let c = vec![rec("gzip", 10), rec("gcc", 21)];
        assert_eq!(records_digest(&a), records_digest(&a));
        assert_ne!(records_digest(&a), records_digest(&b));
        assert_ne!(records_digest(&a), records_digest(&c));
    }
}
