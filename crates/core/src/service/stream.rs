//! The streaming pump: drives a [`LiveSource`] into a running service.
//!
//! This is the shared engine behind `cpistack watch` and the bench
//! harness's streaming section: pull counter batches from a live source,
//! upsert each into the tenant's machine ([`Request::StreamBatch`]), serve
//! a refit ([`Request::Refit`]) and report what it cost, then — once the
//! source runs dry — reconcile with one forced full refit so the final
//! parameters are a pure function of the final record set, independent of
//! how the stream was chopped into batches.
//!
//! [`Request::StreamBatch`]: super::Request::StreamBatch
//! [`Request::Refit`]: super::Request::Refit
//!
//! # Examples
//!
//! ```no_run
//! use memodel::service::{stream, CpiService, ModelKey, ServiceConfig};
//! use memodel::FitOptions;
//! use pmu::live::ReplaySource;
//! use pmu::{MachineId, Suite};
//!
//! let service = CpiService::start(ServiceConfig::new());
//! let client = service.client();
//! // ... register the machine, build a source ...
//! # let records = Vec::new();
//! let mut source = ReplaySource::new(records).batch_size(8).rounds(3).jitter(1);
//! let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
//! let summary = stream::pump(
//!     &client,
//!     &key,
//!     &mut source,
//!     &stream::PumpOptions::default(),
//!     |batch, _records| {
//!         let mode = batch.mode.map_or("deferred", |m| m.name());
//!         println!("batch {} refit {mode}", batch.batch);
//!     },
//! ).unwrap();
//! println!("{} incremental refits", summary.incremental_refits);
//! ```

use super::{CpiClient, ModelKey, ModelReport, RefitMode, ServiceError};
use crate::fit::FitError;
use pmu::live::LiveSource;
use pmu::RunRecord;
use std::time::{Duration, Instant};

/// Options for [`pump`]. Construct via [`Default`] and refine with the
/// `with_*` setters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PumpOptions {
    /// Pause between batches — the sampling cadence of a watch session.
    /// Zero (the default) pumps flat out, which is what replays and CI
    /// smokes want.
    pub interval: Duration,
    /// Reconcile on close: after the source runs dry, run one forced full
    /// refit *if* any incremental refit served the stream, erasing the
    /// polish history from the final parameters. On by default.
    pub reconcile: bool,
}

impl Default for PumpOptions {
    fn default() -> Self {
        Self {
            interval: Duration::ZERO,
            reconcile: true,
        }
    }
}

impl PumpOptions {
    /// Sets the inter-batch pause.
    #[must_use]
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Enables or disables the closing reconciliation refit.
    #[must_use]
    pub fn with_reconcile(mut self, reconcile: bool) -> Self {
        self.reconcile = reconcile;
        self
    }
}

/// What one pumped batch cost, handed to the [`pump`] callback.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct BatchReport {
    /// 1-based batch index.
    pub batch: usize,
    /// Records upserted by this batch.
    pub records: usize,
    /// The machine's generation after the upsert.
    pub generation: u64,
    /// How the refit was served — `None` when it was deferred because
    /// the store cannot determine the 10 parameters yet (a live stream's
    /// earliest batches; the records are ingested and a later batch will
    /// fit them).
    pub mode: Option<RefitMode>,
    /// The served model's objective value (`NaN` when deferred).
    pub objective: f64,
    /// Wall-clock of the refit request, in milliseconds.
    pub millis: f64,
}

/// Totals for one pumped stream, returned by [`pump`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct WatchSummary {
    /// Batches pumped (excluding the closing reconciliation).
    pub batches: usize,
    /// Total records upserted.
    pub records: usize,
    /// In-stream refits served by the full fan-out.
    pub full_refits: u64,
    /// In-stream refits served by the warm-start polish.
    pub incremental_refits: u64,
    /// In-stream refits served straight from the cache.
    pub cached: u64,
    /// Batches upserted without a refit: the store was still too small
    /// to determine the parameters.
    pub deferred: u64,
    /// Whether a closing reconciliation (forced full refit) ran.
    pub reconciled: bool,
    /// The final served model, if any batch was pumped.
    pub report: Option<ModelReport>,
}

/// Pumps `source` dry into `client`'s service: upsert each batch, refit,
/// report, pause, repeat — then reconcile (see [`PumpOptions`]). The
/// callback observes every batch (including the reconciliation, with
/// `records == 0`) together with the records it carried, so callers can
/// print progress lines or append rows to a record file.
///
/// A live stream's earliest batches may land before the store can
/// determine the 10 parameters; those refits are *deferred* (the records
/// stay ingested, [`BatchReport::mode`] is `None`, and
/// [`WatchSummary::deferred`] counts them) rather than failing the pump.
///
/// # Errors
///
/// The first [`ServiceError`] any upsert or refit produces — except an
/// underdetermined fit, which defers as described above; batches already
/// pumped stay ingested.
pub fn pump(
    client: &CpiClient,
    key: &ModelKey,
    source: &mut dyn LiveSource,
    opts: &PumpOptions,
    mut on_batch: impl FnMut(&BatchReport, &[RunRecord]),
) -> Result<WatchSummary, ServiceError> {
    let mut summary = WatchSummary {
        batches: 0,
        records: 0,
        full_refits: 0,
        incremental_refits: 0,
        cached: 0,
        deferred: 0,
        reconciled: false,
        report: None,
    };
    while let Some(batch) = source.next_batch() {
        if batch.is_empty() {
            continue;
        }
        let (landed, generation) = client.stream_batch(key.machine, batch.clone())?;
        let started = Instant::now();
        let refit = client.refit(key.clone(), false);
        let millis = started.elapsed().as_secs_f64() * 1_000.0;
        summary.batches += 1;
        summary.records += landed;
        let (mode, objective) = match refit {
            Ok((report, mode)) => {
                match mode {
                    RefitMode::Full => summary.full_refits += 1,
                    RefitMode::Incremental => summary.incremental_refits += 1,
                    RefitMode::Cached => summary.cached += 1,
                }
                let objective = report.model.objective();
                summary.report = Some(report);
                (Some(mode), objective)
            }
            Err(ServiceError::Fit {
                error: FitError::TooFewRecords { .. },
                ..
            }) => {
                summary.deferred += 1;
                (None, f64::NAN)
            }
            Err(e) => return Err(e),
        };
        let progress = BatchReport {
            batch: summary.batches,
            records: landed,
            generation,
            mode,
            objective,
            millis,
        };
        on_batch(&progress, &batch);
        if !opts.interval.is_zero() {
            std::thread::sleep(opts.interval);
        }
    }
    // Close: when any polish served the stream, re-anchor with one forced
    // full refit so the final parameters depend only on the final records.
    if opts.reconcile && summary.incremental_refits > 0 {
        let started = Instant::now();
        let (report, mode) = client.refit(key.clone(), true)?;
        let millis = started.elapsed().as_secs_f64() * 1_000.0;
        summary.reconciled = true;
        let progress = BatchReport {
            batch: summary.batches + 1,
            records: 0,
            generation: report.generation,
            mode: Some(mode),
            objective: report.model.objective(),
            millis,
        };
        summary.report = Some(report);
        on_batch(&progress, &[]);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::super::{CpiService, ServiceConfig};
    use super::*;
    use crate::fit::FitOptions;
    use crate::workbench::{MachineSpec, SimSource};
    use oosim::machine::MachineConfig;
    use pmu::live::ReplaySource;
    use pmu::{MachineId, Suite};

    #[test]
    fn pump_streams_refits_and_reconciles() {
        let service = CpiService::start(ServiceConfig::new().with_workers(2));
        let client = service.client();
        client
            .register(MachineSpec::from(MachineConfig::core2()))
            .expect("register");
        let records = SimSource::new()
            .suite(specgen::suites::cpu2000().into_iter().take(12).collect())
            .uops(3_000)
            .seed(7)
            .collect_config(&MachineConfig::core2());
        let mut source = ReplaySource::new(records)
            .batch_size(12)
            .rounds(3)
            .jitter(9);
        let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
        let mut seen = Vec::new();
        let summary = pump(
            &client,
            &key,
            &mut source,
            &PumpOptions::default(),
            |batch, records| seen.push((batch.batch, batch.mode, records.len())),
        )
        .expect("pump");
        assert_eq!(summary.batches, 3);
        assert_eq!(summary.records, 36);
        assert_eq!(summary.full_refits, 1, "round 0 anchors");
        assert_eq!(summary.incremental_refits, 2, "stationary rounds polish");
        assert!(summary.reconciled);
        assert_eq!(seen.len(), 4, "3 batches + the reconciliation");
        assert_eq!(seen[3], (4, Some(RefitMode::Full), 0));
        let report = summary.report.expect("final model");
        assert_eq!(report.records, 12, "upserts keep the store bounded");
        let stats = service.shutdown();
        assert_eq!(stats.cache.full_refits, 2);
        assert_eq!(stats.cache.incremental_refits, 2);
    }

    #[test]
    fn early_small_batches_defer_instead_of_failing() {
        let service = CpiService::start(ServiceConfig::new().with_workers(2));
        let client = service.client();
        client
            .register(MachineSpec::from(MachineConfig::core2()))
            .expect("register");
        let records = SimSource::new()
            .suite(specgen::suites::cpu2000().into_iter().take(12).collect())
            .uops(3_000)
            .seed(7)
            .collect_config(&MachineConfig::core2());
        // 12 records in 4-record batches: the store holds 4, then 8 —
        // both short of the 11 the regression needs — then 12.
        let mut source = ReplaySource::new(records).batch_size(4);
        let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
        let mut modes = Vec::new();
        let summary = pump(
            &client,
            &key,
            &mut source,
            &PumpOptions::default(),
            |batch, _| modes.push((batch.mode, batch.objective.is_nan())),
        )
        .expect("small batches defer, not fail");
        assert_eq!(summary.batches, 3);
        assert_eq!(summary.deferred, 2, "4- and 8-record stores defer");
        assert_eq!(summary.full_refits, 1, "the 12-record store anchors");
        assert_eq!(
            modes,
            vec![(None, true), (None, true), (Some(RefitMode::Full), false)]
        );
        assert!(!summary.reconciled, "no polish ran; nothing to reconcile");
        assert_eq!(summary.report.expect("final model").records, 12);
        service.shutdown();
    }

    #[test]
    fn pump_of_an_empty_source_is_a_no_op() {
        let service = CpiService::start(ServiceConfig::new().with_workers(1));
        let client = service.client();
        client
            .register(MachineSpec::from(MachineConfig::core2()))
            .expect("register");
        let mut source = ReplaySource::new(Vec::new());
        let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
        let summary = pump(
            &client,
            &key,
            &mut source,
            &PumpOptions::default(),
            |_, _| panic!("no batches expected"),
        )
        .expect("pump");
        assert_eq!(summary.batches, 0);
        assert!(!summary.reconciled);
        assert!(summary.report.is_none());
        service.shutdown();
    }
}
