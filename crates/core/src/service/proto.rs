//! The serve-session protocol codec and its two transports.
//!
//! `cpistack serve` exposes a [`CpiService`](super::CpiService) session as
//! a **line protocol**: one command per line in, zero or more payload
//! lines plus exactly one terminator (`ok` or `err: …`) out. This module
//! is the single implementation of that protocol — the command parser,
//! the response formatter, and the session loop — shared by both fronts:
//!
//! * **stdio** — [`run_session`] over any `BufRead`/`Write` pair (the
//!   classic `printf '…' | cpistack serve` path),
//! * **TCP** — [`serve_tcp`] accepts N concurrent connections on a
//!   [`std::net::TcpListener`], each with its own [`CpiClient`] and
//!   session state, an idle timeout, and graceful shutdown (the
//!   `shutdown` command stops the whole server; `quit` only closes the
//!   issuing connection).
//!
//! Because both fronts run the same [`execute_line`] codec against the
//! same deterministic service, a scripted session produces
//! **byte-identical** transcripts over stdin/stdout and over a socket —
//! the golden-file protocol tests pin exactly that.
//!
//! # Tenants and the `hello` handshake
//!
//! Sessions are built from a [`SessionSpec`]. An **open** spec
//! ([`SessionSpec::open`]) runs every session as the client's bound
//! tenant (the implicit local tenant for `CpiService::client()`) — the
//! pre-tenancy behaviour, and still the default for `cpistack serve`
//! without `--auth`. A spec with a token registry
//! ([`SessionSpec::with_auth`]) instead starts every session
//! **unauthenticated**: until a `hello <token>` resolves against the
//! [`auth::TokenRegistry`](super::auth::TokenRegistry), only `hello`,
//! `help` and `quit` are admitted — anything else (including `shutdown`:
//! an anonymous socket must not be able to stop the server) is rejected
//! *before command dispatch* with `err: authenticate first`. A successful
//! `hello` rebinds the session's client to the token's tenant; a later
//! `hello` may rebind to another tenant. Everything a session does —
//! machine registration, ingestion, fits, cache and persisted state,
//! the `stats` line — is scoped to that tenant (see the
//! [service module docs](super) for the isolation guarantees).
//!
//! # Command set
//!
//! ```text
//! hello <token>                                     authenticate as a tenant
//! machine <name> <width> <depth> <l2> <mem> <tlb>   register constants
//! ingest <path>                                     load a counters CSV
//! fit <machine> <suite|all>                         fit or serve from cache
//! stack <machine> <suite|all>                       stream one stack line per benchmark
//! binstack <machine> <suite|all>                    same stacks, one binary frame
//! predict <machine> <suite|all>                     measured vs predicted CPI
//! delta <old> <new> <suite>                         CPI-delta stacks (Fig. 6)
//! sweep <base> <suite> <axis=v,v ...>               design-space sweep, ranked
//! stats                                             service counters (this tenant)
//! help                                              reprint this list
//! quit                                              close this session
//! shutdown                                          stop the whole server
//! ```
//!
//! # Binary framing
//!
//! Bulk stack streams pay line formatting per benchmark; `binstack`
//! instead announces `frame stacks <len>` and follows with exactly `len`
//! raw bytes — a checksummed, length-prefixed frame ([`FRAME_MAGIC`],
//! kind byte, `u32` payload length, payload, FNV-1a checksum) holding
//! every stack of the request. [`decode_stack_frame`] is the client-side
//! inverse; [`read_frame`] pulls one frame off any `Read`. Line-oriented
//! clients that ignore `frame …` announcements never desynchronize: the
//! announce line tells them how many bytes to skip.

use super::auth::TokenRegistry;
use super::persist::fnv64;
use super::poller::{self, Dispatch, LoopConfig, Poller, ServeBackend};
use super::sweep::{SweepGrid, SweepSpec};
use super::{
    CpiClient, ModelKey, RefitMode, Request, Response, ServiceConfig, ServiceError, TenantId,
};
use crate::fit::FitOptions;
use crate::params::MicroarchParams;
use crate::stack::CpiStack;
use crate::workbench::MachineSpec;
use pmu::{MachineId, RunRecord, Suite};
use std::io::{BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Text reprinted by the in-session `help` command.
pub const SERVE_HELP: &str = "\
commands (one per line; every command ends with `ok` or `err: ...`):
  hello <token>                                     authenticate as a tenant
  machine <name> <width> <depth> <l2> <mem> <tlb>   register constants
  ingest <path>                                     load a counters CSV
  fit <machine> <suite|all>                         fit or serve from cache
  stack <machine> <suite|all>                       stream one stack per benchmark
  binstack <machine> <suite|all>                    same stacks as one binary frame
  predict <machine> <suite|all>                     measured vs predicted CPI
  delta <old> <new> <suite>                         CPI-delta stacks (Fig. 6)
  sweep <base> <suite> <axis=v,v ...>               design-space sweep, ranked
  stats                                             service counters (this tenant)
  help                                              this list
  quit                                              close this session
  shutdown                                          stop the whole server";

/// The greeting both fronts print when a session opens, so transcripts
/// are front-agnostic.
pub fn banner(config: &ServiceConfig, quick: bool) -> String {
    format!(
        "cpistack serve: {} workers, cache {} models{} (type `help`)",
        config.workers,
        config.cache_capacity,
        if quick { ", quick fits" } else { "" }
    )
}

/// A session-command failure: protocol errors are reported in-band
/// (`err: …`) and the session continues; transport errors abort it.
#[derive(Debug)]
pub enum CommandError {
    /// Malformed or unservable command — written as an `err:` line.
    Protocol(String),
    /// Writing the response failed; the session ends.
    Io(std::io::Error),
}

impl From<std::io::Error> for CommandError {
    fn from(e: std::io::Error) -> Self {
        CommandError::Io(e)
    }
}

impl From<ServiceError> for CommandError {
    fn from(e: ServiceError) -> Self {
        CommandError::Protocol(e.to_string())
    }
}

/// What a processed line asks the transport to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOutcome {
    /// Keep reading commands.
    Continue,
    /// Close this session (the `quit` command).
    Quit,
    /// Close this session *and* stop the server it belongs to (the
    /// `shutdown` command). The stdio front treats it like `quit`.
    Shutdown,
}

/// How a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// The client sent `quit`.
    Quit,
    /// The client sent `shutdown`.
    Shutdown,
    /// The input reached end-of-stream without a farewell.
    Eof,
}

/// The recipe both fronts mint per-session state from: a base client, the
/// fit options every session key uses, and (optionally) the token
/// registry that gates sessions behind the `hello` handshake. Cheap to
/// clone — the TCP front clones one per connection.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    client: CpiClient,
    options: FitOptions,
    registry: Option<Arc<TokenRegistry>>,
}

impl SessionSpec {
    /// A spec whose sessions run pre-authenticated as `client`'s bound
    /// tenant (the implicit local tenant for `CpiService::client()`) —
    /// no handshake required.
    pub fn open(client: CpiClient, options: FitOptions) -> Self {
        Self {
            client,
            options,
            registry: None,
        }
    }

    /// A spec whose sessions start unauthenticated and must present a
    /// registered token via `hello <token>` before any serving command is
    /// dispatched.
    pub fn with_auth(client: CpiClient, options: FitOptions, registry: Arc<TokenRegistry>) -> Self {
        Self {
            client,
            options,
            registry: Some(registry),
        }
    }

    /// Mints one session's state.
    pub fn session(&self) -> Session {
        Session {
            client: self.client.clone(),
            options: self.options.clone(),
            registry: self.registry.clone(),
            authenticated: self.registry.is_none(),
            stream: None,
        }
    }
}

/// One protocol session's state: the (possibly rebound) client and
/// whether the `hello` handshake has happened. Minted by
/// [`SessionSpec::session`]; consumed line by line by [`execute_line`].
#[derive(Debug)]
pub struct Session {
    client: CpiClient,
    options: FitOptions,
    registry: Option<Arc<TokenRegistry>>,
    authenticated: bool,
    stream: Option<StreamState>,
}

/// An open `stream` session's buffer and tallies (see [`run_stream`]).
/// Dropped with the session: rows never flushed are never ingested.
#[derive(Debug)]
struct StreamState {
    machine: MachineId,
    suite: Option<Suite>,
    pending: Vec<RunRecord>,
    batches: u64,
    records: u64,
    full: u64,
    incremental: u64,
    cached: u64,
    /// Whether an incremental refit has served since the last full one —
    /// `stream close` reconciles with a forced full refit iff set.
    dirty: bool,
}

impl StreamState {
    fn new(machine: MachineId, suite: Option<Suite>) -> Self {
        Self {
            machine,
            suite,
            pending: Vec::new(),
            batches: 0,
            records: 0,
            full: 0,
            incremental: 0,
            cached: 0,
            dirty: false,
        }
    }
}

impl Session {
    /// The tenant this session currently acts as (meaningful once
    /// [`Session::is_authenticated`]).
    pub fn tenant(&self) -> &TenantId {
        self.client.tenant()
    }

    /// Whether serving commands are admitted: `true` from the start for
    /// open specs, after a valid `hello` otherwise.
    pub fn is_authenticated(&self) -> bool {
        self.authenticated
    }
}

/// The in-band rejection for serving commands on a not-yet-authenticated
/// session.
const AUTH_REQUIRED: &str = "authenticate first: hello <token>";

/// Parses and executes one protocol line, writing every response line
/// (payload + terminator) to `output`. This is the whole codec: both
/// fronts funnel every command through here.
///
/// On a session minted from an auth-gated [`SessionSpec`], every command
/// except `hello`, `help` and `quit` is rejected in-band until a
/// `hello <token>` resolves — the gate runs *before* command dispatch, so
/// an unauthenticated line can never reach the service (or stop the
/// server via `shutdown`).
///
/// # Errors
///
/// Only transport failures; protocol problems are reported in-band as
/// `err: …` lines and the session continues.
pub fn execute_line(
    session: &mut Session,
    line: &str,
    output: &mut impl Write,
) -> std::io::Result<LineOutcome> {
    let words: Vec<&str> = line.split_whitespace().collect();
    let Some(&first) = words.first() else {
        return Ok(LineOutcome::Continue);
    };
    // The handshake itself, and the authentication gate, both run before
    // any command parsing or service dispatch.
    if first == "hello" {
        if words.len() != 2 {
            writeln!(output, "err: usage: hello <token>")?;
            return Ok(LineOutcome::Continue);
        }
        let Some(registry) = session.registry.as_deref() else {
            writeln!(output, "err: token auth is not enabled")?;
            return Ok(LineOutcome::Continue);
        };
        let Some(tenant) = registry.resolve(words[1]) else {
            writeln!(output, "err: bad token")?;
            return Ok(LineOutcome::Continue);
        };
        session.client = session.client.for_tenant(tenant);
        session.authenticated = true;
        writeln!(output, "hello {}", session.tenant())?;
        writeln!(output, "ok")?;
        return Ok(LineOutcome::Continue);
    }
    if !session.authenticated && first != "help" && first != "quit" {
        writeln!(output, "err: {AUTH_REQUIRED}")?;
        return Ok(LineOutcome::Continue);
    }
    // The farewells get the same arity discipline as every other
    // command: a typo like `shutdown now` must not stop a whole
    // multi-client server.
    if first == "quit" || first == "shutdown" {
        if words.len() != 1 {
            writeln!(output, "err: usage: {first}")?;
            return Ok(LineOutcome::Continue);
        }
        writeln!(output, "ok")?;
        return Ok(if first == "quit" {
            LineOutcome::Quit
        } else {
            LineOutcome::Shutdown
        });
    }
    // The streaming verbs mutate per-session state (the open stream's
    // buffer and tallies), so they dispatch here rather than through the
    // stateless `run_command`.
    if first == "stream" {
        match run_stream(session, &words, output) {
            Ok(()) => writeln!(output, "ok")?,
            Err(CommandError::Protocol(msg)) => writeln!(output, "err: {msg}")?,
            Err(CommandError::Io(e)) => return Err(e),
        }
        return Ok(LineOutcome::Continue);
    }
    match run_command(&session.client, &session.options, &words, output) {
        Ok(()) => writeln!(output, "ok")?,
        Err(CommandError::Protocol(msg)) => writeln!(output, "err: {msg}")?,
        Err(CommandError::Io(e)) => return Err(e),
    }
    Ok(LineOutcome::Continue)
}

/// The streamed-ingest verbs. Session-stateful, and — like the cluster's
/// `pullsnap`/`pushsnap` — deliberately absent from `help` (whose text is
/// pinned by golden transcripts): `cpistack watch` is the intended driver,
/// speaking this vocabulary over either front.
///
/// ```text
/// stream open <machine> <suite|all>   start a streamed session
/// stream rec <csv-row>                buffer one counter row (no header)
/// stream flush                        upsert the buffer, refit, report
/// stream close                        flush, reconcile, summarize
/// ```
///
/// `flush` answers `batch <n> records <r> generation <g> refit
/// <full|incremental|cached> objective <o>`; `close` reconciles with one
/// forced full refit when any incremental refit served the stream, so the
/// final model depends only on the final record set.
fn run_stream(
    session: &mut Session,
    words: &[&str],
    output: &mut impl Write,
) -> Result<(), CommandError> {
    // The session's client/options are cheap clones; taking them up front
    // keeps the mutable borrow of `session.stream` free of conflicts.
    let client = session.client.clone();
    let options = session.options.clone();
    match words.get(1).copied() {
        Some("open") => {
            if words.len() != 4 {
                return Err(CommandError::Protocol(
                    "usage: stream open <machine> <suite|all>".into(),
                ));
            }
            if session.stream.is_some() {
                return Err(CommandError::Protocol(
                    "a stream is already open (flush or close it first)".into(),
                ));
            }
            let machine = parse_machine(words[2])?;
            let suite = parse_suite(words[3])?;
            session.stream = Some(StreamState::new(machine, suite));
            writeln!(
                output,
                "streaming {} {}",
                machine.name(),
                suite.map_or("all", Suite::name)
            )?;
        }
        Some("rec") => {
            if words.len() != 3 {
                return Err(CommandError::Protocol("usage: stream rec <csv-row>".into()));
            }
            let state = session
                .stream
                .as_mut()
                .ok_or_else(|| CommandError::Protocol("no stream is open".into()))?;
            let record = pmu::csv::from_csv_row(words[2])
                .map_err(|e| CommandError::Protocol(e.to_string()))?;
            if record.machine() != state.machine {
                return Err(CommandError::Protocol(format!(
                    "row is for {}, stream is for {}",
                    record.machine().name(),
                    state.machine.name()
                )));
            }
            if state.suite.is_some_and(|s| record.suite() != s) {
                return Err(CommandError::Protocol(format!(
                    "row is for {}, stream is for {}",
                    record.suite().name(),
                    state.suite.map_or("all", Suite::name)
                )));
            }
            state.pending.push(record);
        }
        Some("flush") => {
            if words.len() != 2 {
                return Err(CommandError::Protocol("usage: stream flush".into()));
            }
            let state = session
                .stream
                .as_mut()
                .ok_or_else(|| CommandError::Protocol("no stream is open".into()))?;
            flush_stream_batch(&client, &options, state, output)?;
        }
        Some("close") => {
            if words.len() != 2 {
                return Err(CommandError::Protocol("usage: stream close".into()));
            }
            // Take the state up front: even a failing close leaves the
            // session ready for a fresh `stream open`.
            let mut state = session
                .stream
                .take()
                .ok_or_else(|| CommandError::Protocol("no stream is open".into()))?;
            if !state.pending.is_empty() {
                flush_stream_batch(&client, &options, &mut state, output)?;
            }
            if state.dirty {
                let key = ModelKey::new(state.machine, state.suite, options);
                let (report, mode) = client.refit(key, true)?;
                writeln!(
                    output,
                    "reconciled {} objective {:.6}",
                    mode,
                    report.model.objective()
                )?;
            }
            writeln!(
                output,
                "stream closed: batches {} records {} refits full {} incremental {} cached {}",
                state.batches, state.records, state.full, state.incremental, state.cached
            )?;
        }
        _ => {
            return Err(CommandError::Protocol(
                "usage: stream <open|rec|flush|close>".into(),
            ))
        }
    }
    Ok(())
}

/// Upserts the buffered rows as one batch and serves a refit, reporting
/// what the refit cost — the shared tail of `stream flush` and the
/// implicit flush inside `stream close`.
fn flush_stream_batch(
    client: &CpiClient,
    options: &FitOptions,
    state: &mut StreamState,
    output: &mut impl Write,
) -> Result<(), CommandError> {
    if state.pending.is_empty() {
        return Err(CommandError::Protocol("nothing to flush".into()));
    }
    let rows: Vec<RunRecord> = state.pending.drain(..).collect();
    let (landed, generation) = client.stream_batch(state.machine, rows)?;
    let key = ModelKey::new(state.machine, state.suite, options.clone());
    let (report, mode) = client.refit(key, false)?;
    state.batches += 1;
    state.records += landed as u64;
    match mode {
        RefitMode::Full => state.full += 1,
        RefitMode::Incremental => {
            state.incremental += 1;
            state.dirty = true;
        }
        RefitMode::Cached => state.cached += 1,
    }
    writeln!(
        output,
        "batch {} records {} generation {} refit {} objective {:.6}",
        state.batches,
        landed,
        generation,
        mode,
        report.model.objective()
    )?;
    Ok(())
}

/// Runs a whole scripted session over a blocking `BufRead` — the stdio
/// front, and the harness the golden-file protocol tests drive. Invalid
/// UTF-8 in the input is replaced, not fatal, exactly as on the TCP
/// front — a stray byte earns an in-band `err:`, never a dead session.
///
/// # Errors
///
/// Transport failures only.
pub fn run_session(
    session: &mut Session,
    mut input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<SessionEnd> {
    let mut buf = Vec::new();
    loop {
        buf.clear();
        if input.read_until(b'\n', &mut buf)? == 0 {
            return Ok(SessionEnd::Eof);
        }
        if buf.last() == Some(&b'\n') {
            buf.pop();
        }
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        let line = String::from_utf8_lossy(&buf).into_owned();
        match execute_line(session, &line, &mut output)? {
            LineOutcome::Continue => {}
            LineOutcome::Quit => return Ok(SessionEnd::Quit),
            LineOutcome::Shutdown => return Ok(SessionEnd::Shutdown),
        }
    }
}

fn parse_machine(word: &str) -> Result<MachineId, CommandError> {
    MachineId::from_str(word).map_err(|e| CommandError::Protocol(e.to_string()))
}

/// Parses the `<suite|all>` protocol word.
fn parse_suite(word: &str) -> Result<Option<Suite>, CommandError> {
    if word == "all" {
        return Ok(None);
    }
    Suite::from_str(word)
        .map(Some)
        .map_err(|e| CommandError::Protocol(e.to_string()))
}

/// Parses the `sweep` verb's words into a [`SweepSpec`]:
/// `sweep <base> <suite> [rob|mshr|dw|pf=v,v...] [uops=N] [seed=N]
/// [limit=N] [component=NAME] [only=v1,v2]`. The grid may be empty (the
/// sweep then serves the base alone); the session's fit options become
/// the spec's.
fn parse_sweep_spec(words: &[&str], options: &FitOptions) -> Result<SweepSpec, CommandError> {
    const USAGE: &str = "usage: sweep <base> <suite> [rob|mshr|dw|pf=v,v...] \
                         [uops=N] [seed=N] [limit=N] [component=NAME] [only=v1,v2]";
    if words.len() < 3 {
        return Err(CommandError::Protocol(USAGE.into()));
    }
    let base = parse_machine(words[1])?;
    let suite = parse_suite(words[2])?
        .ok_or_else(|| CommandError::Protocol("sweep needs a concrete suite, not `all`".into()))?;
    let mut spec = SweepSpec::new(base, SweepGrid::new(), suite);
    spec.options = options.clone();
    let number = |key: &str, value: &str| -> Result<u64, CommandError> {
        value
            .parse::<u64>()
            .map_err(|_| CommandError::Protocol(format!("bad {key} value `{value}`")))
    };
    for arg in &words[3..] {
        let Some((key, value)) = arg.split_once('=') else {
            return Err(CommandError::Protocol(format!(
                "expected key=value, got `{arg}` ({USAGE})"
            )));
        };
        match key {
            "uops" => spec.uops = number(key, value)?,
            "seed" => spec.seed = number(key, value)?,
            "limit" => spec.limit = Some(number(key, value)? as usize),
            "component" => {
                spec.component = value
                    .parse()
                    .map_err(|e: super::sweep::SweepError| CommandError::Protocol(e.to_string()))?;
            }
            "only" => {
                let mut ids = Vec::new();
                for name in value.split(',') {
                    ids.push(parse_machine(name)?);
                }
                spec.only = Some(ids);
            }
            _ => spec
                .grid
                .parse_arg(arg)
                .map_err(|e| CommandError::Protocol(e.to_string()))?,
        }
    }
    Ok(spec)
}

fn run_command(
    client: &CpiClient,
    options: &FitOptions,
    words: &[&str],
    output: &mut impl Write,
) -> Result<(), CommandError> {
    let arity = |n: usize, usage: &str| -> Result<(), CommandError> {
        if words.len() == n + 1 {
            Ok(())
        } else {
            Err(CommandError::Protocol(format!("usage: {usage}")))
        }
    };
    let key = |machine: &str, suite: &str| -> Result<ModelKey, CommandError> {
        Ok(ModelKey::new(
            parse_machine(machine)?,
            parse_suite(suite)?,
            options.clone(),
        ))
    };
    match words[0] {
        "help" => writeln!(output, "{SERVE_HELP}")?,
        "machine" => {
            arity(6, "machine <name> <width> <depth> <l2> <mem> <tlb>")?;
            let machine = parse_machine(words[1])?;
            let mut nums = [0.0f64; 5];
            for (slot, word) in nums.iter_mut().zip(&words[2..]) {
                *slot = word
                    .parse()
                    .map_err(|_| CommandError::Protocol(format!("`{word}` is not a number")))?;
                if !slot.is_finite() || *slot <= 0.0 {
                    return Err(CommandError::Protocol(format!(
                        "`{word}` must be a positive finite number"
                    )));
                }
            }
            let [width, depth, l2, mem, tlb] = nums;
            client.register(MachineSpec::real(
                machine,
                MicroarchParams::new(width, depth, l2, mem, tlb),
            ))?;
            writeln!(output, "registered {}", machine.name())?;
        }
        "ingest" => {
            arity(1, "ingest <path>")?;
            let path = words[1];
            let text = std::fs::read_to_string(path)
                .map_err(|e| CommandError::Protocol(format!("reading `{path}` failed: {e}")))?;
            let records = client.ingest_csv(&text, path)?;
            writeln!(output, "ingested {records} records from {path}")?;
        }
        "fit" => {
            arity(2, "fit <machine> <suite|all>")?;
            let (report, predictions) = client.predictions(key(words[1], words[2])?)?;
            writeln!(output, "model: {}", report.model)?;
            writeln!(
                output,
                "records: {}  cache: {}",
                report.records,
                if report.cached { "hit" } else { "miss" }
            )?;
            let mean = predictions
                .iter()
                .map(|(_, measured, predicted)| ((predicted - measured) / measured).abs())
                .sum::<f64>()
                / predictions.len().max(1) as f64;
            writeln!(output, "accuracy: mean abs error {:.2}%", mean * 100.0)?;
        }
        "stack" => {
            // Stream each stack as the worker produces it — a large
            // campaign is never buffered whole (the module docs promise
            // this), and the first lines appear while later ones compute.
            arity(2, "stack <machine> <suite|all>")?;
            let mut served = false;
            for response in client.submit(Request::Stacks(key(words[1], words[2])?)) {
                match response {
                    Response::Model(_) => served = true,
                    Response::Stack { benchmark, stack } => {
                        writeln!(output, "stack {benchmark} {stack}")?;
                    }
                    Response::Error(e) => return Err(e.into()),
                    _ => {}
                }
            }
            if !served {
                return Err(ServiceError::Stopped.into());
            }
        }
        "binstack" => {
            // The bulk path: the same stacks, collected and shipped as one
            // length-prefixed checksummed frame instead of N format!ed
            // lines.
            arity(2, "binstack <machine> <suite|all>")?;
            let (_, stacks) = client.stacks(key(words[1], words[2])?)?;
            let frame = encode_stack_frame(&stacks);
            writeln!(output, "frame stacks {}", frame.len())?;
            output.write_all(&frame)?;
        }
        "predict" => {
            arity(2, "predict <machine> <suite|all>")?;
            let mut served = false;
            for response in client.submit(Request::Predictions(key(words[1], words[2])?)) {
                match response {
                    Response::Model(_) => served = true,
                    Response::Prediction {
                        benchmark,
                        measured,
                        predicted,
                    } => {
                        writeln!(
                            output,
                            "predict {benchmark} measured {measured:.4} predicted {predicted:.4}"
                        )?;
                    }
                    Response::Error(e) => return Err(e.into()),
                    _ => {}
                }
            }
            if !served {
                return Err(ServiceError::Stopped.into());
            }
        }
        "delta" => {
            arity(3, "delta <old> <new> <suite>")?;
            let suite = parse_suite(words[3])?.ok_or_else(|| {
                CommandError::Protocol("delta needs a concrete suite, not `all`".into())
            })?;
            let delta = client.delta(
                parse_machine(words[1])?,
                parse_machine(words[2])?,
                suite,
                options.clone(),
            )?;
            writeln!(output, "{delta}")?;
        }
        "sweep" => {
            // Streaming like `stack`: one `variant …` line per grid point
            // as its model is served, then the Pareto front and a summary
            // tallying what the sweep actually had to simulate — `configs
            // 0 runs 0` is the warm re-sweep signature the CI smoke pins.
            let spec = parse_sweep_spec(words, options)?;
            let component = spec.component;
            let ((configs, runs), stream) = client.sweep_begin(spec)?;
            let mut summary = None;
            for response in stream {
                match response {
                    Response::SweepVariant(v) => writeln!(
                        output,
                        "variant {} cpi {:.4} {} {:.4} delta {:+.4} benchmarks {} cache {}",
                        v.id.name(),
                        v.cpi,
                        component,
                        v.component,
                        v.delta.overall.total(),
                        v.benchmarks,
                        if v.cached { "hit" } else { "miss" }
                    )?,
                    Response::SweepSummary(s) => summary = Some(*s),
                    Response::Error(e) => return Err(e.into()),
                    _ => {}
                }
            }
            let summary = summary.ok_or(ServiceError::Stopped)?;
            let front: Vec<&str> = summary.pareto.iter().map(|id| id.name()).collect();
            writeln!(output, "pareto {}", front.join(" "))?;
            writeln!(
                output,
                "sweep: variants {} simulated configs {} runs {}",
                summary.results.len(),
                configs + summary.simulated_configs,
                runs + summary.simulated_runs
            )?;
        }
        "stats" => {
            arity(0, "stats")?;
            // Tenant-scoped by construction: the client is bound to the
            // session's tenant, so one tenant's counters are invisible in
            // another's stats line.
            let stats = client.stats()?;
            let mut line = format!(
                "stats: requests {} fits {} hits {} misses {} warm {} evictions {} \
                 invalidations {} records {} workers {} tenant {}",
                stats.requests,
                stats.fits,
                stats.cache.hits,
                stats.cache.misses,
                stats.cache.warm_loads,
                stats.cache.evictions,
                stats.cache.invalidations,
                stats.ingested_records,
                stats.workers,
                client.tenant()
            );
            // The refit split rides along only once a refit has actually
            // run: the zero-state line is pinned byte-exact by golden
            // transcripts that predate streaming.
            if stats.cache.full_refits + stats.cache.incremental_refits > 0 {
                use std::fmt::Write as _;
                let _ = write!(
                    line,
                    " refits full {} incremental {}",
                    stats.cache.full_refits, stats.cache.incremental_refits
                );
            }
            // Fit-effort profile, same deal: it only appears once a
            // regression has actually spent objective evaluations, so the
            // pinned zero-state transcripts stay byte-exact. Eval counts
            // only — they are schedule-independent, so transcripts stay
            // deterministic (and router-vs-direct byte-identical); the
            // wall-clock half of the profile lives in `CacheStats::
            // fit_wall_us` for in-process callers and the bench snapshot.
            if stats.cache.fit_evals > 0 {
                use std::fmt::Write as _;
                let _ = write!(line, " fit evals {}", stats.cache.fit_evals);
            }
            writeln!(output, "{line}")?;
        }
        // The two replication verbs the cluster router speaks between
        // nodes (see [`super::cluster`]). Deliberately absent from
        // `help`: they are node-to-node plumbing, not part of the client
        // command surface, and the help text is pinned by golden
        // transcripts. Snapshots travel hex-encoded on one line so the
        // *inbound* protocol stays purely line-oriented (a snapshot is
        // ~200 bytes — 2× expansion is noise next to a fit).
        "pullsnap" => {
            arity(2, "pullsnap <machine> <suite|all>")?;
            let Some(bytes) = client.export_snapshot(&key(words[1], words[2])?)? else {
                return Err(CommandError::Protocol(format!(
                    "no snapshot for `{} {}`",
                    words[1], words[2]
                )));
            };
            writeln!(output, "snapshot {}", hex_encode(&bytes))?;
        }
        "pushsnap" => {
            arity(1, "pushsnap <hex-snapshot>")?;
            let bytes = hex_decode(words[1])
                .ok_or_else(|| CommandError::Protocol("malformed snapshot hex".into()))?;
            client.import_snapshot(&bytes)?;
            writeln!(output, "installed")?;
        }
        // The record-shipping pair: when a two-machine request (delta, a
        // partitioned sweep) spans ring owners, the router pulls the
        // missing machine's *records* from its owner and pushes them to
        // the serving node, so the single-node fitting path — and its
        // byte-exact results — apply unchanged. The arch constants ride
        // along as raw f64 bits so the re-fit is against the exact spec.
        // Hidden from `help` like `pullsnap`/`pushsnap`: node-to-node
        // plumbing, not client surface.
        "pullrecs" => {
            arity(1, "pullrecs <machine>")?;
            let machine = parse_machine(words[1])?;
            let (arch, records) = client.export_records(machine)?;
            let mut arch_bytes = Vec::with_capacity(40);
            for v in [arch.width, arch.fe_depth, arch.c_l2, arch.c_mem, arch.c_tlb] {
                arch_bytes.extend_from_slice(&v.to_le_bytes());
            }
            let csv = pmu::csv::to_csv(&records);
            writeln!(
                output,
                "records {} {} {}",
                machine.name(),
                hex_encode(&arch_bytes),
                hex_encode(csv.as_bytes())
            )?;
        }
        "pushrecs" => {
            arity(3, "pushrecs <machine> <hex-arch> <hex-csv>")?;
            let machine = parse_machine(words[1])?;
            let arch_bytes = hex_decode(words[2])
                .filter(|b| b.len() == 40)
                .ok_or_else(|| CommandError::Protocol("malformed arch hex".into()))?;
            let mut constants = [0.0f64; 5];
            for (slot, chunk) in constants.iter_mut().zip(arch_bytes.chunks(8)) {
                *slot = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if constants.iter().any(|v| !v.is_finite() || *v <= 0.0) {
                return Err(CommandError::Protocol(
                    "arch constants must be positive and finite".into(),
                ));
            }
            let [width, depth, l2, mem, tlb] = constants;
            let text = hex_decode(words[3])
                .and_then(|b| String::from_utf8(b).ok())
                .ok_or_else(|| CommandError::Protocol("malformed records hex".into()))?;
            let records =
                pmu::csv::from_csv(&text).map_err(|e| CommandError::Protocol(e.to_string()))?;
            if records.iter().any(|r| r.machine() != machine) {
                return Err(CommandError::Protocol(format!(
                    "records are not all for `{}`",
                    machine.name()
                )));
            }
            let spec = MachineSpec::real(machine, MicroarchParams::new(width, depth, l2, mem, tlb));
            let (installed, generation) = client.import_records(spec, records)?;
            writeln!(output, "installed {installed} generation {generation}")?;
        }
        other => {
            return Err(CommandError::Protocol(format!(
                "unknown command `{other}` (type `help`)"
            )))
        }
    }
    Ok(())
}

/// Lower-case hex, the `pullsnap`/`pushsnap` wire encoding.
pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// Inverse of [`hex_encode`]; `None` on odd length or a non-hex digit.
pub(crate) fn hex_decode(text: &str) -> Option<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return None;
    }
    text.as_bytes()
        .chunks(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some((hi * 16 + lo) as u8)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Binary framing
// ---------------------------------------------------------------------------

/// Magic bytes opening every binary frame.
pub const FRAME_MAGIC: [u8; 4] = *b"CPIB";

/// Frame kind byte for a stack set (the only kind in protocol v1).
pub const FRAME_KIND_STACKS: u8 = 1;

/// The ten [`CpiStack`] fields a frame carries per benchmark, in wire
/// order.
const STACK_FIELDS: usize = 10;

/// Hard ceiling on a frame's payload length, checked *before* the
/// payload buffer is allocated — a corrupted or hostile length field must
/// not turn into a multi-gigabyte allocation. Generous: a stack entry is
/// ~100 bytes, so this admits well over half a million benchmarks.
pub const MAX_FRAME_PAYLOAD: usize = 64 << 20;

/// Encodes a stack set as one frame: [`FRAME_MAGIC`], the kind byte, a
/// `u32` payload length, the payload (`u32` count, then per benchmark a
/// `u16`-length-prefixed name and ten `f64` components), and a trailing
/// FNV-1a checksum covering the kind byte, the length field *and* the
/// payload — so a flipped bit anywhere after the magic fails
/// [`read_frame`]. All integers and floats little-endian.
pub fn encode_stack_frame(stacks: &[(String, CpiStack)]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(stacks.len() * 96);
    payload.extend_from_slice(
        &u32::try_from(stacks.len())
            .expect("stack count")
            .to_le_bytes(),
    );
    for (benchmark, stack) in stacks {
        let len = u16::try_from(benchmark.len()).expect("benchmark names are short");
        payload.extend_from_slice(&len.to_le_bytes());
        payload.extend_from_slice(benchmark.as_bytes());
        for v in stack_fields(stack) {
            payload.extend_from_slice(&v.to_le_bytes());
        }
    }
    let mut frame = Vec::with_capacity(payload.len() + 17);
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.push(FRAME_KIND_STACKS);
    frame.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("payload fits u32")
            .to_le_bytes(),
    );
    frame.extend_from_slice(&payload);
    let checksum = fnv64(&frame[FRAME_MAGIC.len()..]);
    frame.extend_from_slice(&checksum.to_le_bytes());
    frame
}

fn stack_fields(s: &CpiStack) -> [f64; STACK_FIELDS] {
    [
        s.base,
        s.l1i,
        s.llc_i,
        s.itlb,
        s.branch,
        s.llc_d,
        s.dtlb,
        s.resource,
        s.branch_resolution,
        s.mlp,
    ]
}

/// Reads exactly one frame (any kind) off a byte stream, validating the
/// magic, the length bound and the checksum (which covers kind + length
/// + payload), and returns `(kind, payload)`.
///
/// # Errors
///
/// `InvalidData` on a bad magic, an over-[`MAX_FRAME_PAYLOAD`] length or
/// a checksum mismatch; any underlying read error.
pub fn read_frame(input: &mut impl Read) -> std::io::Result<(u8, Vec<u8>)> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut head = [0u8; 9];
    input.read_exact(&mut head)?;
    if head[..4] != FRAME_MAGIC {
        return Err(bad("bad frame magic".into()));
    }
    let kind = head[4];
    let len = u32::from_le_bytes(head[5..9].try_into().unwrap()) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(bad(format!(
            "frame payload length {len} exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    input.read_exact(&mut payload)?;
    let mut tail = [0u8; 8];
    input.read_exact(&mut tail)?;
    let computed = super::persist::fnv64_update(fnv64(&head[4..]), &payload);
    if u64::from_le_bytes(tail) != computed {
        return Err(bad("frame checksum mismatch".into()));
    }
    Ok((kind, payload))
}

/// Decodes a [`FRAME_KIND_STACKS`] payload back into `(benchmark, stack)`
/// pairs — the client-side inverse of [`encode_stack_frame`].
///
/// # Errors
///
/// `InvalidData` on truncation or trailing garbage.
pub fn decode_stack_frame(payload: &[u8]) -> std::io::Result<Vec<(String, CpiStack)>> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let take = |at: &mut usize, n: usize| -> std::io::Result<std::ops::Range<usize>> {
        if *at + n > payload.len() {
            return Err(bad(format!("stack frame truncated at byte {at}")));
        }
        let range = *at..*at + n;
        *at += n;
        Ok(range)
    };
    let mut at = 0;
    let count = u32::from_le_bytes(payload[take(&mut at, 4)?].try_into().unwrap()) as usize;
    // The smallest possible entry is an empty name (2 length bytes) plus
    // ten f64s; a count the payload cannot possibly hold is rejected
    // before it becomes a giant allocation.
    let max_entries = (payload.len() - 4) / (2 + 8 * STACK_FIELDS);
    if count > max_entries {
        return Err(bad(format!(
            "stack count {count} exceeds what {} payload bytes can hold",
            payload.len()
        )));
    }
    let mut stacks = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = u16::from_le_bytes(payload[take(&mut at, 2)?].try_into().unwrap()) as usize;
        let name = std::str::from_utf8(&payload[take(&mut at, name_len)?])
            .map_err(|_| bad("benchmark name is not utf-8".into()))?
            .to_owned();
        let mut f = [0.0f64; STACK_FIELDS];
        for slot in &mut f {
            *slot = f64::from_le_bytes(payload[take(&mut at, 8)?].try_into().unwrap());
        }
        stacks.push((
            name,
            CpiStack {
                base: f[0],
                l1i: f[1],
                llc_i: f[2],
                itlb: f[3],
                branch: f[4],
                llc_d: f[5],
                dtlb: f[6],
                resource: f[7],
                branch_resolution: f[8],
                mlp: f[9],
            },
        ));
    }
    if at != payload.len() {
        return Err(bad(format!("{} trailing frame bytes", payload.len() - at)));
    }
    Ok(stacks)
}

// ---------------------------------------------------------------------------
// The TCP front
// ---------------------------------------------------------------------------

/// Knobs for [`serve_tcp`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TcpServerConfig {
    /// Greeting written when a connection opens (see [`banner`]).
    pub banner: String,
    /// Close a connection after this long without a complete command
    /// (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Connections beyond this are refused with an immediate in-band
    /// `err: busy` and a close. On the default [`ServeBackend::Events`]
    /// engine the check is deterministic: a closed predecessor frees
    /// its slot before the next accept is processed.
    pub max_connections: usize,
    /// Timer granularity. On [`ServeBackend::Events`] this bounds how
    /// stale idle-deadline and stop-flag checks can be (the loop itself
    /// sleeps in the kernel, waking early for socket readiness); on
    /// [`ServeBackend::Threads`] it is the legacy stop/idle polling
    /// tick. Tests drop it to ~2 ms so shutdown and idle paths resolve
    /// quickly.
    pub poll_interval: Duration,
    /// Which connection engine runs the front (readiness event loop by
    /// default; the retained thread-per-connection loops are the
    /// measured baseline and the portable fallback).
    pub backend: ServeBackend,
}

impl Default for TcpServerConfig {
    fn default() -> Self {
        Self {
            banner: String::new(),
            idle_timeout: Some(Duration::from_secs(300)),
            max_connections: 64,
            poll_interval: DEFAULT_POLL_INTERVAL,
            backend: ServeBackend::default(),
        }
    }
}

impl TcpServerConfig {
    /// Default limits with a session greeting.
    pub fn new(banner: impl Into<String>) -> Self {
        Self {
            banner: banner.into(),
            ..Self::default()
        }
    }

    /// Sets (or disables) the per-connection idle timeout.
    pub fn with_idle_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Sets the concurrent-connection cap (minimum 1).
    pub fn with_max_connections(mut self, max: usize) -> Self {
        self.max_connections = max.max(1);
        self
    }

    /// Sets the stop/idle polling tick (clamped to at least 1 ms — a
    /// zero tick would turn every blocked read into a busy loop).
    pub fn with_poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval.max(Duration::from_millis(1));
        self
    }

    /// Selects the connection engine.
    pub fn with_backend(mut self, backend: ServeBackend) -> Self {
        self.backend = backend;
        self
    }
}

/// The default stop/idle polling tick ([`TcpServerConfig::poll_interval`]).
pub const DEFAULT_POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A running TCP front: the accept loop and every connection it spawned.
/// Obtained from [`serve_tcp`]; stop it with [`TcpServer::shutdown`] (or
/// remotely, via the protocol's `shutdown` command).
#[derive(Debug)]
pub struct TcpServer {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl TcpServer {
    /// The address the listener actually bound (resolves `:0` ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Signals every thread to stop without waiting for them.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Blocks until the server stops — either via [`TcpServer::stop`] /
    /// drop, or a client's `shutdown` command. Connections drain before
    /// this returns.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Stops the server and waits for every connection to close.
    pub fn shutdown(self) {
        self.stop();
        self.wait();
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Starts the TCP front on an already-bound listener: every accepted
/// connection gets its own [`Session`] minted from `spec` (its own
/// client clone, its own authentication state) and runs the same codec
/// as the stdio front. The service itself is *not* owned here — the
/// caller keeps it, and shuts it down after [`TcpServer::wait`] returns.
///
/// With the default [`ServeBackend::Events`] engine one readiness
/// event loop multiplexes every connection (see
/// [`poller`](super::poller)); [`ServeBackend::Threads`] runs the
/// legacy thread-per-connection polling loops. Both serve byte-identical
/// transcripts.
///
/// # Errors
///
/// Setup failures only (the listener cannot be made non-blocking or the
/// serving thread cannot spawn); per-connection errors close that
/// connection and never take the server down.
pub fn serve_tcp(
    listener: TcpListener,
    spec: SessionSpec,
    config: TcpServerConfig,
) -> std::io::Result<TcpServer> {
    let local_addr = listener.local_addr()?;
    // Non-blocking accept: the loop must keep observing the stop flag
    // even when no connection ever arrives.
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    // The poller opens here (not in the thread) so an unsupported
    // platform falls back to the threaded engine instead of a dead
    // server.
    let poller = match config.backend {
        ServeBackend::Events => Poller::new().ok(),
        ServeBackend::Threads => None,
    };
    let accept = std::thread::Builder::new()
        .name("cpi-tcp-front".into())
        .spawn(move || match poller {
            Some(poller) => event_front(poller, &listener, &spec, &config, &accept_stop),
            None => accept_loop(&listener, &spec, &config, &accept_stop),
        })?;
    Ok(TcpServer {
        local_addr,
        stop,
        accept: Some(accept),
    })
}

/// The readiness-loop front: one thread, every connection. Each line a
/// connection completes runs through the same [`execute_line`] codec as
/// the stdio front, with responses buffered and flushed on write
/// readiness.
fn event_front(
    poller: Poller,
    listener: &TcpListener,
    spec: &SessionSpec,
    config: &TcpServerConfig,
    stop: &AtomicBool,
) {
    let loop_config = LoopConfig {
        banner: config.banner.clone(),
        idle_timeout: config.idle_timeout,
        max_connections: config.max_connections,
        tick: config.poll_interval,
    };
    poller::run_event_loop(poller, listener, &loop_config, stop, || {
        let mut session = spec.session();
        move |line: &str, out: &mut Vec<u8>| {
            execute_line(&mut session, line, out).map(|outcome| match outcome {
                LineOutcome::Continue => Dispatch::Continue,
                LineOutcome::Quit => Dispatch::Close,
                LineOutcome::Shutdown => Dispatch::Shutdown,
            })
        }
    });
}

fn accept_loop(
    listener: &TcpListener,
    spec: &SessionSpec,
    config: &TcpServerConfig,
    stop: &Arc<AtomicBool>,
) {
    let live = Arc::new(AtomicUsize::new(0));
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        connections.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _)) => {
                if live.load(Ordering::SeqCst) >= config.max_connections {
                    // Same rejection bytes as the events engine. Unlike
                    // there, the freed-slot timing here depends on when a
                    // departed connection's thread noticed its own EOF.
                    let mut stream = stream;
                    let _ = stream.write_all(b"err: busy\n");
                    continue;
                }
                live.fetch_add(1, Ordering::SeqCst);
                let mut session = spec.session();
                let banner = config.banner.clone();
                let idle = config.idle_timeout;
                let poll = config.poll_interval;
                let stop = Arc::clone(stop);
                let conn_live = Arc::clone(&live);
                let spawned = std::thread::Builder::new()
                    .name("cpi-tcp-conn".into())
                    .spawn(move || {
                        let _ = connection_loop(stream, &mut session, &banner, idle, poll, &stop);
                        conn_live.fetch_sub(1, Ordering::SeqCst);
                    });
                match spawned {
                    Ok(handle) => connections.push(handle),
                    Err(_) => {
                        live.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(config.poll_interval);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            // A broken listener cannot serve anyone: stop the front so
            // `wait()` returns instead of spinning.
            Err(_) => break,
        }
    }
    // Connections poll the same stop flag; give each a bounded join.
    for handle in connections {
        let _ = handle.join();
    }
}

/// One connection's lifetime: greet, read lines (with stop/idle polling),
/// run each through the shared codec, close on `quit`/EOF/timeout — and
/// flip the server-wide stop flag on `shutdown`.
fn connection_loop(
    stream: TcpStream,
    session: &mut Session,
    banner: &str,
    idle: Option<Duration>,
    poll: Duration,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(poll))?;
    let mut reader = TimedLineReader::new(stream.try_clone()?);
    let mut output = std::io::BufWriter::new(stream);
    writeln!(output, "{banner}")?;
    output.flush()?;
    loop {
        match reader.next_line(stop, idle) {
            LineEvent::Line(line) => {
                let outcome = execute_line(session, &line, &mut output)?;
                output.flush()?;
                match outcome {
                    LineOutcome::Continue => {}
                    LineOutcome::Quit => return Ok(()),
                    LineOutcome::Shutdown => {
                        stop.store(true, Ordering::SeqCst);
                        return Ok(());
                    }
                }
            }
            LineEvent::Eof => return Ok(()),
            LineEvent::Stopped => {
                // Another session shut the server down while this one sat
                // idle; say goodbye in-band so scripted clients see why.
                writeln!(output, "err: server shutting down")?;
                return output.flush();
            }
            LineEvent::IdleTimeout => {
                writeln!(output, "err: idle timeout — closing connection")?;
                return output.flush();
            }
            LineEvent::Error(e) => return Err(e),
        }
    }
}

pub(crate) enum LineEvent {
    Line(String),
    Eof,
    Stopped,
    IdleTimeout,
    Error(std::io::Error),
}

/// Line reader over a read-timeout socket: accumulates bytes, yields one
/// line at a time, and between reads polls the server stop flag and the
/// connection's idle deadline. A read timeout never loses buffered bytes
/// (the pitfall of `BufRead::read_line` on a non-blocking stream).
pub(crate) struct TimedLineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    eof: bool,
    last_activity: Instant,
}

impl TimedLineReader {
    pub(crate) fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf: Vec::new(),
            eof: false,
            last_activity: Instant::now(),
        }
    }

    pub(crate) fn next_line(&mut self, stop: &AtomicBool, idle: Option<Duration>) -> LineEvent {
        // The idle clock measures time spent *waiting for the next
        // command* — it restarts here so a slow fit executed between
        // calls is never billed to the client as idleness.
        self.last_activity = Instant::now();
        loop {
            if let Some(pos) = self.buf.iter().position(|b| *b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return LineEvent::Line(String::from_utf8_lossy(&line).into_owned());
            }
            if self.eof {
                // A final line without a newline still counts, like
                // `BufRead::lines` on the stdio front.
                if self.buf.is_empty() {
                    return LineEvent::Eof;
                }
                let line = String::from_utf8_lossy(&self.buf).into_owned();
                self.buf.clear();
                return LineEvent::Line(line);
            }
            if stop.load(Ordering::SeqCst) {
                return LineEvent::Stopped;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if let Some(limit) = idle {
                        if self.last_activity.elapsed() >= limit {
                            return LineEvent::IdleTimeout;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return LineEvent::Error(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stacks() -> Vec<(String, CpiStack)> {
        (0..3)
            .map(|i| {
                let f = i as f64;
                (
                    format!("bench.{i}"),
                    CpiStack {
                        base: 0.25 + f,
                        l1i: 0.01 * f,
                        llc_i: 0.002,
                        itlb: 0.0,
                        branch: 0.125,
                        llc_d: 0.5,
                        dtlb: 0.03,
                        resource: 0.75,
                        branch_resolution: 11.0,
                        mlp: 1.5 + f,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn stack_frame_round_trips() {
        let stacks = sample_stacks();
        let frame = encode_stack_frame(&stacks);
        let (kind, payload) = read_frame(&mut frame.as_slice()).expect("frame parses");
        assert_eq!(kind, FRAME_KIND_STACKS);
        let back = decode_stack_frame(&payload).expect("payload parses");
        assert_eq!(back, stacks);
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let frame = encode_stack_frame(&sample_stacks());
        // Any single flipped byte — magic, kind, length field, payload or
        // checksum — must fail the read, never pass as a different frame.
        for index in 0..frame.len() {
            let mut bad = frame.clone();
            bad[index] ^= 0x40;
            assert!(
                read_frame(&mut bad.as_slice()).is_err(),
                "flip at byte {index} went undetected"
            );
        }
        // Truncation is an UnexpectedEof, not a panic.
        assert!(read_frame(&mut frame[..frame.len() - 3].as_ref()).is_err());
        // A hostile length field is rejected before any allocation.
        let mut huge = frame.clone();
        huge[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut huge.as_slice()).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
        // So is a payload whose entry *count* its bytes cannot hold — a
        // validly-checksummed 4-byte payload claiming u32::MAX stacks
        // must be an InvalidData error, not a ~450 GB allocation.
        let err = decode_stack_frame(&u32::MAX.to_le_bytes()).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn banner_names_the_config() {
        let text = banner(
            &ServiceConfig::new().with_workers(2).with_cache_capacity(4),
            true,
        );
        assert_eq!(
            text,
            "cpistack serve: 2 workers, cache 4 models, quick fits (type `help`)"
        );
    }

    fn streaming_service() -> (super::super::CpiService, CpiClient) {
        use crate::workbench::MachineSpec;
        use oosim::machine::MachineConfig;
        let service = super::super::CpiService::start(ServiceConfig::new().with_workers(2));
        let client = service.client();
        client
            .register(MachineSpec::from(MachineConfig::core2()))
            .expect("register");
        (service, client)
    }

    #[test]
    fn stream_verbs_ingest_refit_and_reconcile() {
        use crate::workbench::SimSource;
        use oosim::machine::MachineConfig;
        use pmu::live::LiveSource as _;
        let (service, client) = streaming_service();
        let records = SimSource::new()
            .suite(specgen::suites::cpu2000().into_iter().take(12).collect())
            .uops(3_000)
            .seed(7)
            .collect_config(&MachineConfig::core2());
        // Round 0 replays verbatim (anchors a full fit); round 1 is
        // jittered but stationary (served by the warm polish).
        let mut source = pmu::live::ReplaySource::new(records)
            .batch_size(12)
            .rounds(2)
            .jitter(3);
        let mut script = String::from("stream open core2 cpu2000\n");
        while let Some(batch) = source.next_batch() {
            for row in pmu::csv::to_csv_rows(&batch).lines() {
                script.push_str("stream rec ");
                script.push_str(row);
                script.push('\n');
            }
            script.push_str("stream flush\n");
        }
        script.push_str("stream close\nstats\nquit\n");
        let mut session = SessionSpec::open(client, FitOptions::quick()).session();
        let mut out = Vec::new();
        let end = run_session(&mut session, script.as_bytes(), &mut out).expect("session runs");
        assert_eq!(end, SessionEnd::Quit);
        let text = String::from_utf8(out).expect("utf8");
        assert!(!text.contains("err:"), "clean transcript, got:\n{text}");
        assert!(text.contains("streaming core2 cpu2000"), "{text}");
        assert!(text.contains("refit full"), "{text}");
        assert!(text.contains("refit incremental"), "{text}");
        assert!(text.contains("reconciled full"), "{text}");
        assert!(
            text.contains(
                "stream closed: batches 2 records 24 refits full 1 incremental 1 cached 0"
            ),
            "{text}"
        );
        // The stats suffix appears exactly once a refit has run: one
        // in-stream full, one polish, one reconciliation.
        assert!(text.contains(" refits full 2 incremental 1"), "{text}");
        service.shutdown();
    }

    #[test]
    fn stream_misuse_is_reported_in_band() {
        let (service, client) = streaming_service();
        let script = "stream\n\
                      stream rec a,b,c\n\
                      stream flush\n\
                      stream close\n\
                      stream open core2 cpu2000\n\
                      stream open core2 all\n\
                      stream flush\n\
                      stream rec not-a-row\n\
                      stream close\n\
                      stats\n\
                      quit\n";
        let mut session = SessionSpec::open(client, FitOptions::quick()).session();
        let mut out = Vec::new();
        run_session(&mut session, script.as_bytes(), &mut out).expect("session runs");
        let text = String::from_utf8(out).expect("utf8");
        let errs: Vec<&str> = text.lines().filter(|l| l.starts_with("err: ")).collect();
        assert_eq!(errs.len(), 7, "one err per misuse, got:\n{text}");
        assert!(errs[0].contains("usage: stream"), "{text}");
        assert!(errs[1].contains("no stream is open"), "{text}");
        assert!(errs[2].contains("no stream is open"), "{text}");
        assert!(errs[3].contains("no stream is open"), "{text}");
        assert!(errs[4].contains("already open"), "{text}");
        assert!(errs[5].contains("nothing to flush"), "{text}");
        // errs[6]: the malformed csv row.
        // Misuse never reached a refit, so the close summary is all
        // zeroes and the pinned stats line keeps its pre-streaming shape
        // (no ` refits …` suffix).
        assert!(
            text.contains(
                "stream closed: batches 0 records 0 refits full 0 incremental 0 cached 0"
            ),
            "{text}"
        );
        assert!(
            text.lines()
                .any(|l| l.starts_with("stats: ") && !l.contains("refits")),
            "{text}"
        );
        service.shutdown();
    }
}
