//! Design-space sweeps: grid expansion, ranking and Pareto analysis.
//!
//! The paper positions CPI stacks as the tool for "what-if" hardware
//! analysis — where do the cycles go if the ROB grows, the MSHRs deepen,
//! the prefetcher is disabled (§1, Fig. 6). This module turns that from
//! one hand-built config at a time into a *grid*: a [`SweepGrid`] over
//! ROB × MSHRs × dispatch width × prefetch depth expands against a base
//! preset into named variant machines ([`expand`]), each with a
//! deterministic interned [`MachineId`] like `core2+rob192+mshr32` whose
//! *name is the full recipe* (any process that can parse the id rebuilds
//! the config — see [`MachineConfig::preset`]).
//!
//! Expansion is deterministic and permutation-independent: every axis is
//! sorted and deduplicated before the cartesian product, the product
//! nests in fixed `rob → mshr → dw → pf` order, a variant name spells
//! only the axes that differ from the base preset (in that same fixed
//! order), and the grid point equal to the base on every axis collapses
//! to the base id itself. Two grids that cover the same points therefore
//! expand to the same variants in the same order, whatever order their
//! axes were stated in — which is what lets re-sweeps and overlapping
//! sweeps serve entirely from the model cache.
//!
//! The serving side lives on [`CpiClient::sweep`](super::CpiClient::sweep);
//! the wire verb and CLI front format the [`SweepSummary`] built here.

use crate::delta::DeltaStacks;
use crate::fit::FitOptions;
use crate::stack::CpiStack;
use oosim::machine::MachineConfig;
use pmu::{MachineId, Suite};
use std::fmt;
use std::fmt::Write as _;
use std::str::FromStr;

/// One CPI-stack component, selectable as the sweep's
/// component-of-interest (the second Pareto objective next to CPI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackComponent {
    /// Base component `1/D` — useful work.
    Base,
    /// L1 I-cache miss component.
    L1i,
    /// I-side last-level miss component.
    LlcI,
    /// I-TLB component.
    Itlb,
    /// Branch misprediction component.
    Branch,
    /// Long-latency load component.
    LlcD,
    /// D-TLB component.
    Dtlb,
    /// Resource stall component.
    Resource,
}

impl StackComponent {
    /// All components, in [`CpiStack::components`] reporting order.
    pub const ALL: [StackComponent; 8] = [
        StackComponent::Base,
        StackComponent::L1i,
        StackComponent::LlcI,
        StackComponent::Itlb,
        StackComponent::Branch,
        StackComponent::LlcD,
        StackComponent::Dtlb,
        StackComponent::Resource,
    ];

    /// The stable name, matching [`CpiStack::components`].
    pub fn name(self) -> &'static str {
        match self {
            StackComponent::Base => "base",
            StackComponent::L1i => "l1i_miss",
            StackComponent::LlcI => "llc_i_miss",
            StackComponent::Itlb => "itlb_miss",
            StackComponent::Branch => "branch_mispredict",
            StackComponent::LlcD => "llc_d_miss",
            StackComponent::Dtlb => "dtlb_miss",
            StackComponent::Resource => "resource_stall",
        }
    }

    /// Reads this component out of a stack.
    pub fn value(self, stack: &CpiStack) -> f64 {
        match self {
            StackComponent::Base => stack.base,
            StackComponent::L1i => stack.l1i,
            StackComponent::LlcI => stack.llc_i,
            StackComponent::Itlb => stack.itlb,
            StackComponent::Branch => stack.branch,
            StackComponent::LlcD => stack.llc_d,
            StackComponent::Dtlb => stack.dtlb,
            StackComponent::Resource => stack.resource,
        }
    }
}

impl fmt::Display for StackComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for StackComponent {
    type Err = SweepError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        StackComponent::ALL
            .iter()
            .copied()
            .find(|c| c.name() == s)
            .ok_or_else(|| SweepError::UnknownComponent {
                component: s.to_owned(),
            })
    }
}

/// The parameter grid of a sweep: values per axis. An empty axis is not
/// swept (the base preset's value is used); values are sorted and
/// deduplicated at expansion, so the stated order never matters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepGrid {
    /// ROB capacities to sweep (µops).
    pub rob: Vec<usize>,
    /// MSHR counts to sweep.
    pub mshrs: Vec<usize>,
    /// Dispatch widths to sweep.
    pub dispatch: Vec<u32>,
    /// Prefetch depths to sweep (0 disables prefetching).
    pub prefetch: Vec<u64>,
}

impl SweepGrid {
    /// An empty grid (expands to the base machine alone).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds ROB capacities.
    pub fn rob(mut self, values: impl IntoIterator<Item = usize>) -> Self {
        self.rob.extend(values);
        self
    }

    /// Adds MSHR counts.
    pub fn mshrs(mut self, values: impl IntoIterator<Item = usize>) -> Self {
        self.mshrs.extend(values);
        self
    }

    /// Adds dispatch widths.
    pub fn dispatch(mut self, values: impl IntoIterator<Item = u32>) -> Self {
        self.dispatch.extend(values);
        self
    }

    /// Adds prefetch depths.
    pub fn prefetch(mut self, values: impl IntoIterator<Item = u64>) -> Self {
        self.prefetch.extend(values);
        self
    }

    /// Parses one `axis=v1,v2,...` argument (the wire and CLI grid
    /// syntax; axes `rob`, `mshr`, `dw`, `pf`) into this grid.
    ///
    /// # Errors
    ///
    /// [`SweepError::Grid`] on an unknown axis or a malformed value.
    pub fn parse_arg(&mut self, arg: &str) -> Result<(), SweepError> {
        let bad = |detail: String| SweepError::Grid { detail };
        let (axis, values) = arg
            .split_once('=')
            .ok_or_else(|| bad(format!("expected axis=v1,v2,..., got `{arg}`")))?;
        for value in values.split(',') {
            let parse = || {
                value
                    .parse::<u64>()
                    .map_err(|_| bad(format!("bad {axis} value `{value}`")))
            };
            match axis {
                "rob" => self.rob.push(parse()? as usize),
                "mshr" => self.mshrs.push(parse()? as usize),
                "dw" => {
                    let v = parse()?;
                    self.dispatch.push(
                        u32::try_from(v).map_err(|_| bad(format!("bad dw value `{value}`")))?,
                    );
                }
                "pf" => self.prefetch.push(parse()?),
                other => return Err(bad(format!("unknown sweep axis `{other}`"))),
            }
        }
        Ok(())
    }

    /// The number of grid points after normalization (an empty axis
    /// counts one: the base value).
    pub fn points(&self) -> usize {
        let len = |v: usize| v.max(1);
        len(dedup_len(&self.rob))
            * len(dedup_len(&self.mshrs))
            * len(dedup_len(&self.dispatch))
            * len(dedup_len(&self.prefetch))
    }
}

fn dedup_len<T: Ord + Copy>(values: &[T]) -> usize {
    let mut v = values.to_vec();
    v.sort_unstable();
    v.dedup();
    v.len()
}

/// Why a sweep could not be set up or served.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SweepError {
    /// The base of a sweep must be one of the three presets, not itself a
    /// variant (variant names would no longer be a full recipe).
    VariantBase {
        /// The offending base.
        base: MachineId,
    },
    /// A grid point expands to an invalid machine configuration.
    InvalidPoint {
        /// The variant name of the offending point.
        variant: String,
        /// What [`MachineConfig::validate`] rejected.
        reason: String,
    },
    /// A grid argument did not parse.
    Grid {
        /// What went wrong.
        detail: String,
    },
    /// No such [`StackComponent`].
    UnknownComponent {
        /// The unknown name.
        component: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::VariantBase { base } => {
                write!(
                    f,
                    "sweep base must be a preset, got variant `{}`",
                    base.name()
                )
            }
            SweepError::InvalidPoint { variant, reason } => {
                write!(f, "grid point `{variant}` is not a valid machine: {reason}")
            }
            SweepError::Grid { detail } => write!(f, "bad sweep grid: {detail}"),
            SweepError::UnknownComponent { component } => {
                write!(f, "unknown stack component `{component}`")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// One expanded grid point: the interned id and the decoded configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepVariant {
    /// The variant's identity (the base id itself for the base point).
    pub id: MachineId,
    /// The full simulator configuration behind the id.
    pub config: MachineConfig,
}

/// Expands a grid against a base preset into named variants.
///
/// Deterministic and permutation-independent (see the [module
/// docs](self)); the variant list never contains duplicates, and contains
/// the base machine itself exactly when the grid covers the base point.
///
/// # Errors
///
/// [`SweepError::VariantBase`] when `base` is itself a variant;
/// [`SweepError::InvalidPoint`] when a grid point fails
/// [`MachineConfig::validate`].
pub fn expand(base: MachineId, grid: &SweepGrid) -> Result<Vec<SweepVariant>, SweepError> {
    if base.is_variant() {
        return Err(SweepError::VariantBase { base });
    }
    let preset = MachineConfig::preset(base);
    let axis = |values: &[u64], fallback: u64| -> Vec<u64> {
        if values.is_empty() {
            return vec![fallback];
        }
        let mut v = values.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    };
    let robs = axis(
        &grid.rob.iter().map(|&v| v as u64).collect::<Vec<_>>(),
        preset.rob_size as u64,
    );
    let mshrs = axis(
        &grid.mshrs.iter().map(|&v| v as u64).collect::<Vec<_>>(),
        preset.mshrs as u64,
    );
    let dws = axis(
        &grid
            .dispatch
            .iter()
            .map(|&v| u64::from(v))
            .collect::<Vec<_>>(),
        u64::from(preset.dispatch_width),
    );
    let pfs = axis(&grid.prefetch, preset.prefetch_depth);
    let mut variants = Vec::with_capacity(robs.len() * mshrs.len() * dws.len() * pfs.len());
    for &rob in &robs {
        for &mshr in &mshrs {
            for &dw in &dws {
                for &pf in &pfs {
                    let mut name = String::from(base.name());
                    for (token, value, stock) in [
                        ("rob", rob, preset.rob_size as u64),
                        ("mshr", mshr, preset.mshrs as u64),
                        ("dw", dw, u64::from(preset.dispatch_width)),
                        ("pf", pf, preset.prefetch_depth),
                    ] {
                        if value != stock {
                            write!(name, "+{token}{value}").expect("writing to a String");
                        }
                    }
                    let id = if name == base.name() {
                        base
                    } else {
                        MachineId::variant(&name).map_err(|e| SweepError::InvalidPoint {
                            variant: name.clone(),
                            reason: e.to_string(),
                        })?
                    };
                    let config = MachineConfig::preset(id);
                    config
                        .validate()
                        .map_err(|reason| SweepError::InvalidPoint {
                            variant: name.clone(),
                            reason,
                        })?;
                    variants.push(SweepVariant { id, config });
                }
            }
        }
    }
    Ok(variants)
}

/// Expands `spec`'s grid and applies its `only` restriction, keeping
/// grid-expansion order. This is *the* variant list every serving layer
/// agrees on — the client's warm fan-out, the worker's combining task and
/// the cluster router's partitions all call it with the same spec.
///
/// # Errors
///
/// Everything [`expand`] raises, plus [`SweepError::Grid`] when `only`
/// names a variant the grid does not expand to.
pub fn expand_selected(spec: &SweepSpec) -> Result<Vec<SweepVariant>, SweepError> {
    let mut variants = expand(spec.base, &spec.grid)?;
    if let Some(only) = &spec.only {
        if let Some(unknown) = only.iter().find(|id| variants.iter().all(|v| v.id != **id)) {
            return Err(SweepError::Grid {
                detail: format!(
                    "only= names `{}`, which the grid does not expand to",
                    unknown.name()
                ),
            });
        }
        variants.retain(|v| only.contains(&v.id));
    }
    Ok(variants)
}

/// The indices of the Pareto-optimal points when *minimizing* both
/// objectives, in input order. A point is on the front when no other
/// point is at least as good on both objectives and strictly better on
/// one.
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            let (ci, vi) = points[i];
            !points
                .iter()
                .enumerate()
                .any(|(j, &(cj, vj))| j != i && cj <= ci && vj <= vi && (cj < ci || vj < vi))
        })
        .collect()
}

/// What to sweep: the base, the grid, the workload, and how to simulate
/// and fit. Built with struct-update from [`SweepSpec::new`].
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// The base preset the grid expands against.
    pub base: MachineId,
    /// The parameter grid.
    pub grid: SweepGrid,
    /// The suite every variant simulates and fits on.
    pub suite: Suite,
    /// Fit options (one model per variant; the key's options half).
    pub options: FitOptions,
    /// µop budget per benchmark run when a variant must be simulated.
    pub uops: u64,
    /// Campaign seed for simulated runs.
    pub seed: u64,
    /// Restrict the sweep to the first `n` benchmarks of the suite
    /// (`None` = the whole suite). Only consulted when the sweep has to
    /// simulate; once the base machine has records, every variant
    /// simulates exactly the base's benchmark set so deltas pair up.
    pub limit: Option<usize>,
    /// Restrict the sweep to this subset of the expanded variants
    /// (`None` = the whole grid). The cluster router partitions a grid by
    /// ring owner and forwards each owner its own slice this way; order
    /// and deltas are unchanged — every selected variant still compares
    /// against the base.
    pub only: Option<Vec<MachineId>>,
    /// The component-of-interest: the second Pareto objective next to
    /// CPI.
    pub component: StackComponent,
}

impl SweepSpec {
    /// A spec with campaign defaults: full fit options, the simulator's
    /// default µop budget, seed 42, and the long-latency load component
    /// (the paper's design-sweep focus) as the component of interest.
    pub fn new(base: MachineId, grid: SweepGrid, suite: Suite) -> Self {
        Self {
            base,
            grid,
            suite,
            options: FitOptions::default(),
            uops: oosim::run::DEFAULT_UOPS,
            seed: 42,
            limit: None,
            only: None,
            component: StackComponent::LlcD,
        }
    }
}

/// One variant's served result, in grid-expansion order inside
/// [`SweepSummary::results`].
#[derive(Debug, Clone)]
pub struct SweepVariantResult {
    /// The variant served.
    pub id: MachineId,
    /// Mean predicted CPI over the suite (mean of per-benchmark stack
    /// totals).
    pub cpi: f64,
    /// Mean component-of-interest cycles per µop over the suite.
    pub component: f64,
    /// CPI-delta stacks explaining this variant vs the sweep base.
    pub delta: DeltaStacks,
    /// `true` when the variant's model was served without a regression
    /// (cache hit or warm snapshot load).
    pub cached: bool,
    /// Benchmarks behind the model.
    pub benchmarks: usize,
}

/// The ranked outcome of one sweep.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// The base machine every delta is relative to.
    pub base: MachineId,
    /// The suite swept.
    pub suite: Suite,
    /// The component-of-interest used for the Pareto front.
    pub component: StackComponent,
    /// Per-variant results in grid-expansion order.
    pub results: Vec<SweepVariantResult>,
    /// The Pareto front over (CPI, component), as variant ids in
    /// grid-expansion order.
    pub pareto: Vec<MachineId>,
    /// Distinct configs this sweep had to simulate (0 on a warm
    /// re-sweep).
    pub simulated_configs: usize,
    /// Individual benchmark traces simulated (`simulated_configs ×
    /// suite size` — each workload's trace runs once per distinct
    /// config, never once per variant-request).
    pub simulated_runs: usize,
}

impl SweepSummary {
    /// Results ranked best-first: by mean CPI, ties by name (total and
    /// deterministic).
    pub fn ranked(&self) -> Vec<&SweepVariantResult> {
        let mut ranked: Vec<&SweepVariantResult> = self.results.iter().collect();
        ranked.sort_by(|a, b| {
            a.cpi
                .total_cmp(&b.cpi)
                .then_with(|| a.id.name().cmp(b.id.name()))
        });
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_sorted_deduped_and_named() {
        let grid = SweepGrid::new().rob([192, 96, 192]).mshrs([32]);
        let variants = expand(MachineId::Core2, &grid).unwrap();
        // rob 96 is the Core 2 stock value: that point spells only mshr.
        let names: Vec<&str> = variants.iter().map(|v| v.id.name()).collect();
        assert_eq!(names, ["core2+mshr32", "core2+rob192+mshr32"]);
        assert_eq!(variants[1].config.rob_size, 192);
        assert_eq!(variants[1].config.mshrs, 32);
        assert_eq!(variants[0].config.rob_size, 96);
    }

    #[test]
    fn base_point_collapses_to_base_id() {
        let grid = SweepGrid::new().rob([96, 192]);
        let variants = expand(MachineId::Core2, &grid).unwrap();
        assert_eq!(variants[0].id, MachineId::Core2);
        assert_eq!(variants[1].id.name(), "core2+rob192");
    }

    #[test]
    fn empty_grid_expands_to_base_alone() {
        let variants = expand(MachineId::CoreI7, &SweepGrid::new()).unwrap();
        assert_eq!(variants.len(), 1);
        assert_eq!(variants[0].id, MachineId::CoreI7);
    }

    #[test]
    fn invalid_points_are_typed() {
        let grid = SweepGrid::new().dispatch([0]);
        let err = expand(MachineId::Core2, &grid).unwrap_err();
        assert!(matches!(err, SweepError::InvalidPoint { .. }), "{err}");
        let err = expand(
            MachineId::variant("core2+rob192").unwrap(),
            &SweepGrid::new(),
        )
        .unwrap_err();
        assert!(matches!(err, SweepError::VariantBase { .. }));
    }

    #[test]
    fn grid_args_parse() {
        let mut grid = SweepGrid::new();
        grid.parse_arg("rob=96,192").unwrap();
        grid.parse_arg("pf=0").unwrap();
        assert_eq!(grid.rob, [96, 192]);
        assert_eq!(grid.prefetch, [0]);
        assert_eq!(grid.points(), 2);
        assert!(grid.parse_arg("l2=big").is_err());
        assert!(grid.parse_arg("rob=ten").is_err());
        assert!(grid.parse_arg("rob96").is_err());
    }

    #[test]
    fn pareto_front_minimizes_both() {
        // (cpi, component): b dominates c; a and b trade off; d ties a.
        let points = [(1.0, 3.0), (2.0, 1.0), (3.0, 2.0), (1.0, 3.0)];
        assert_eq!(pareto_front(&points), vec![0, 1, 3]);
    }

    #[test]
    fn component_names_round_trip() {
        for c in StackComponent::ALL {
            assert_eq!(c.name().parse::<StackComponent>().unwrap(), c);
        }
        assert!("memory".parse::<StackComponent>().is_err());
    }
}
