//! Readiness-driven socket serving: a `mio`-style [`Poller`] over
//! nonblocking sockets, plus the shared event-loop harness both TCP
//! fronts (the node front in [`proto`](super::proto) and the cluster
//! router in [`cluster`](super::cluster)) run their connections on.
//!
//! The previous fronts were thread-per-connection polling loops: every
//! blocked read woke on a `--poll-interval` tick to check the stop flag
//! and the idle deadline, so a thousand idle connections cost a thousand
//! timer wheels and a thousand stacks. Here one thread owns every
//! connection: sockets are nonblocking, readiness comes from the kernel
//! (`epoll` on Linux via raw syscalls — the same no-libc idiom as
//! `pmu::live` — `poll(2)` on other Unixes), partial lines and frame
//! bytes are buffered per connection, and `--poll-interval` survives
//! only as the *timer granularity*: the loop sleeps in the kernel until
//! a socket turns ready or the tick elapses, never spinning.
//!
//! Wire behavior is byte-identical to the threaded fronts (golden
//! transcripts replay unchanged); the one deliberate difference is the
//! connection cap, which is now enforced deterministically at accept
//! time — the over-cap client reads `err: busy` and an immediate close,
//! with no dependence on when a departed predecessor's thread noticed
//! its own EOF.
//!
//! On platforms without a readiness facility ([`Poller::new`] fails)
//! the fronts fall back to the retained thread-per-connection loops, so
//! the crate still builds and serves everywhere it used to.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

/// Which connection engine a TCP front runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeBackend {
    /// One readiness event loop multiplexing every connection
    /// (the default). Falls back to [`ServeBackend::Threads`] at
    /// startup if the platform has no poller.
    #[default]
    Events,
    /// The legacy thread-per-connection polling loops. Retained as the
    /// measured baseline for `cpistack loadgen` / `BENCH_9.json`
    /// comparisons and as the portable fallback.
    Threads,
}

// ---------------------------------------------------------------------------
// The Poller
// ---------------------------------------------------------------------------

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the file descriptor was registered under.
    pub token: u64,
    /// The descriptor has bytes to read — or an error/hangup condition
    /// that a read will surface (EOF, `ECONNRESET`), which is why
    /// error-ish readiness is folded into `readable`.
    pub readable: bool,
    /// The descriptor can accept more bytes.
    pub writable: bool,
}

/// Readiness interest for one registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when readable.
    pub read: bool,
    /// Wake when writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
}

/// A level-triggered readiness selector over raw file descriptors:
/// `epoll` on Linux (x86-64 / aarch64, via raw syscalls — no libc
/// types), `poll(2)` on other Unixes. Register sockets under a caller
/// token, then [`Poller::wait`] blocks in the kernel until one turns
/// ready or the timeout lapses.
#[derive(Debug)]
pub struct Poller {
    backend: PollerBackend,
}

impl Poller {
    /// Opens the platform selector.
    ///
    /// # Errors
    ///
    /// The platform has no readiness facility (non-Unix, or an exotic
    /// Linux architecture without the syscall shim) or the kernel
    /// refused the `epoll` instance. Callers fall back to the threaded
    /// serving path.
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            backend: PollerBackend::new()?,
        })
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// The kernel rejected the registration (bad descriptor, duplicate).
    pub fn add(&mut self, fd: RawFdT, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.add(fd, token, interest)
    }

    /// Changes the interest set of an already-registered descriptor.
    ///
    /// # Errors
    ///
    /// The descriptor is not registered.
    pub fn modify(&mut self, fd: RawFdT, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.modify(fd, token, interest)
    }

    /// Deregisters a descriptor. Must be called *before* the socket is
    /// closed.
    ///
    /// # Errors
    ///
    /// The descriptor is not registered.
    pub fn remove(&mut self, fd: RawFdT) -> io::Result<()> {
        self.backend.remove(fd)
    }

    /// Blocks until at least one registered descriptor is ready or
    /// `timeout` elapses, appending events to `events` (cleared first).
    ///
    /// # Errors
    ///
    /// The kernel wait itself failed (`EINTR` is retried internally).
    pub fn wait(&mut self, events: &mut Vec<PollEvent>, timeout: Duration) -> io::Result<()> {
        events.clear();
        self.backend.wait(events, timeout)
    }
}

/// The raw-descriptor type registrations use (`i32` everywhere Unix).
pub type RawFdT = i32;

fn timeout_ms(timeout: Duration) -> i32 {
    // A sub-millisecond tick still sleeps (1 ms) rather than spinning.
    timeout.as_millis().clamp(1, i32::MAX as u128) as i32
}

// --- Linux: epoll via raw syscalls (no libc dependency) --------------------

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use super::{timeout_ms, Interest, PollEvent, RawFdT};
    use std::io;
    use std::time::Duration;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const EPOLL_CREATE1: u64 = 291;
        pub const EPOLL_CTL: u64 = 233;
        pub const EPOLL_PWAIT: u64 = 281;
        pub const CLOSE: u64 = 3;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: u64 = 20;
        pub const EPOLL_CTL: u64 = 21;
        pub const EPOLL_PWAIT: u64 = 22;
        pub const CLOSE: u64 = 57;
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(n: u64, a: u64, b: u64, c: u64, d: u64, e: u64, f: u64) -> i64 {
        let ret: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n as i64 => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(n: u64, a: u64, b: u64, c: u64, d: u64, e: u64, f: u64) -> i64 {
        let ret: i64;
        std::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack)
        );
        ret
    }

    fn check(ret: i64) -> io::Result<i64> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    const EPOLL_CTL_ADD: u64 = 1;
    const EPOLL_CTL_DEL: u64 = 2;
    const EPOLL_CTL_MOD: u64 = 3;

    const EPOLL_CLOEXEC: u64 = 0o2000000;

    /// The kernel's `struct epoll_event`: packed on x86-64 only, per
    /// the ABI.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = 0;
        if interest.read {
            bits |= EPOLLIN;
        }
        if interest.write {
            bits |= EPOLLOUT;
        }
        bits
    }

    #[derive(Debug)]
    pub(super) struct PollerBackend {
        epfd: i32,
    }

    impl PollerBackend {
        pub(super) fn new() -> io::Result<Self> {
            let epfd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
            Ok(Self { epfd: epfd as i32 })
        }

        fn ctl(&mut self, op: u64, fd: RawFdT, event: Option<EpollEvent>) -> io::Result<()> {
            let ptr = event
                .as_ref()
                .map_or(0u64, |e| e as *const EpollEvent as u64);
            check(unsafe { syscall6(nr::EPOLL_CTL, self.epfd as u64, op, fd as u64, ptr, 0, 0) })?;
            Ok(())
        }

        pub(super) fn add(&mut self, fd: RawFdT, token: u64, interest: Interest) -> io::Result<()> {
            let event = EpollEvent {
                events: interest_bits(interest),
                data: token,
            };
            self.ctl(EPOLL_CTL_ADD, fd, Some(event))
        }

        pub(super) fn modify(
            &mut self,
            fd: RawFdT,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let event = EpollEvent {
                events: interest_bits(interest),
                data: token,
            };
            self.ctl(EPOLL_CTL_MOD, fd, Some(event))
        }

        pub(super) fn remove(&mut self, fd: RawFdT) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub(super) fn wait(
            &mut self,
            events: &mut Vec<PollEvent>,
            timeout: Duration,
        ) -> io::Result<()> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 128];
            let n = loop {
                let ret = unsafe {
                    syscall6(
                        nr::EPOLL_PWAIT,
                        self.epfd as u64,
                        buf.as_mut_ptr() as u64,
                        buf.len() as u64,
                        timeout_ms(timeout) as u64,
                        0, // sigmask: NULL — don't mask anything
                        0, // sigsetsize: unread when sigmask is NULL
                    )
                };
                match check(ret) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            };
            for ev in buf.iter().take(n) {
                // Copy out of the (possibly packed) struct before use.
                let (bits, token) = (ev.events, ev.data);
                events.push(PollEvent {
                    token,
                    // Error/hangup conditions surface through a read
                    // (0 bytes / ECONNRESET), so fold them in.
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for PollerBackend {
        fn drop(&mut self) {
            unsafe {
                syscall6(nr::CLOSE, self.epfd as u64, 0, 0, 0, 0, 0);
            }
        }
    }
}

// --- Other Unixes: poll(2) through the libc std already links -------------

#[cfg(all(
    unix,
    not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
))]
mod sys {
    use super::{timeout_ms, Interest, PollEvent, RawFdT};
    use std::io;
    use std::time::Duration;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    #[cfg(target_os = "linux")]
    type Nfds = u64;
    #[cfg(not(target_os = "linux"))]
    type Nfds = u32;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: i32) -> i32;
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[derive(Debug)]
    pub(super) struct PollerBackend {
        // (fd, token, interest) in registration order.
        slots: Vec<(RawFdT, u64, Interest)>,
    }

    impl PollerBackend {
        pub(super) fn new() -> io::Result<Self> {
            Ok(Self { slots: Vec::new() })
        }

        pub(super) fn add(&mut self, fd: RawFdT, token: u64, interest: Interest) -> io::Result<()> {
            if self.slots.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.slots.push((fd, token, interest));
            Ok(())
        }

        pub(super) fn modify(
            &mut self,
            fd: RawFdT,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let slot = self
                .slots
                .iter_mut()
                .find(|(f, _, _)| *f == fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            *slot = (fd, token, interest);
            Ok(())
        }

        pub(super) fn remove(&mut self, fd: RawFdT) -> io::Result<()> {
            let at = self
                .slots
                .iter()
                .position(|(f, _, _)| *f == fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.slots.swap_remove(at);
            Ok(())
        }

        pub(super) fn wait(
            &mut self,
            events: &mut Vec<PollEvent>,
            timeout: Duration,
        ) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .slots
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: if interest.read { POLLIN } else { 0 }
                        | if interest.write { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = loop {
                let ret = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms(timeout)) };
                if ret >= 0 {
                    break ret;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n > 0 {
                for (pfd, (_, token, _)) in fds.iter().zip(&self.slots) {
                    let bits = pfd.revents;
                    if bits != 0 {
                        events.push(PollEvent {
                            token: *token,
                            readable: bits & (POLLIN | POLLERR | POLLHUP) != 0,
                            writable: bits & (POLLOUT | POLLERR | POLLHUP) != 0,
                        });
                    }
                }
            }
            Ok(())
        }
    }
}

// --- Anywhere else: no poller; fronts fall back to threads ----------------

#[cfg(not(unix))]
mod sys {
    use super::{Interest, PollEvent, RawFdT};
    use std::io;
    use std::time::Duration;

    #[derive(Debug)]
    pub(super) struct PollerBackend;

    impl PollerBackend {
        pub(super) fn new() -> io::Result<Self> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no readiness facility on this platform",
            ))
        }

        pub(super) fn add(&mut self, _: RawFdT, _: u64, _: Interest) -> io::Result<()> {
            unreachable!("PollerBackend::new never succeeds here")
        }

        pub(super) fn modify(&mut self, _: RawFdT, _: u64, _: Interest) -> io::Result<()> {
            unreachable!("PollerBackend::new never succeeds here")
        }

        pub(super) fn remove(&mut self, _: RawFdT) -> io::Result<()> {
            unreachable!("PollerBackend::new never succeeds here")
        }

        pub(super) fn wait(&mut self, _: &mut Vec<PollEvent>, _: Duration) -> io::Result<()> {
            unreachable!("PollerBackend::new never succeeds here")
        }
    }
}

use sys::PollerBackend;

/// The raw descriptor of a socket, as [`Poller::add`] wants it. Only
/// reachable where a poller exists (on non-Unix [`Poller::new`] fails
/// before any registration is attempted).
#[cfg(unix)]
pub fn raw_fd(sock: &impl std::os::unix::io::AsRawFd) -> RawFdT {
    sock.as_raw_fd()
}

/// See the Unix variant; never reached without a poller.
#[cfg(not(unix))]
pub fn raw_fd<T>(_sock: &T) -> RawFdT {
    unreachable!("the event loop never runs without a poller")
}

// ---------------------------------------------------------------------------
// The shared event-loop harness
// ---------------------------------------------------------------------------

/// What a dispatched line asks the loop to do with its connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Dispatch {
    /// Keep the session going.
    Continue,
    /// Flush buffered output, then close this connection (`quit`, EOF).
    Close,
    /// Flip the server-wide stop flag, then close this connection
    /// (`shutdown`).
    Shutdown,
}

/// Protocol-facing knobs the loop enforces; both fronts map their config
/// structs onto this.
#[derive(Debug, Clone)]
pub(crate) struct LoopConfig {
    /// Greeting written when a connection opens.
    pub banner: String,
    /// Close a connection after this long without a complete command.
    pub idle_timeout: Option<Duration>,
    /// Connections beyond this read `err: busy` and an immediate close.
    pub max_connections: usize,
    /// Timer granularity: the kernel wait's upper bound, which bounds
    /// how stale idle-deadline and stop-flag checks can be.
    pub tick: Duration,
}

/// In-band farewell when another session shuts the server down.
const STOPPING: &[u8] = b"err: server shutting down\n";
/// In-band farewell when the idle deadline fires.
const IDLE: &[u8] = "err: idle timeout — closing connection\n".as_bytes();
/// Deterministic over-cap rejection.
const BUSY: &[u8] = b"err: busy\n";

/// How long after stop the loop keeps draining unflushed farewells
/// before abandoning slow clients.
const DRAIN_GRACE: Duration = Duration::from_secs(1);

/// Reads drained per connection per readiness event before yielding to
/// fellow connections (level-triggered readiness re-fires if bytes
/// remain, so fairness costs nothing).
const READ_BURST: usize = 16;

struct Conn<H> {
    stream: TcpStream,
    handler: H,
    in_buf: Vec<u8>,
    out: Vec<u8>,
    /// Bytes of `out` already written.
    sent: usize,
    /// Read side finished (EOF seen).
    eof: bool,
    /// Stop reading; close once `out` drains.
    closing: bool,
    /// Last moment this connection either delivered bytes or finished a
    /// command — the idle clock, mirroring `TimedLineReader` (dispatch
    /// time is never billed as idleness).
    last_activity: Instant,
    /// The interest set currently registered with the poller.
    registered: Interest,
}

impl<H> Conn<H> {
    fn pending(&self) -> usize {
        self.out.len() - self.sent
    }

    fn wanted(&self) -> Interest {
        Interest {
            read: !self.closing && !self.eof,
            write: self.pending() > 0,
        }
    }
}

/// Runs one front's whole TCP life on the calling thread: accepts,
/// reads, dispatches complete lines through a per-connection handler
/// minted by `new_handler`, writes buffered responses, and enforces the
/// idle deadline, the connection cap, and the stop flag. Returns when
/// `stop` is set (in-band `shutdown` sets it from a dispatch) and every
/// farewell has drained, or when the listener itself dies.
pub(crate) fn run_event_loop<H, F>(
    mut poller: Poller,
    listener: &TcpListener,
    config: &LoopConfig,
    stop: &AtomicBool,
    mut new_handler: F,
) where
    H: FnMut(&str, &mut Vec<u8>) -> io::Result<Dispatch>,
    F: FnMut() -> H,
{
    const LISTENER: u64 = u64::MAX;
    let mut conns: HashMap<u64, Conn<H>> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut events: Vec<PollEvent> = Vec::new();
    let mut listening = poller
        .add(raw_fd(listener), LISTENER, Interest::READ)
        .is_ok();
    if !listening {
        return;
    }
    let mut announced = false;
    let mut drain_deadline: Option<Instant> = None;
    loop {
        let stopping = stop.load(Ordering::SeqCst);
        if stopping && !announced {
            // Mirror the threaded front: buffered complete lines still
            // run, then every surviving session hears why it's closing.
            announced = true;
            drain_deadline = Some(Instant::now() + DRAIN_GRACE);
            if listening {
                let _ = poller.remove(raw_fd(listener));
                listening = false;
            }
            let mut dead = Vec::new();
            for (&token, conn) in conns.iter_mut() {
                drain_lines(conn, stop);
                if !conn.closing {
                    conn.out.extend_from_slice(STOPPING);
                    conn.closing = true;
                }
                if !flush_and_update(&mut poller, token, conn) {
                    dead.push(token);
                }
            }
            for token in dead {
                close_conn(&mut poller, &mut conns, token);
            }
        }
        if stopping {
            let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if conns.is_empty() || expired {
                break;
            }
        }
        if poller.wait(&mut events, config.tick).is_err() {
            break;
        }
        let fired: Vec<PollEvent> = std::mem::take(&mut events);
        for ev in fired {
            if ev.token == LISTENER {
                if !stopping {
                    accept_burst(
                        &mut poller,
                        listener,
                        config,
                        &mut conns,
                        &mut next_token,
                        &mut new_handler,
                    );
                }
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else {
                continue;
            };
            let mut alive = true;
            if ev.readable && !conn.closing && !conn.eof {
                alive = read_burst(conn);
                if alive {
                    drain_lines(conn, stop);
                }
            }
            if alive {
                alive = flush_and_update(&mut poller, ev.token, conn);
            }
            if !alive {
                close_conn(&mut poller, &mut conns, ev.token);
            } else if stop.load(Ordering::SeqCst) && !stopping {
                // A dispatch just asked for shutdown: restart the loop
                // so the announce pass runs before further I/O.
                break;
            }
        }
        // Timer pass: idle deadlines, at tick granularity.
        if let Some(limit) = config.idle_timeout {
            let now = Instant::now();
            let mut dead = Vec::new();
            for (&token, conn) in conns.iter_mut() {
                if !conn.closing && now.duration_since(conn.last_activity) >= limit {
                    conn.out.extend_from_slice(IDLE);
                    conn.closing = true;
                    if !flush_and_update(&mut poller, token, conn) {
                        dead.push(token);
                    }
                }
            }
            for token in dead {
                close_conn(&mut poller, &mut conns, token);
            }
        }
    }
}

/// Accepts until the listener would block. Over-cap connections read
/// `err: busy` and are dropped on the spot — the cap check and the
/// close both happen on this thread, so rejection is deterministic.
fn accept_burst<H, F>(
    poller: &mut Poller,
    listener: &TcpListener,
    config: &LoopConfig,
    conns: &mut HashMap<u64, Conn<H>>,
    next_token: &mut u64,
    new_handler: &mut F,
) where
    H: FnMut(&str, &mut Vec<u8>) -> io::Result<Dispatch>,
    F: FnMut() -> H,
{
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if conns.len() >= config.max_connections {
                    let _ = stream.write_all(BUSY);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                let token = *next_token;
                *next_token += 1;
                let mut out = Vec::with_capacity(config.banner.len() + 1);
                out.extend_from_slice(config.banner.as_bytes());
                out.push(b'\n');
                let mut conn = Conn {
                    stream,
                    handler: new_handler(),
                    in_buf: Vec::new(),
                    out,
                    sent: 0,
                    eof: false,
                    closing: false,
                    last_activity: Instant::now(),
                    registered: Interest {
                        read: false,
                        write: false,
                    },
                };
                if try_write(&mut conn) {
                    let interest = conn.wanted();
                    if poller.add(raw_fd(&conn.stream), token, interest).is_ok() {
                        conn.registered = interest;
                        conns.insert(token, conn);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // A broken listener cannot serve anyone; the wait loop keeps
            // existing sessions alive until they finish.
            Err(_) => return,
        }
    }
}

/// Reads up to [`READ_BURST`] chunks. Returns `false` when the
/// connection died (hard error).
fn read_burst<H>(conn: &mut Conn<H>) -> bool {
    let mut chunk = [0u8; 4096];
    for _ in 0..READ_BURST {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                return true;
            }
            Ok(n) => {
                conn.in_buf.extend_from_slice(&chunk[..n]);
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// Dispatches every complete buffered line (and, at EOF, the trailing
/// unterminated line — matching `BufRead::lines` on the stdio front).
/// Pipelined input after `quit`/`shutdown` is discarded, as in the
/// threaded front.
fn drain_lines<H>(conn: &mut Conn<H>, stop: &AtomicBool)
where
    H: FnMut(&str, &mut Vec<u8>) -> io::Result<Dispatch>,
{
    while !conn.closing {
        let line = match conn.in_buf.iter().position(|b| *b == b'\n') {
            Some(pos) => {
                let mut line: Vec<u8> = conn.in_buf.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                line
            }
            None if conn.eof && !conn.in_buf.is_empty() => std::mem::take(&mut conn.in_buf),
            None => break,
        };
        let text = String::from_utf8_lossy(&line).into_owned();
        match (conn.handler)(&text, &mut conn.out) {
            Ok(Dispatch::Continue) => {}
            Ok(Dispatch::Close) => conn.closing = true,
            Ok(Dispatch::Shutdown) => {
                stop.store(true, Ordering::SeqCst);
                conn.closing = true;
            }
            // The handler only fails on client-socket errors in the
            // threaded fronts; here output is buffered, so an Err is a
            // codec-internal failure — close the session.
            Err(_) => conn.closing = true,
        }
        // Command execution is never billed as idleness.
        conn.last_activity = Instant::now();
    }
    if conn.eof && conn.in_buf.is_empty() {
        conn.closing = true;
    }
}

/// Greedily writes pending output. Returns `false` when the connection
/// died mid-write.
fn try_write<H>(conn: &mut Conn<H>) -> bool {
    while conn.pending() > 0 {
        match conn.stream.write(&conn.out[conn.sent..]) {
            Ok(0) => return false,
            Ok(n) => conn.sent += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    // Fully drained: reclaim the buffer.
    conn.out.clear();
    conn.sent = 0;
    true
}

/// Flushes, then settles the connection's fate: `false` means remove it
/// (dead, or closing with everything sent); `true` keeps it registered
/// with its current interest.
fn flush_and_update<H>(poller: &mut Poller, token: u64, conn: &mut Conn<H>) -> bool {
    if !try_write(conn) {
        return false;
    }
    if conn.closing && conn.pending() == 0 {
        return false;
    }
    let wanted = conn.wanted();
    if wanted != conn.registered && poller.modify(raw_fd(&conn.stream), token, wanted).is_ok() {
        conn.registered = wanted;
    }
    true
}

fn close_conn<H>(poller: &mut Poller, conns: &mut HashMap<u64, Conn<H>>, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        let _ = poller.remove(raw_fd(&conn.stream));
        // Dropping the stream closes the socket; pooled backend
        // connections a handler owns drop with it.
    }
}
