//! Per-tenant session tokens for the serve protocol.
//!
//! A [`TokenRegistry`] maps opaque token strings to [`TenantId`]s. The
//! protocol front ([`proto`](super::proto)) holds one when the server was
//! started with `cpistack serve --auth <token-file>`: every session must
//! then open with a `hello <token>` handshake, and the resolved tenant
//! scopes everything the session does (machine namespace, cache quota,
//! persisted state, stats). Without a registry the session runs as the
//! implicit [`TenantId::local`] tenant — the pre-tenancy behaviour.
//!
//! # Token-file format
//!
//! One `<token> <tenant>` pair per line; blank lines and `#` comments are
//! ignored:
//!
//! ```text
//! # issued 2026-07-28 for the ml-perf team
//! 3f9c0a1b2d4e5f60718293a4b5c6d7e8f9a0b1c2 ml-perf
//! 0011223344556677 benchmarking
//! ```
//!
//! `cpistack token --auth-file <file> --tenant <name>` appends a freshly
//! generated token (printed to stdout) — or build a file by hand; any
//! token of 8–128 characters from `[A-Za-z0-9_-]` is accepted. Tokens
//! are bearer secrets: treat the file like a password file.
//!
//! # Examples
//!
//! ```
//! use memodel::service::auth::TokenRegistry;
//!
//! let registry = TokenRegistry::parse(
//!     "# demo tokens\n\
//!      tok-alpha-12345678 alpha\n\
//!      tok-beta-87654321 beta\n",
//! )
//! .unwrap();
//! assert_eq!(registry.resolve("tok-alpha-12345678").unwrap().name(), "alpha");
//! assert!(registry.resolve("tok-alpha-1234567X").is_none());
//! ```

use super::{TenantId, TenantNameError};
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Minimum accepted token length (bytes).
pub const MIN_TOKEN_LEN: usize = 8;

/// Maximum accepted token length (bytes).
pub const MAX_TOKEN_LEN: usize = 128;

/// Length of tokens minted by [`generate_token`] (hex characters).
pub const GENERATED_TOKEN_LEN: usize = 40;

/// An authentication failure: loading or editing a token file, or a
/// malformed token/tenant inside one.
#[derive(Debug)]
#[non_exhaustive]
pub enum AuthError {
    /// Reading or writing the token file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A token-file line did not parse as `<token> <tenant>`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Which rule the line broke.
        reason: String,
    },
    /// A tenant name failed [`TenantId::new`] validation.
    Tenant(TenantNameError),
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::Io { path, error } => {
                write!(f, "token file `{}`: {error}", path.display())
            }
            AuthError::Malformed { line, reason } => {
                write!(f, "token file line {line}: {reason}")
            }
            AuthError::Tenant(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AuthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AuthError::Io { error, .. } => Some(error),
            AuthError::Tenant(e) => Some(e),
            AuthError::Malformed { .. } => None,
        }
    }
}

impl From<TenantNameError> for AuthError {
    fn from(e: TenantNameError) -> Self {
        AuthError::Tenant(e)
    }
}

/// Checks a token's charset and length (the same rule for loaded and
/// generated tokens).
///
/// # Errors
///
/// A human-readable reason when the token is too short, too long, or
/// contains anything outside `[A-Za-z0-9_-]`.
pub fn validate_token(token: &str) -> Result<(), String> {
    if token.len() < MIN_TOKEN_LEN {
        return Err(format!("token is shorter than {MIN_TOKEN_LEN} characters"));
    }
    if token.len() > MAX_TOKEN_LEN {
        return Err(format!("token is longer than {MAX_TOKEN_LEN} characters"));
    }
    if !token
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
    {
        return Err("token may only contain [A-Za-z0-9_-]".into());
    }
    Ok(())
}

/// Constant-time byte comparison: the loop never exits early, so a timing
/// probe cannot learn how long a matching prefix was. (FNV checksums
/// guard *corruption* elsewhere in this codebase; this guards *guessing*.)
fn constant_time_eq(a: &str, b: &str) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.bytes()
        .zip(b.bytes())
        .fold(0u8, |acc, (x, y)| acc | (x ^ y))
        == 0
}

/// Validates a tenant name for *token* use: everything [`TenantId::new`]
/// admits except the reserved `local` name. The implicit local tenant is
/// what open (unauthenticated) fronts and `CpiService::client()` run as
/// — with a state dir it owns the *root* directory — so a bearer token
/// for it would silently hand its holder the whole pre-tenancy
/// namespace.
///
/// # Errors
///
/// [`AuthError::Tenant`] for an invalid or reserved name.
pub fn token_tenant(name: &str) -> Result<TenantId, AuthError> {
    let tenant = TenantId::new(name)?;
    if tenant.is_local() {
        return Err(AuthError::Tenant(TenantNameError {
            name: name.to_owned(),
            reason: "`local` is reserved for the implicit unauthenticated tenant \
                     and cannot be minted a token"
                .to_owned(),
        }));
    }
    Ok(tenant)
}

/// An immutable token → tenant map, shared by every session of a server.
#[derive(Debug, Clone, Default)]
pub struct TokenRegistry {
    /// `(token, tenant)` pairs, file order.
    entries: Vec<(String, TenantId)>,
}

impl TokenRegistry {
    /// An empty registry (rejects every token).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one validated `(token, tenant)` pair (builder style, for
    /// tests and embedders).
    ///
    /// # Errors
    ///
    /// [`AuthError::Malformed`] (line 0) when the token fails
    /// [`validate_token`]; [`AuthError::Tenant`] when the tenant name is
    /// invalid or the reserved `local` (see [`token_tenant`]).
    pub fn with_token(mut self, token: &str, tenant: &str) -> Result<Self, AuthError> {
        validate_token(token).map_err(|reason| AuthError::Malformed { line: 0, reason })?;
        self.entries.push((token.to_owned(), token_tenant(tenant)?));
        Ok(self)
    }

    /// Parses token-file text (see the [module docs](self) for the
    /// format).
    ///
    /// # Errors
    ///
    /// [`AuthError::Malformed`] naming the offending 1-based line, or
    /// [`AuthError::Tenant`] for an invalid tenant name.
    pub fn parse(text: &str) -> Result<Self, AuthError> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut words = line.split_whitespace();
            let (Some(token), Some(tenant), None) = (words.next(), words.next(), words.next())
            else {
                return Err(AuthError::Malformed {
                    line: i + 1,
                    reason: "expected `<token> <tenant>`".into(),
                });
            };
            validate_token(token).map_err(|reason| AuthError::Malformed {
                line: i + 1,
                reason,
            })?;
            entries.push((token.to_owned(), token_tenant(tenant)?));
        }
        Ok(Self { entries })
    }

    /// Loads a token file from disk.
    ///
    /// # Errors
    ///
    /// [`AuthError::Io`] when the file cannot be read, plus everything
    /// [`TokenRegistry::parse`] rejects.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, AuthError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|error| AuthError::Io {
            path: path.to_owned(),
            error,
        })?;
        Self::parse(&text)
    }

    /// Registered tokens.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The tenant a presented token authenticates as, or `None` for an
    /// unknown token. Every registered token is compared in constant
    /// time; the scan does not short-circuit on a match, so timing leaks
    /// neither the matching entry's position nor its prefix.
    pub fn resolve(&self, token: &str) -> Option<TenantId> {
        let mut found = None;
        for (registered, tenant) in &self.entries {
            if constant_time_eq(registered, token) && found.is_none() {
                found = Some(tenant.clone());
            }
        }
        found
    }
}

/// Mints a fresh [`GENERATED_TOKEN_LEN`]-character hex token from OS
/// entropy (`/dev/urandom`).
///
/// # Errors
///
/// [`AuthError::Io`] when the OS entropy source cannot be read. This is
/// deliberate: a bearer token minted from a guessable source (the clock,
/// the pid) would *look* like 160 bits of entropy while being
/// enumerable, so no silent fallback exists — a platform without
/// `/dev/urandom` must fail loudly here.
pub fn generate_token() -> Result<String, AuthError> {
    use std::io::Read;
    let urandom = Path::new("/dev/urandom");
    let io_err = |error| AuthError::Io {
        path: urandom.to_owned(),
        error,
    };
    let mut bytes = [0u8; GENERATED_TOKEN_LEN / 2];
    std::fs::File::open(urandom)
        .and_then(|mut f| f.read_exact(&mut bytes))
        .map_err(io_err)?;
    let mut token = String::with_capacity(GENERATED_TOKEN_LEN);
    for b in bytes {
        token.push_str(&format!("{b:02x}"));
    }
    Ok(token)
}

/// Generates a token for `tenant` and appends it to the token file at
/// `path` (created if missing, owner-only `0600` on unix — the file
/// holds bearer secrets) — the `cpistack token` subcommand. Returns the
/// minted token.
///
/// # Errors
///
/// [`AuthError::Tenant`] for an invalid tenant name or the reserved
/// `local` (see [`token_tenant`]); [`AuthError::Io`] when the file
/// cannot be appended or the OS entropy source is unreadable; any parse
/// error if `path` exists but is not a valid token file (a corrupt file
/// is surfaced, not silently appended to).
pub fn issue_token(path: impl AsRef<Path>, tenant: &str) -> Result<String, AuthError> {
    let path = path.as_ref();
    let tenant = token_tenant(tenant)?;
    if path.exists() {
        // Validates the whole file so a typo'd file fails loudly now, not
        // at serve time.
        TokenRegistry::load(path)?;
    }
    let token = generate_token()?;
    let io_err = |error| AuthError::Io {
        path: path.to_owned(),
        error,
    };
    let mut options = std::fs::OpenOptions::new();
    options.create(true).append(true);
    #[cfg(unix)]
    {
        // Applies on creation only; an existing file keeps its mode (the
        // operator may have widened it deliberately).
        use std::os::unix::fs::OpenOptionsExt;
        options.mode(0o600);
    }
    let mut file = options.open(path).map_err(io_err)?;
    writeln!(file, "{token} {}", tenant.name()).map_err(io_err)?;
    Ok(token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_resolves_and_rejects() {
        let registry = TokenRegistry::parse(
            "# comment\n\
             \n\
             tok-alpha-12345678 alpha\n\
             tok-beta-87654321 beta\n",
        )
        .expect("parses");
        assert_eq!(registry.len(), 2);
        assert_eq!(
            registry.resolve("tok-beta-87654321").unwrap().name(),
            "beta"
        );
        assert!(registry.resolve("tok-gamma-00000000").is_none());
        assert!(registry.resolve("").is_none());
    }

    #[test]
    fn malformed_lines_name_their_line() {
        let err = TokenRegistry::parse("tok-alpha-12345678 alpha extra\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = TokenRegistry::parse("ok-token-1 alpha\nshort a\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = TokenRegistry::parse("tok-alpha-12345678 Not_A_Tenant\n").unwrap_err();
        assert!(err.to_string().contains("invalid tenant name"), "{err}");
        let err = TokenRegistry::parse("bad token! alpha\n").unwrap_err();
        assert!(err.to_string().contains("token"), "{err}");
    }

    #[test]
    fn local_tenant_can_never_be_minted_a_token() {
        // A token for `local` would alias the unauthenticated namespace
        // (and the state-dir root): reserved on every ingestion path.
        let err = TokenRegistry::parse("tok-sneaky-12345678 local\n").unwrap_err();
        assert!(err.to_string().contains("reserved"), "{err}");
        let err = TokenRegistry::new()
            .with_token("tok-sneaky-12345678", "local")
            .unwrap_err();
        assert!(err.to_string().contains("reserved"), "{err}");
        let dir = std::env::temp_dir().join(format!("cpis_auth_local_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tokens.txt");
        let _ = std::fs::remove_file(&path);
        let err = issue_token(&path, "local").unwrap_err();
        assert!(err.to_string().contains("reserved"), "{err}");
        assert!(!path.exists(), "nothing was written");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generated_tokens_are_valid_and_distinct() {
        let a = generate_token().expect("os entropy");
        let b = generate_token().expect("os entropy");
        assert_eq!(a.len(), GENERATED_TOKEN_LEN);
        assert!(validate_token(&a).is_ok());
        assert_ne!(a, b, "two mints must differ");
    }

    #[cfg(unix)]
    #[test]
    fn issued_token_files_are_owner_only() {
        use std::os::unix::fs::PermissionsExt;
        let dir = std::env::temp_dir().join(format!("cpis_auth_mode_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tokens.txt");
        let _ = std::fs::remove_file(&path);
        issue_token(&path, "alpha").expect("mint");
        let mode = std::fs::metadata(&path).unwrap().permissions().mode();
        assert_eq!(mode & 0o777, 0o600, "bearer-token file must be 0600");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn issue_token_appends_and_round_trips() {
        let dir = std::env::temp_dir().join(format!("cpis_auth_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tokens.txt");
        let _ = std::fs::remove_file(&path);
        let first = issue_token(&path, "alpha").expect("mint");
        let second = issue_token(&path, "beta").expect("mint again");
        let registry = TokenRegistry::load(&path).expect("loads");
        assert_eq!(registry.resolve(&first).unwrap().name(), "alpha");
        assert_eq!(registry.resolve(&second).unwrap().name(), "beta");
        // Bad tenant names never touch the file.
        assert!(issue_token(&path, "NOPE").is_err());
        assert_eq!(TokenRegistry::load(&path).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn constant_time_eq_matches_plain_eq() {
        for (a, b) in [
            ("abc", "abc"),
            ("abc", "abd"),
            ("abc", "ab"),
            ("", ""),
            ("x", ""),
        ] {
            assert_eq!(constant_time_eq(a, b), a == b, "{a:?} vs {b:?}");
        }
    }
}
