//! Parameter-stability analysis by bootstrap — an extension beyond the
//! paper's point estimates.
//!
//! §5.2's robustness experiment asks whether a fitted model transfers to a
//! different suite; the dual question is how sensitive the ten fitted
//! parameters are to the *composition* of the training suite. Resampling
//! benchmarks with replacement and refitting answers it: parameters with
//! wide bootstrap spreads are weakly identified (typically because few
//! benchmarks exercise their term), a diagnostic worth running before
//! trusting a per-parameter interpretation.

use crate::fit::{FitOptions, InferredModel};
use crate::inputs::ModelInputs;
use crate::params::{MicroarchParams, ModelParams};
use pmu::RunRecord;
use regress::bootstrap::{bootstrap_params, ParamSpread};
use std::fmt;

/// Bootstrap spreads for all ten model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterStability {
    /// Spread per parameter, `b1..b10` order.
    pub spreads: Vec<ParamSpread>,
    /// Resamples used.
    pub resamples: usize,
}

impl ParameterStability {
    /// Parameters whose 5–95% bootstrap band spans more than `factor`×
    /// their mean magnitude — the weakly-identified ones.
    pub fn weakly_identified(&self, factor: f64) -> Vec<usize> {
        self.spreads
            .iter()
            .enumerate()
            .filter(|(_, s)| (s.p95 - s.p5) > factor * s.mean.abs().max(1e-9))
            .map(|(i, _)| i + 1) // 1-based, like the paper's b-numbers
            .collect()
    }
}

impl fmt::Display for ParameterStability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "parameter stability over {} resamples:", self.resamples)?;
        for (i, s) in self.spreads.iter().enumerate() {
            writeln!(
                f,
                "  b{:<2} mean {:>10.4}  sd {:>10.4}  [{:>10.4}, {:>10.4}]",
                i + 1,
                s.mean,
                s.std_dev,
                s.p5,
                s.p95
            )?;
        }
        Ok(())
    }
}

/// Bootstraps the model fit: `resamples` refits on benchmark sets drawn
/// with replacement from `records`.
///
/// Each refit uses a reduced optimizer budget (this is a diagnostic, not a
/// production fit); deterministic for fixed inputs and `seed`.
///
/// # Panics
///
/// Panics if `records` is too small to fit (≤ 10) or any refit fails.
pub fn bootstrap_fit(
    arch: &MicroarchParams,
    records: &[RunRecord],
    resamples: usize,
    seed: u64,
) -> ParameterStability {
    let inputs: Vec<ModelInputs> = records.iter().map(ModelInputs::from_record).collect();
    let opts = FitOptions {
        extra_starts: 2,
        max_evals: 8_000,
        ..FitOptions::default()
    };
    let spreads = bootstrap_params(inputs.len(), resamples, seed, |idx| {
        let sample: Vec<ModelInputs> = idx.iter().map(|&i| inputs[i]).collect();
        let model =
            InferredModel::fit_from_inputs(arch, &sample, &opts).expect("bootstrap refit failed");
        model.params().b.to_vec()
    });
    ParameterStability { spreads, resamples }
}

/// Convenience: spread check that every parameter stayed inside its bounds
/// across the whole bootstrap (sanity for the fitting pipeline).
pub fn spreads_within_bounds(stability: &ParameterStability) -> bool {
    stability
        .spreads
        .iter()
        .zip(ModelParams::bounds())
        .all(|(s, (lo, hi))| s.p5 >= lo - 1e-9 && s.p95 <= hi + 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workbench::SimSource;
    use oosim::machine::MachineConfig;

    fn setup() -> (MicroarchParams, Vec<RunRecord>) {
        let machine = MachineConfig::core2();
        let suite: Vec<_> = specgen::suites::cpu2000().into_iter().take(16).collect();
        let records = SimSource::new()
            .suite(suite)
            .uops(40_000)
            .seed(9)
            .collect_config(&machine);
        (MicroarchParams::from_machine(&machine), records)
    }

    #[test]
    fn bootstrap_is_deterministic_and_bounded() {
        let (arch, records) = setup();
        let a = bootstrap_fit(&arch, &records, 6, 11);
        let b = bootstrap_fit(&arch, &records, 6, 11);
        assert_eq!(a, b);
        assert_eq!(a.spreads.len(), ModelParams::COUNT);
        assert!(spreads_within_bounds(&a));
    }

    #[test]
    fn weakly_identified_uses_one_based_numbering() {
        let stability = ParameterStability {
            spreads: vec![
                ParamSpread {
                    mean: 1.0,
                    std_dev: 0.01,
                    p5: 0.99,
                    p95: 1.01,
                };
                10
            ],
            resamples: 1,
        };
        assert!(stability.weakly_identified(0.5).is_empty());
        let mut wide = stability.clone();
        wide.spreads[4] = ParamSpread {
            mean: 1.0,
            std_dev: 2.0,
            p5: 0.0,
            p95: 5.0,
        };
        assert_eq!(wide.weakly_identified(0.5), vec![5]);
    }

    #[test]
    fn display_lists_all_parameters() {
        let (arch, records) = setup();
        let s = bootstrap_fit(&arch, &records, 3, 2);
        let text = s.to_string();
        assert!(text.contains("b1 ") && text.contains("b10"));
    }
}
