//! Model inference: fitting the ten `b`-parameters by nonlinear regression.
//!
//! Following the paper (§4): the predicted value is cycles per µop; the
//! optimisation criterion is the sum of relative squared errors
//! `Σ (ŷᵢ−yᵢ)²/yᵢ` (Tofallis), minimised here by bounded Nelder–Mead with
//! deterministic multi-start (the paper used SPSS's nonlinear regression).

use crate::equations;
use crate::inputs::ModelInputs;
use crate::params::{MicroarchParams, ModelParams};
use crate::stack::CpiStack;
use pmu::RunRecord;
use regress::nelder_mead::{refine, MultiStart, Options};
use std::fmt;

/// Options controlling model inference.
///
/// Marked `#[non_exhaustive]`: construct via [`Default`] (or
/// [`FitOptions::quick`]) and refine with the `with_*` setters, so new
/// knobs can be added without breaking downstream code:
///
/// ```
/// use memodel::FitOptions;
///
/// let opts = FitOptions::default().with_extra_starts(4).with_seed(7);
/// assert_eq!(opts.extra_starts, 4);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct FitOptions {
    /// Jittered restarts beyond the canonical initial guess.
    pub extra_starts: usize,
    /// Seed for the restart jitter (fits are deterministic).
    pub seed: u64,
    /// Objective evaluations per start.
    pub max_evals: usize,
    /// Use the absolute squared-error criterion instead of the paper's
    /// relative one (ablation only).
    pub absolute_objective: bool,
    /// Interval cap of Eq. 2 (see [`equations::INTERVAL_CAP`]).
    pub interval_cap: f64,
    /// Worker-thread budget for the multi-start regression (`0` = one per
    /// hardware thread). Purely a scheduling knob: every value — 1
    /// included — produces bit-identical parameters, so it is *excluded*
    /// from [`FitOptions::fingerprint`] and never splits a cache key or
    /// invalidates a persisted snapshot.
    pub threads: usize,
}

impl Default for FitOptions {
    fn default() -> Self {
        Self {
            extra_starts: 12,
            seed: 0x0015_BA55,
            max_evals: 30_000,
            absolute_objective: false,
            interval_cap: equations::INTERVAL_CAP,
            threads: 0,
        }
    }
}

impl FitOptions {
    /// A cheap configuration for doc examples and smoke tests.
    pub fn quick() -> Self {
        Self {
            extra_starts: 3,
            max_evals: 6_000,
            ..Self::default()
        }
    }

    /// Sets the multi-start worker-thread budget (`0` = one per hardware
    /// thread; `1` = strictly sequential). Results are bit-identical for
    /// every value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The effective multi-start thread count: the explicit budget, or
    /// the machine's available parallelism when it is `0`.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Sets the number of jittered restarts beyond the canonical guess.
    pub fn with_extra_starts(mut self, extra_starts: usize) -> Self {
        self.extra_starts = extra_starts;
        self
    }

    /// Sets the restart-jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the objective-evaluation budget per start.
    pub fn with_max_evals(mut self, max_evals: usize) -> Self {
        self.max_evals = max_evals;
        self
    }

    /// Switches to the absolute squared-error criterion (ablation only).
    pub fn with_absolute_objective(mut self, absolute: bool) -> Self {
        self.absolute_objective = absolute;
        self
    }

    /// Sets the interval cap of Eq. 2.
    pub fn with_interval_cap(mut self, cap: f64) -> Self {
        self.interval_cap = cap;
        self
    }

    /// A deterministic digest of every knob that can change a fit's
    /// outcome — the options component of the service's model-cache key
    /// (see [`crate::service::ModelCache`]). Two option sets with equal
    /// fingerprints produce identical fits on identical records; any new
    /// field added to this struct must be folded in here — *unless*, like
    /// [`FitOptions::threads`], it provably cannot change the fitted bits
    /// (folding a scheduling knob in would needlessly split cache keys
    /// and orphan every persisted snapshot written before it existed).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.extra_starts.hash(&mut h);
        self.seed.hash(&mut h);
        self.max_evals.hash(&mut h);
        self.absolute_objective.hash(&mut h);
        self.interval_cap.to_bits().hash(&mut h);
        h.finish()
    }
}

/// Effort profile of one model inference, returned by
/// [`InferredModel::fit_profiled`] and [`InferredModel::refit_profiled`]:
/// the simplex starts that actually ran and the objective evaluations they
/// spent. Purely observational — the fitted bits never depend on it — and
/// schedule-independent: every thread budget reports the same counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FitProfile {
    /// Simplex starts minimised (after duplicate-origin dedupe); always 1
    /// for a warm-start polish.
    pub starts: u64,
    /// Objective evaluations summed across every start.
    pub evals: u64,
}

/// Error returned by [`InferredModel::fit`].
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm, so
/// new failure modes can be reported without a breaking release.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FitError {
    /// Fewer than [`ModelParams::COUNT`] + 1 training records: the fit
    /// would be underdetermined.
    TooFewRecords {
        /// Records supplied.
        got: usize,
    },
    /// A record carried non-finite or negative rates.
    BadRecord {
        /// Benchmark name of the offending record.
        benchmark: String,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewRecords { got } => write!(
                f,
                "need more than {} records to fit 10 parameters, got {got}",
                ModelParams::COUNT
            ),
            FitError::BadRecord { benchmark } => {
                write!(f, "record `{benchmark}` has non-finite or negative rates")
            }
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted mechanistic-empirical model for one machine (and the workload
/// population it was inferred from).
#[derive(Debug, Clone, PartialEq)]
pub struct InferredModel {
    arch: MicroarchParams,
    params: ModelParams,
    interval_cap: f64,
    /// Final objective value (sum of relative squared errors).
    objective: f64,
}

impl InferredModel {
    /// Infers the model from a training set of run records (the paper's
    /// Fig. 1 flow: counters in, fitted model out).
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] when the training set is too small or contains
    /// an unusable record.
    pub fn fit(
        arch: &MicroarchParams,
        records: &[RunRecord],
        opts: &FitOptions,
    ) -> Result<Self, FitError> {
        Self::fit_profiled(arch, records, opts).map(|(model, _)| model)
    }

    /// [`InferredModel::fit`] plus effort accounting: the model and a
    /// [`FitProfile`] of the multi-start fan-out that produced it. The
    /// model is bit-identical to [`InferredModel::fit`]'s.
    ///
    /// # Errors
    ///
    /// As [`InferredModel::fit`].
    pub fn fit_profiled(
        arch: &MicroarchParams,
        records: &[RunRecord],
        opts: &FitOptions,
    ) -> Result<(Self, FitProfile), FitError> {
        let inputs: Vec<ModelInputs> = records.iter().map(ModelInputs::from_record).collect();
        Self::fit_inputs(arch, &inputs, opts).map_err(|idx| match idx {
            FitInputError::TooFew { got } => FitError::TooFewRecords { got },
            FitInputError::Bad { index } => FitError::BadRecord {
                benchmark: records[index].benchmark().to_owned(),
            },
        })
    }

    /// Infers the model directly from pre-derived inputs (no records
    /// needed) — used by resampling diagnostics that reshuffle inputs.
    ///
    /// # Errors
    ///
    /// As [`InferredModel::fit`]; offending inputs are reported by index.
    pub fn fit_from_inputs(
        arch: &MicroarchParams,
        inputs: &[ModelInputs],
        opts: &FitOptions,
    ) -> Result<Self, FitError> {
        Self::fit_inputs(arch, inputs, opts)
            .map(|(model, _)| model)
            .map_err(|e| match e {
                FitInputError::TooFew { got } => FitError::TooFewRecords { got },
                FitInputError::Bad { index } => FitError::BadRecord {
                    benchmark: format!("input #{index}"),
                },
            })
    }

    /// Infers the model by Levenberg–Marquardt instead of Nelder–Mead —
    /// the optimizer SPSS itself uses. Minimises the same Tofallis
    /// objective via residuals `(ŷ−y)/√y`. Faster where the surface is
    /// smooth; compare against the simplex fit with the optimizer ablation.
    ///
    /// # Errors
    ///
    /// As [`InferredModel::fit`].
    pub fn fit_lm(
        arch: &MicroarchParams,
        records: &[RunRecord],
        opts: &FitOptions,
    ) -> Result<Self, FitError> {
        let inputs: Vec<ModelInputs> = records.iter().map(ModelInputs::from_record).collect();
        if inputs.len() <= ModelParams::COUNT {
            return Err(FitError::TooFewRecords { got: inputs.len() });
        }
        if let Some(index) = inputs.iter().position(|i| !i.is_sane()) {
            return Err(FitError::BadRecord {
                benchmark: records[index].benchmark().to_owned(),
            });
        }
        let arch = *arch;
        let cap = opts.interval_cap;
        let result = regress::lm::levenberg_marquardt(
            |b, out| {
                let params = ModelParams::from_slice(b);
                for (i, r) in inputs.iter().zip(out.iter_mut()) {
                    let pred = predict_with_cap(&arch, &params, i, cap);
                    *r = (pred - i.measured_cpi) / i.measured_cpi.sqrt();
                }
            },
            &ModelParams::initial_guess().b,
            &ModelParams::bounds(),
            inputs.len(),
            &regress::lm::LmOptions::default(),
        );
        Ok(Self {
            arch,
            params: ModelParams::from_slice(&result.params),
            interval_cap: cap,
            objective: result.sum_squares,
        })
    }

    /// Infers the model from pre-derived inputs.
    pub(crate) fn fit_inputs(
        arch: &MicroarchParams,
        inputs: &[ModelInputs],
        opts: &FitOptions,
    ) -> Result<(Self, FitProfile), FitInputError> {
        if inputs.len() <= ModelParams::COUNT {
            return Err(FitInputError::TooFew { got: inputs.len() });
        }
        if let Some(index) = inputs.iter().position(|i| !i.is_sane()) {
            return Err(FitInputError::Bad { index });
        }
        let arch = *arch;
        let threads = opts.effective_threads();
        // The thread budget splits across two levels: independent simplex
        // starts first (coarse-grained, zero synchronisation), then — only
        // with budget the starts cannot soak and a training set large
        // enough to amortise the fan-out — across the per-benchmark terms
        // inside one objective evaluation (see [`objective_for`]). Both
        // levels are bit-identity-preserving, so the split is purely a
        // wall-clock decision.
        let guess = ModelParams::initial_guess().b;
        let bounds = ModelParams::bounds();
        let multi_start = MultiStart::new(opts.extra_starts, opts.seed);
        let surviving = multi_start.start_points(&guess, &bounds).len();
        let objective = objective_for(
            arch,
            opts.interval_cap,
            opts.absolute_objective,
            inputs,
            objective_threads(threads, surviving, inputs.len()),
        );
        let nm_opts = Options {
            max_evals: opts.max_evals,
            ..Options::default()
        };
        let (best, profile) = multi_start
            .threads(threads)
            .run_profiled(objective, &guess, &bounds, &nm_opts);
        Ok((
            Self {
                arch,
                params: ModelParams::from_slice(&best.params),
                interval_cap: opts.interval_cap,
                objective: best.value,
            },
            FitProfile {
                starts: profile.starts,
                evals: profile.evals,
            },
        ))
    }

    /// Incrementally refits the model on a fresh record set, warm-starting
    /// a single bounded Nelder–Mead polish from the current parameters
    /// instead of the full [`MultiStart`] fan-out.
    ///
    /// This is the steady-state path of the streaming pipeline: when new
    /// counter batches arrive for a workload that has not drifted, the
    /// previous parameters already sit in the right basin and a local polish
    /// with a small `max_evals` budget (thousands, not hundreds of
    /// thousands of evaluations) tracks the optimum. The caller owns drift
    /// detection: compare the refit objective against a periodic full fit
    /// and fall back to [`InferredModel::fit`] when the bound is exceeded.
    ///
    /// Uses the model's own architecture constants and interval cap; only
    /// `opts.absolute_objective` is read from `opts` so the objective
    /// matches the one the model was originally fitted under. Deterministic
    /// for fixed inputs.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] under the same conditions as
    /// [`InferredModel::fit`].
    pub fn refit(
        &self,
        records: &[RunRecord],
        opts: &FitOptions,
        max_evals: usize,
    ) -> Result<Self, FitError> {
        self.refit_profiled(records, opts, max_evals)
            .map(|(model, _)| model)
    }

    /// [`InferredModel::refit`] plus effort accounting — the polish's
    /// single start and its evaluation count as a [`FitProfile`]. The
    /// model is bit-identical to [`InferredModel::refit`]'s.
    ///
    /// # Errors
    ///
    /// As [`InferredModel::refit`].
    pub fn refit_profiled(
        &self,
        records: &[RunRecord],
        opts: &FitOptions,
        max_evals: usize,
    ) -> Result<(Self, FitProfile), FitError> {
        let inputs: Vec<ModelInputs> = records.iter().map(ModelInputs::from_record).collect();
        if inputs.len() <= ModelParams::COUNT {
            return Err(FitError::TooFewRecords { got: inputs.len() });
        }
        if let Some(index) = inputs.iter().position(|i| !i.is_sane()) {
            return Err(FitError::BadRecord {
                benchmark: records[index].benchmark().to_owned(),
            });
        }
        let arch = self.arch;
        let cap = self.interval_cap;
        // One warm start: any spare budget can only help inside the
        // objective, and only on a training set big enough to pay for it.
        let objective = objective_for(
            arch,
            cap,
            opts.absolute_objective,
            &inputs,
            objective_threads(opts.effective_threads(), 1, inputs.len()),
        );
        let best = refine(objective, &self.params.b, &ModelParams::bounds(), max_evals);
        let profile = FitProfile {
            starts: 1,
            evals: best.evals as u64,
        };
        Ok((
            Self {
                arch,
                params: ModelParams::from_slice(&best.params),
                interval_cap: cap,
                objective: best.value,
            },
            profile,
        ))
    }

    /// Re-assembles a model from persisted parts without refitting — the
    /// restore path of [`crate::service::persist`]. Fitting is
    /// deterministic, so a model rebuilt from a snapshot of its own parts
    /// is bit-identical to the original.
    pub fn from_parts(
        arch: MicroarchParams,
        params: ModelParams,
        interval_cap: f64,
        objective: f64,
    ) -> Self {
        Self {
            arch,
            params,
            interval_cap,
            objective,
        }
    }

    /// The machine-level parameters the model was built with.
    pub fn arch(&self) -> &MicroarchParams {
        &self.arch
    }

    /// The interval cap (Eq. 2) the fit ran with.
    pub fn interval_cap(&self) -> f64 {
        self.interval_cap
    }

    /// The fitted regression parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Final objective value (sum of relative squared errors over the
    /// training set).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Predicts cycles per µop for one benchmark's counter-derived inputs.
    pub fn predict(&self, inputs: &ModelInputs) -> f64 {
        predict_with_cap(&self.arch, &self.params, inputs, self.interval_cap)
    }

    /// Predicts CPI for a run record.
    pub fn predict_record(&self, record: &RunRecord) -> f64 {
        self.predict(&ModelInputs::from_record(record))
    }

    /// Builds the model-estimated CPI stack for one run record — the
    /// paper's headline deliverable.
    pub fn cpi_stack(&self, record: &RunRecord) -> CpiStack {
        self.stack_for(&ModelInputs::from_record(record))
    }

    /// Builds the CPI stack from pre-derived inputs.
    pub fn stack_for(&self, i: &ModelInputs) -> CpiStack {
        let cbr = equations::branch_resolution_capped(&self.params, i, self.interval_cap);
        let mlp = equations::mlp_correction(&self.params, i);
        let mem_term = |rate: f64, latency: f64| {
            if rate <= 0.0 {
                0.0
            } else {
                rate * latency / mlp
            }
        };
        CpiStack {
            base: 1.0 / self.arch.width,
            l1i: i.mpu_l1i * self.arch.c_l2,
            llc_i: i.mpu_llci * self.arch.c_mem,
            itlb: i.mpu_itlb * self.arch.c_tlb,
            branch: i.mpu_br * (cbr + self.arch.fe_depth),
            llc_d: mem_term(i.mpu_dl2, self.arch.c_mem),
            dtlb: mem_term(i.mpu_dtlb, self.arch.c_tlb),
            resource: equations::resource_stall(&self.arch, &self.params, i),
            branch_resolution: cbr,
            mlp,
        }
    }
}

impl fmt::Display for InferredModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} | {}", self.arch, self.params)
    }
}

/// Internal fit error carrying an index instead of a name.
#[derive(Debug)]
pub(crate) enum FitInputError {
    TooFew { got: usize },
    Bad { index: usize },
}

/// Builds the regression objective over `inputs`: the sum of relative (or
/// absolute) squared errors the simplex minimises.
///
/// This is the fit's hot path — it runs up to `(1 + extra_starts) ×
/// max_evals` times per fit. Everything it needs is precomputed per key
/// and captured by plain copy/borrow, so each evaluation is
/// allocation-free on the serial path (`ModelParams::from_slice` lands in
/// a stack array). The per-point division by `measured_cpi` is
/// deliberately *not* hoisted into reciprocal weights: `e*e * (1/y)`
/// rounds differently from `e*e / y`, and fitted bits must not change.
///
/// With `threads > 1` the per-benchmark terms fan across scoped workers
/// via [`regress::par::sum_ordered`], whose index-ordered buffer and
/// sequential fold associate exactly like the serial loop — bit-identical
/// at every thread count. The closure is `Fn + Sync`, so [`MultiStart`]
/// can also share it across start-level workers.
fn objective_for(
    arch: MicroarchParams,
    cap: f64,
    absolute: bool,
    inputs: &[ModelInputs],
    threads: usize,
) -> impl Fn(&[f64]) -> f64 + Sync + '_ {
    move |b: &[f64]| -> f64 {
        let params = ModelParams::from_slice(b);
        let term = |i: &ModelInputs| {
            let pred = predict_with_cap(&arch, &params, i, cap);
            let err = pred - i.measured_cpi;
            if absolute {
                err * err
            } else {
                err * err / i.measured_cpi
            }
        };
        if threads > 1 {
            regress::par::sum_ordered(inputs.len(), threads, |i| term(&inputs[i]))
        } else {
            inputs.iter().map(term).sum()
        }
    }
}

/// How many workers one objective evaluation may fan its terms across:
/// the share of the thread budget the start-level fan-out cannot use,
/// capped so every worker keeps enough terms to amortise the scoped-thread
/// spawn (tens of microseconds against ~40 ns a term). The paper campaign
/// (~50 inputs per key, ~2 µs an evaluation) therefore stays serial and
/// draws its speedup from start- and key-level parallelism; resampled or
/// pooled training sets in the many-thousands engage the inner level.
fn objective_threads(budget: usize, starts: usize, inputs: usize) -> usize {
    const MIN_INPUTS_PER_WORKER: usize = 4096;
    (budget / starts.max(1))
        .min(inputs / MIN_INPUTS_PER_WORKER)
        .max(1)
}

fn predict_with_cap(
    arch: &MicroarchParams,
    params: &ModelParams,
    inputs: &ModelInputs,
    cap: f64,
) -> f64 {
    // Same as equations::predict_cpi but honouring the configured cap.
    let mlp = equations::mlp_correction(params, inputs);
    let cbr = equations::branch_resolution_capped(params, inputs, cap);
    let mem = |rate: f64, latency: f64| {
        if rate <= 0.0 {
            0.0
        } else {
            rate * latency / mlp
        }
    };
    1.0 / arch.width
        + inputs.mpu_l1i * arch.c_l2
        + inputs.mpu_llci * arch.c_mem
        + inputs.mpu_itlb * arch.c_tlb
        + inputs.mpu_br * (cbr + arch.fe_depth)
        + mem(inputs.mpu_dl2, arch.c_mem)
        + mem(inputs.mpu_dtlb, arch.c_tlb)
        + equations::resource_stall(arch, params, inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workbench::{CounterSource, SimSource};
    use oosim::machine::MachineConfig;

    fn training_records() -> Vec<RunRecord> {
        let machine = MachineConfig::core2();
        let suite: Vec<_> = specgen::suites::cpu2000().into_iter().take(16).collect();
        SimSource::new()
            .suite(suite)
            .uops(60_000)
            .seed(7)
            .collect(&machine.into(), 1)
            .expect("simulation cannot fail")
    }

    #[test]
    fn fit_is_deterministic() {
        let arch = MicroarchParams::from_machine(&MachineConfig::core2());
        let records = training_records();
        let a = InferredModel::fit(&arch, &records, &FitOptions::quick()).unwrap();
        let b = InferredModel::fit(&arch, &records, &FitOptions::quick()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fit_reduces_error_below_naive_model() {
        let arch = MicroarchParams::from_machine(&MachineConfig::core2());
        let records = training_records();
        let model = InferredModel::fit(&arch, &records, &FitOptions::quick()).unwrap();
        // Naive comparison: predict the training-set mean CPI for everyone.
        let mean: f64 = records.iter().map(|r| r.cpi()).sum::<f64>() / records.len() as f64;
        let model_err: f64 = records
            .iter()
            .map(|r| ((model.predict_record(r) - r.cpi()) / r.cpi()).abs())
            .sum::<f64>()
            / records.len() as f64;
        let naive_err: f64 = records
            .iter()
            .map(|r| ((mean - r.cpi()) / r.cpi()).abs())
            .sum::<f64>()
            / records.len() as f64;
        assert!(
            model_err < naive_err * 0.6,
            "model {model_err:.3} vs naive {naive_err:.3}"
        );
    }

    #[test]
    fn stack_sums_to_prediction() {
        let arch = MicroarchParams::from_machine(&MachineConfig::core2());
        let records = training_records();
        let model = InferredModel::fit(&arch, &records, &FitOptions::quick()).unwrap();
        for r in &records {
            let stack = model.cpi_stack(r);
            let pred = model.predict_record(r);
            assert!(
                (stack.total() - pred).abs() < 1e-9,
                "{}: stack {} vs pred {}",
                r.benchmark(),
                stack.total(),
                pred
            );
        }
    }

    #[test]
    fn fit_profiled_matches_fit_and_is_schedule_independent() {
        let arch = MicroarchParams::from_machine(&MachineConfig::core2());
        let records = training_records();
        let opts = FitOptions::quick().with_threads(1);
        let (model, profile) = InferredModel::fit_profiled(&arch, &records, &opts).unwrap();
        assert_eq!(model, InferredModel::fit(&arch, &records, &opts).unwrap());
        // quick() schedules 1 + 3 starts; dedupe may only shrink that.
        assert!((1..=4).contains(&profile.starts), "{profile:?}");
        assert!(profile.evals >= profile.starts, "{profile:?}");
        for threads in [2, 8] {
            let threaded = FitOptions::quick().with_threads(threads);
            let (m, p) = InferredModel::fit_profiled(&arch, &records, &threaded).unwrap();
            assert_eq!(m, model, "threads={threads}");
            assert_eq!(p, profile, "threads={threads}");
        }
    }

    #[test]
    fn refit_profiled_counts_the_polish() {
        let arch = MicroarchParams::from_machine(&MachineConfig::core2());
        let records = training_records();
        let opts = FitOptions::quick();
        let model = InferredModel::fit(&arch, &records, &opts).unwrap();
        let (polished, profile) = model.refit_profiled(&records, &opts, 2_000).unwrap();
        assert_eq!(polished, model.refit(&records, &opts, 2_000).unwrap());
        assert_eq!(profile.starts, 1);
        assert!(profile.evals > 0);
    }

    #[test]
    fn parallel_objective_is_bit_identical_to_serial() {
        let arch = MicroarchParams::from_machine(&MachineConfig::core2());
        let records = training_records();
        let inputs: Vec<ModelInputs> = records.iter().map(ModelInputs::from_record).collect();
        // Inflate to a size where the inner fan-out genuinely engages.
        let big: Vec<ModelInputs> = inputs.iter().cycle().take(10_000).copied().collect();
        let guess = ModelParams::initial_guess().b;
        for absolute in [false, true] {
            let serial =
                objective_for(arch, crate::equations::INTERVAL_CAP, absolute, &big, 1)(&guess);
            for threads in [2, 3, 8] {
                let parallel = objective_for(
                    arch,
                    crate::equations::INTERVAL_CAP,
                    absolute,
                    &big,
                    threads,
                )(&guess);
                assert_eq!(
                    parallel.to_bits(),
                    serial.to_bits(),
                    "threads={threads} absolute={absolute}"
                );
            }
        }
    }

    #[test]
    fn objective_thread_split_favours_starts_then_size() {
        // The paper campaign (~50–103 inputs/key) never fans inside the
        // objective, whatever the budget…
        assert_eq!(objective_threads(8, 1, 103), 1);
        // …a full start fan-out soaks the whole budget first…
        assert_eq!(objective_threads(8, 13, 100_000), 1);
        // …and only spare budget over a large set engages the inner level.
        assert_eq!(objective_threads(8, 2, 100_000), 4);
        assert_eq!(objective_threads(2, 1, 10_000), 2);
    }

    #[test]
    fn too_few_records_is_an_error() {
        let arch = MicroarchParams::from_machine(&MachineConfig::core2());
        let records: Vec<RunRecord> = training_records().into_iter().take(5).collect();
        assert!(matches!(
            InferredModel::fit(&arch, &records, &FitOptions::quick()),
            Err(FitError::TooFewRecords { got: 5 })
        ));
    }

    #[test]
    fn fitted_parameters_respect_bounds() {
        let arch = MicroarchParams::from_machine(&MachineConfig::core2());
        let model = InferredModel::fit(&arch, &training_records(), &FitOptions::quick()).unwrap();
        for (v, (lo, hi)) in model.params().b.iter().zip(ModelParams::bounds()) {
            assert!(*v >= lo && *v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn refit_tracks_a_perturbed_training_set_cheaply() {
        let arch = MicroarchParams::from_machine(&MachineConfig::core2());
        let records = training_records();
        let opts = FitOptions::quick();
        let model = InferredModel::fit(&arch, &records, &opts).unwrap();
        // Same records: the warm polish must not make the objective worse.
        let same = model.refit(&records, &opts, 2_000).unwrap();
        assert!(same.objective() <= model.objective() * (1.0 + 1e-9));
        // Mildly jittered records (a stationary live stream): the warm refit
        // should land near the full fit of the jittered set.
        let jittered: Vec<RunRecord> = {
            let mut src = pmu::live::ReplaySource::new(records.clone())
                .batch_size(records.len())
                .rounds(2)
                .jitter(99);
            use pmu::live::LiveSource as _;
            src.next_batch(); // round 0 (verbatim)
            src.next_batch().unwrap() // round 1 (jittered)
        };
        let warm = model.refit(&jittered, &opts, 2_000).unwrap();
        let full = InferredModel::fit(&arch, &jittered, &opts).unwrap();
        let n = jittered.len() as f64;
        assert!(
            warm.objective() / n <= full.objective() / n * 2.0,
            "warm {} vs full {}",
            warm.objective(),
            full.objective()
        );
        // Determinism.
        let again = model.refit(&jittered, &opts, 2_000).unwrap();
        assert_eq!(warm, again);
    }

    #[test]
    fn refit_validates_like_fit() {
        let arch = MicroarchParams::from_machine(&MachineConfig::core2());
        let records = training_records();
        let opts = FitOptions::quick();
        let model = InferredModel::fit(&arch, &records, &opts).unwrap();
        let few: Vec<RunRecord> = records.iter().take(5).cloned().collect();
        assert!(matches!(
            model.refit(&few, &opts, 1_000),
            Err(FitError::TooFewRecords { got: 5 })
        ));
    }

    #[test]
    fn display_shows_arch_and_params() {
        let arch = MicroarchParams::from_machine(&MachineConfig::core2());
        let model = InferredModel::fit(&arch, &training_records(), &FitOptions::quick()).unwrap();
        let text = model.to_string();
        assert!(text.contains("D=4") && text.contains("b = ["));
    }
}
