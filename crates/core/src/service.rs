//! `CpiService` — a long-lived session API for batched, cached,
//! multi-client CPI-stack serving.
//!
//! The [`Workbench`](crate::workbench::Workbench) is a one-shot builder:
//! every caller pays the full collect → fit cost. This module is the
//! serving layer on top of the same model: a [`CpiService`] owns a warm
//! campaign — counter records per machine, fitted models memoized in a
//! [`ModelCache`] — and any number of concurrent [`CpiClient`]s submit
//! typed [`Request`]s against it:
//!
//! * **ingest** new counter batches ([`Request::IngestRecords`],
//!   [`Request::IngestCsv`]) — appended to the machine's record store,
//!   bumping its *generation* so stale cached models are invalidated,
//! * **fit-and-stack** for a `(machine, suite, options)` [`ModelKey`]
//!   ([`Request::Fit`], [`Request::Stacks`], [`Request::Group`]) — the
//!   first request fits by nonlinear regression, every repeat is a cache
//!   hit,
//! * **delta stacks** between two machines ([`Request::Delta`]),
//! * **raw predictions** per benchmark ([`Request::Predictions`]),
//! * **stats** — cache hit/miss/eviction accounting ([`Request::Stats`]).
//!
//! Requests travel over an mpsc queue to a **sharded worker pool**: store
//! mutations are hashed to shards by machine (one writer per machine's
//! record store), and model requests by their full cache key — so repeat
//! requests for one key serialize on one worker (the second is a cache
//! hit, never a duplicate regression) while different keys, even two
//! suites of the same machine, fan out in parallel. Responses stream back
//! over a per-request channel as [`Response`] items — a large stack set
//! arrives one benchmark at a time, never buffered whole.
//!
//! Fitting is deterministic, so service output is byte-identical to a
//! sequential [`Workbench`](crate::workbench::Workbench) run — and in
//! fact `Workbench::fit()` is implemented *on top of* an ephemeral
//! `CpiService`, so there is exactly one fitting code path.
//!
//! # Multi-tenant isolation
//!
//! The service is **tenant-scoped** end to end. Every [`CpiClient`] is
//! bound to a [`TenantId`] ([`CpiService::client`] binds the implicit
//! [`TenantId::local`]; [`CpiService::client_for`] binds any other), and
//! a tenant's identity partitions the whole serving stack:
//!
//! * **machine namespaces** — registration and ingestion land in the
//!   calling tenant's own store; two tenants may both register `core2`
//!   and never see each other's records or specs (a cross-tenant request
//!   fails typed with [`ServiceError::NotRegistered`], never serves
//!   another tenant's data),
//! * **cache quotas** — the shared [`ModelCache`] gives each tenant its
//!   own LRU budget: a tenant flooding the cache evicts only its *own*
//!   models, and [`CacheStats`] are accounted per tenant,
//! * **persistence** — with a state dir, each named tenant snapshots to
//!   its own `tenant-<name>/` subdirectory (the local tenant keeps the
//!   root, so single-tenant deployments are unchanged on disk), so a warm
//!   restart restores each tenant only from its own files,
//! * **stats** — [`CpiClient::stats`] reports the calling tenant's
//!   counters; [`CpiService::shutdown`] returns the aggregate.
//!
//! Three submodules turn the session API into a deployable server:
//!
//! * [`proto`] — the serve-session line protocol (one codec shared by the
//!   stdin/stdout front and a [`std::net::TcpListener`]-based front with
//!   concurrent connections, idle timeouts and graceful shutdown), plus a
//!   length-prefixed binary framing for bulk stack streams. With a token
//!   registry configured, every session must open with a
//!   `hello <token>` handshake before any command is dispatched,
//! * [`auth`] — per-tenant session tokens: a [`auth::TokenRegistry`]
//!   loaded from a token file (`cpistack serve --auth <file>`; mint
//!   tokens with `cpistack token`) maps secrets to [`TenantId`]s,
//! * [`persist`] — durable model state: fitted parameters snapshot to a
//!   versioned, checksummed on-disk store keyed by
//!   `(machine, suite, options fingerprint, records digest)`
//!   ([`ServiceConfig::with_state_dir`]), so a restarted service serves
//!   its first fit request from disk instead of re-running the
//!   regression.
//!
//! # Examples
//!
//! ```
//! use memodel::service::{CpiService, ModelKey, ServiceConfig};
//! use memodel::workbench::{MachineSpec, SimSource};
//! use memodel::FitOptions;
//! use oosim::machine::MachineConfig;
//! use pmu::{MachineId, Suite};
//!
//! // One warm service, many cheap clients.
//! let machine = MachineConfig::core2();
//! let records = SimSource::new()
//!     .suite(specgen::suites::cpu2000().into_iter().take(12).collect())
//!     .uops(5_000)
//!     .seed(42)
//!     .collect_config(&machine);
//! let service = CpiService::start(ServiceConfig::new());
//! let client = service.client();
//! client.register(MachineSpec::from(&machine)).unwrap();
//! client.ingest(records).unwrap();
//!
//! let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
//! let (first, stacks) = client.stacks(key.clone()).unwrap();
//! assert!(!first.cached, "first request fits");
//! assert_eq!(stacks.len(), 12);
//! let (again, _) = service.client().stacks(key).unwrap();
//! assert!(again.cached, "repeat request hits the model cache");
//! service.shutdown();
//! ```

pub mod auth;
pub mod cluster;
pub mod persist;
pub mod poller;
pub mod proto;
pub mod stream;
pub mod sweep;

use crate::delta::{suite_delta, DeltaStacks};
use crate::fit::{FitError, FitOptions, InferredModel};
use crate::workbench::{CounterSource, FittedGroup, MachineSpec, SimSource};
use oosim::machine::MachineConfig;
use persist::SnapshotStore;
use pmu::csv::ParseCsvError;
use pmu::{MachineId, RunRecord, Suite};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;
use sweep::{SweepError, SweepSpec, SweepSummary, SweepVariant, SweepVariantResult};

// ---------------------------------------------------------------------------
// Tenants
// ---------------------------------------------------------------------------

/// The identity that partitions the whole serving stack: machine
/// namespaces, cache quotas, persisted state and stats are all scoped by
/// tenant (see the [module docs](self)). Cheap to clone (`Arc`-interned
/// name), usable as a map key.
///
/// Names are path- and protocol-safe by construction: lowercase ASCII
/// letters, digits, `-` and `_`, between 1 and 32 bytes. The implicit
/// single-tenant identity is [`TenantId::local`] (named `local`) — the
/// one every [`CpiService::client`] handle and the unauthenticated stdio
/// front use.
///
/// # Examples
///
/// ```
/// use memodel::service::TenantId;
/// let t = TenantId::new("team-a").unwrap();
/// assert_eq!(t.name(), "team-a");
/// assert!(TenantId::new("No Spaces!").is_err());
/// assert_eq!(TenantId::local().name(), "local");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TenantId(Arc<str>);

/// Why a tenant name was rejected by [`TenantId::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantNameError {
    /// The offending name.
    pub name: String,
    /// Which rule it broke.
    pub reason: String,
}

impl fmt::Display for TenantNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid tenant name `{}`: {}", self.name, self.reason)
    }
}

impl std::error::Error for TenantNameError {}

impl TenantId {
    /// The maximum tenant-name length in bytes.
    pub const MAX_NAME_LEN: usize = 32;

    /// A validated tenant identity.
    ///
    /// # Errors
    ///
    /// [`TenantNameError`] when the name is empty, longer than
    /// [`TenantId::MAX_NAME_LEN`] bytes, or contains anything outside
    /// `[a-z0-9_-]` — the charset keeps tenant names safe to embed in
    /// state-dir paths and protocol lines.
    pub fn new(name: &str) -> Result<Self, TenantNameError> {
        let bad = |reason: &str| TenantNameError {
            name: name.to_owned(),
            reason: reason.to_owned(),
        };
        if name.is_empty() {
            return Err(bad("must not be empty"));
        }
        if name.len() > Self::MAX_NAME_LEN {
            return Err(bad("must be at most 32 bytes"));
        }
        if !name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_')
        {
            return Err(bad("only lowercase ascii letters, digits, `-` and `_`"));
        }
        Ok(Self(Arc::from(name)))
    }

    /// The implicit single-tenant identity (`local`): what
    /// [`CpiService::client`] binds, and what unauthenticated fronts run
    /// as.
    pub fn local() -> Self {
        Self(Arc::from("local"))
    }

    /// Whether this is the implicit local tenant.
    pub fn is_local(&self) -> bool {
        &*self.0 == "local"
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Error produced while servicing one request.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// The machine has records or requests but no registered
    /// [`MachineSpec`] — the service cannot fit without the
    /// microarchitectural constants.
    NotRegistered {
        /// The machine missing a spec.
        machine: MachineId,
    },
    /// No ingested records match the requested key.
    NoRecords {
        /// The machine requested.
        machine: MachineId,
        /// The suite requested (`None` = pooled).
        suite: Option<Suite>,
    },
    /// Model inference failed for the requested key.
    Fit {
        /// The machine whose model could not be inferred.
        machine: MachineId,
        /// The suite group (`None` = pooled).
        suite: Option<Suite>,
        /// The underlying fit error.
        error: FitError,
    },
    /// A CSV ingestion batch failed to parse.
    Parse {
        /// Where the batch came from (a path, or `"<memory>"`).
        origin: String,
        /// The underlying error (carries the offending line number).
        error: ParseCsvError,
    },
    /// The request's handler panicked. The shard caught the panic and
    /// keeps serving; shared state is consistent (mutations happen in
    /// short lock scopes that complete or never start).
    Panicked {
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// A replicated model snapshot could not be decoded or installed
    /// (the cluster replication path; see [`cluster`]).
    Snapshot {
        /// What went wrong.
        detail: String,
    },
    /// A design-space sweep could not be set up (bad grid, variant base,
    /// invalid grid point — see [`sweep::SweepError`]).
    Sweep {
        /// The underlying sweep error.
        error: SweepError,
    },
    /// The service has shut down; no more requests can be served.
    Stopped,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let suite_name = |s: &Option<Suite>| s.map(|s| s.name()).unwrap_or("all suites");
        match self {
            ServiceError::NotRegistered { machine } => write!(
                f,
                "machine `{}` is not registered — submit its MachineSpec first",
                machine.name()
            ),
            ServiceError::NoRecords { machine, suite } => write!(
                f,
                "no ingested records for machine `{}` on {}",
                machine.name(),
                suite_name(suite)
            ),
            ServiceError::Fit {
                machine,
                suite,
                error,
            } => write!(
                f,
                "fitting `{}` on {} failed: {error}",
                machine.name(),
                suite_name(suite)
            ),
            ServiceError::Parse { origin, error } => {
                write!(f, "ingesting counters from `{origin}` failed: {error}")
            }
            ServiceError::Panicked { detail } => {
                write!(f, "the request panicked: {detail}")
            }
            ServiceError::Snapshot { detail } => {
                write!(f, "snapshot replication failed: {detail}")
            }
            ServiceError::Sweep { error } => write!(f, "sweep failed: {error}"),
            ServiceError::Stopped => write!(f, "the service has shut down"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Fit { error, .. } => Some(error),
            ServiceError::Parse { error, .. } => Some(error),
            ServiceError::Sweep { error } => Some(error),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Keys, requests, responses
// ---------------------------------------------------------------------------

/// The identity of one servable model: which machine, which suite slice of
/// its records (`None` = pool every suite), and the fit options. Two
/// requests with equal keys (options compared by
/// [`FitOptions::fingerprint`]) share one cached model.
#[derive(Debug, Clone)]
pub struct ModelKey {
    /// The machine to model.
    pub machine: MachineId,
    /// The suite to train on (`None` pools all ingested suites).
    pub suite: Option<Suite>,
    /// The fit options (part of the cache key via its fingerprint).
    pub options: FitOptions,
}

impl ModelKey {
    /// A key for one (machine, suite) group.
    pub fn new(machine: MachineId, suite: Option<Suite>, options: FitOptions) -> Self {
        Self {
            machine,
            suite,
            options,
        }
    }

    /// A key pooling every ingested suite of `machine`.
    pub fn pooled(machine: MachineId, options: FitOptions) -> Self {
        Self::new(machine, None, options)
    }

    fn cache_key(&self) -> CacheKey {
        CacheKey {
            machine: self.machine,
            suite: self.suite,
            options: self.options.fingerprint(),
        }
    }
}

/// A typed request submitted to the service queue.
#[derive(Debug)]
#[non_exhaustive]
pub enum Request {
    /// Register (or replace) a machine's spec. Replacing an existing spec
    /// bumps the machine's generation, invalidating its cached models.
    /// (Boxed: a `MachineSpec` with a simulator config dwarfs every other
    /// variant.)
    Register(Box<MachineSpec>),
    /// Ingest a batch of counter records (machines may be mixed; the
    /// router splits the batch per machine). Bumps each touched machine's
    /// generation.
    IngestRecords(Vec<RunRecord>),
    /// Parse counters-CSV text and ingest it. `origin` names the source
    /// (a path, or `"<memory>"`) for error messages.
    IngestCsv {
        /// CSV text in `pmu::csv` format.
        text: String,
        /// Where the text came from.
        origin: String,
    },
    /// Fit (or fetch from cache) one model; responds with one
    /// [`Response::Model`].
    Fit(ModelKey),
    /// Fit, then stream one [`Response::Stack`] per training benchmark.
    Stacks(ModelKey),
    /// Fit, then respond with the whole [`FittedGroup`] (model + training
    /// records) in one [`Response::Group`] — the `Workbench` path.
    Group(ModelKey),
    /// Fit, then stream one [`Response::Prediction`] per benchmark.
    Predictions(ModelKey),
    /// Fit both machines on one suite and respond with the CPI-delta
    /// stacks explaining `new` vs `old` (Fig. 6). The combining task runs
    /// on the `old` side's key shard and fits any side that is not yet
    /// cached there and then — so a raw submit can briefly duplicate a
    /// regression racing a first-time fit of the `new` key on its home
    /// shard (results are identical; the cache insert is idempotent).
    /// [`CpiClient::delta`] avoids this by warming both keys on their
    /// home shards first.
    Delta {
        /// Baseline machine.
        old: MachineId,
        /// Comparison machine.
        new: MachineId,
        /// The suite both models train on.
        suite: Suite,
        /// Fit options for both models.
        options: FitOptions,
    },
    /// Streaming ingest: **upsert** a live counter batch into one
    /// machine's store. Unlike [`Request::IngestRecords`] (which appends),
    /// a stream batch *replaces* any earlier record for the same
    /// `(benchmark, suite)` — a live source re-samples the same workloads
    /// every window, and the store must track the latest measurement
    /// instead of growing without bound. Bumps the machine's generation,
    /// retiring cached models. Records for other machines are dropped
    /// client-side before routing.
    StreamBatch {
        /// The machine the stream is bound to.
        machine: MachineId,
        /// The batch, as sampled by a [`pmu::live::LiveSource`].
        records: Vec<RunRecord>,
    },
    /// Streaming refit: serve the key's model, preferring the incremental
    /// warm-start polish over the full multi-start fan-out. The worker
    /// picks the cheapest safe mode (see [`RefitMode`]) under the
    /// service's [`RefitPolicy`]: cache hit when the generation is
    /// unchanged; warm-start polish when a baseline fit exists, the
    /// workload is unchanged, and the drift guard accepts the result;
    /// the full fan-out otherwise. Responds with one [`Response::Refit`].
    Refit {
        /// The model key to serve.
        key: ModelKey,
        /// Force the full fan-out (and skip the cache), re-anchoring the
        /// baseline — the stream-close reconciliation path, which makes
        /// final parameters a pure function of the final record set.
        force_full: bool,
    },
    /// Ensure the sweep's base and every expanded grid variant has
    /// counter records for the spec's suite, simulating only the
    /// *missing* configs on the work-stealing collect pool (one trace per
    /// workload per distinct config — never per variant-request). Runs on
    /// the base machine's store shard so concurrent sweeps over one base
    /// serialize their collections; responds with one
    /// [`Response::SweepReady`] carrying what it had to simulate.
    SweepCollect(Box<SweepSpec>),
    /// Run a design-space sweep: expand the grid, ensure records (as
    /// [`Request::SweepCollect`]), fit base + every variant, and stream
    /// one [`Response::SweepVariant`] per variant in grid-expansion order
    /// followed by one [`Response::SweepSummary`]. The combining task
    /// runs on the *base key's* shard and serves each variant through the
    /// one fitting path — so a raw submit fits cold variants serially on
    /// that worker (each fan-out still using the shared fit-thread
    /// budget). [`CpiClient::sweep`] instead collects first and warms
    /// every variant key on its home shard, fanning the fits across the
    /// pool and making this task all cache hits.
    Sweep(Box<SweepSpec>),
    /// Replace one machine's record store wholesale with a replicated
    /// copy (the cluster's record-shipping path for two-machine joins;
    /// see [`cluster`]). Digest-idempotent: when the machine's current
    /// records already digest-match the payload the store, spec and
    /// generation are left untouched (cached models stay warm) and the
    /// ack reports 0 records; otherwise the spec and full batch list are
    /// replaced and the generation bumps.
    ImportRecords {
        /// The machine's spec (rebuilt from the id on the wire — a
        /// variant name is its own recipe).
        spec: Box<MachineSpec>,
        /// The complete record store to install (all suites).
        records: Vec<RunRecord>,
    },
    /// Snapshot the service counters into one [`Response::Stats`].
    Stats,
}

/// How a [`Request::Refit`] was served, cheapest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefitMode {
    /// Cache hit at the current generation: no regression ran.
    Cached,
    /// Warm-start polish from the baseline parameters
    /// ([`InferredModel::refit`]), accepted by the drift guard.
    Incremental,
    /// Full multi-start fan-out ([`InferredModel::fit`]): first fit,
    /// periodic re-anchor, workload shift, drift-guard fallback, or a
    /// forced reconciliation.
    Full,
}

impl RefitMode {
    /// Stable lowercase name (used by the line protocol and watch output).
    pub fn name(self) -> &'static str {
        match self {
            RefitMode::Cached => "cached",
            RefitMode::Incremental => "incremental",
            RefitMode::Full => "full",
        }
    }
}

impl fmt::Display for RefitMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One benchmark's `(name, measured CPI, predicted CPI)` row, as collected
/// by [`CpiClient::predictions`].
pub type PredictionRow = (String, f64, f64);

/// How a served model came to be.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// The machine modeled.
    pub machine: MachineId,
    /// The suite group (`None` = pooled).
    pub suite: Option<Suite>,
    /// The fitted (or cache-served) model.
    pub model: Arc<InferredModel>,
    /// Training records behind the model.
    pub records: usize,
    /// `true` when the model came from the cache rather than a fresh fit.
    pub cached: bool,
    /// The machine's record-store generation the model was fitted at.
    pub generation: u64,
}

/// One streamed response item.
#[derive(Debug)]
#[non_exhaustive]
pub enum Response {
    /// A machine spec was registered.
    Registered {
        /// The machine registered.
        machine: MachineId,
    },
    /// One per-machine ingestion batch landed.
    Ingested {
        /// The machine the batch belongs to.
        machine: MachineId,
        /// Records appended.
        records: usize,
        /// The machine's new generation.
        generation: u64,
    },
    /// A model is ready (fitted or cache-served).
    Model(ModelReport),
    /// One benchmark's CPI stack (streamed after [`Response::Model`]).
    Stack {
        /// Benchmark–input name.
        benchmark: String,
        /// The model-estimated stack.
        stack: crate::stack::CpiStack,
    },
    /// A whole fitted group (the `Workbench` path).
    Group(Box<FittedGroup>),
    /// One benchmark's measured-vs-predicted CPI.
    Prediction {
        /// Benchmark–input name.
        benchmark: String,
        /// Measured CPI.
        measured: f64,
        /// Model-predicted CPI.
        predicted: f64,
    },
    /// CPI-delta stacks between two machines.
    Delta(DeltaStacks),
    /// A streaming refit was served; `mode` says what it cost.
    Refit {
        /// The served model (as [`Response::Model`] would report it).
        report: ModelReport,
        /// How the refit was served: cached, incremental, or full.
        mode: RefitMode,
    },
    /// A sweep's record-collection phase finished ([`Request::SweepCollect`]).
    SweepReady {
        /// Distinct configs that had to be simulated (0 when warm).
        configs: usize,
        /// Benchmark traces simulated (`configs × workloads`).
        runs: usize,
    },
    /// One variant's sweep result, streamed in grid-expansion order.
    SweepVariant(Box<SweepVariantResult>),
    /// The ranked sweep outcome (after every [`Response::SweepVariant`]).
    SweepSummary(Box<SweepSummary>),
    /// Service counters snapshot.
    Stats(ServiceStats),
    /// The request failed.
    Error(ServiceError),
}

/// The per-request response channel: iterate until it closes. The stream
/// ends when every worker holding the request's reply handle has finished.
#[derive(Debug)]
pub struct ResponseStream {
    rx: mpsc::Receiver<Response>,
}

impl Iterator for ResponseStream {
    type Item = Response;

    fn next(&mut self) -> Option<Response> {
        self.rx.recv().ok()
    }
}

impl ResponseStream {
    /// Drains the stream, returning every response — or the first error.
    ///
    /// # Errors
    ///
    /// The first [`Response::Error`] in the stream.
    pub fn finish(self) -> Result<Vec<Response>, ServiceError> {
        let mut out = Vec::new();
        for response in self {
            match response {
                Response::Error(e) => return Err(e),
                other => out.push(other),
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// The model cache
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheKey {
    machine: MachineId,
    suite: Option<Suite>,
    options: u64,
}

#[derive(Debug)]
struct CacheEntry {
    tenant: TenantId,
    key: CacheKey,
    generation: u64,
    last_used: u64,
    model: Arc<InferredModel>,
}

/// Cache hit/miss accounting, exposed through [`ServiceStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing servable.
    pub misses: u64,
    /// Entries evicted because the cache was full (LRU order).
    pub evictions: u64,
    /// Entries dropped because their machine's records changed
    /// (generation mismatch) or its spec was replaced.
    pub invalidations: u64,
    /// Models inserted into the cache — after a fresh fit, or promoted
    /// from the on-disk snapshot store on a warm load.
    pub inserts: u64,
    /// Lookups served from the on-disk snapshot store
    /// ([`persist::SnapshotStore`]) instead of a regression — these count
    /// as `hits`, not `misses`: the caller got a model without a fit.
    pub warm_loads: u64,
    /// Streaming refits that ran the full multi-start fan-out — the first
    /// fit of a stream, the periodic re-anchor, and every drift-guard
    /// fallback ([`Request::Refit`]).
    pub full_refits: u64,
    /// Streaming refits served by the warm-start polish
    /// ([`InferredModel::refit`]) — the steady-state path whose cost the
    /// bench's streaming section measures against `full_refits`.
    pub incremental_refits: u64,
    /// Objective evaluations spent by every regression this tenant paid
    /// for — full fan-outs and incremental polishes alike (see
    /// [`crate::fit::FitProfile`]). With `fit_wall_us` this turns "the
    /// fit is slow" into *which* fits burned *how many* evaluations.
    pub fit_evals: u64,
    /// Wall-clock those regressions took, µs (summed; divide by the
    /// service's `fits` counter for a mean).
    pub fit_wall_us: u64,
}

impl CacheStats {
    /// Adds another tally into this one, field by field — the single
    /// place that enumerates every counter, so per-tenant stats can
    /// never silently drop a future field from the aggregate.
    pub fn merge(&mut self, other: &CacheStats) {
        let CacheStats {
            hits,
            misses,
            evictions,
            invalidations,
            inserts,
            warm_loads,
            full_refits,
            incremental_refits,
            fit_evals,
            fit_wall_us,
        } = other;
        self.hits += hits;
        self.misses += misses;
        self.evictions += evictions;
        self.invalidations += invalidations;
        self.inserts += inserts;
        self.warm_loads += warm_loads;
        self.full_refits += full_refits;
        self.incremental_refits += incremental_refits;
        self.fit_evals += fit_evals;
        self.fit_wall_us += fit_wall_us;
    }
}

/// A tenant-partitioned LRU cache of fitted models keyed by
/// `(tenant, machine, suite, FitOptions fingerprint)`, with
/// generation-based invalidation: every entry remembers the record-store
/// generation it was fitted at, and a lookup only hits while the
/// machine's generation still matches — ingesting a new counter batch
/// silently retires every stale model.
///
/// The capacity is a **per-tenant quota**, not a shared pool: inserting
/// beyond it evicts the inserting tenant's own least-recently-used entry,
/// so one tenant flooding the cache can never push out another tenant's
/// models. Accounting ([`CacheStats`]) is kept per tenant too; every
/// counter mutation happens in the same call as the map mutation it
/// describes, so the stats are never momentarily inconsistent with the
/// entries (the old `insert`-then-adjust `promote_warm` could double-count
/// a hit when it raced a fresher insert after a generation bump).
///
/// # Examples
///
/// ```
/// use memodel::service::ModelCache;
/// let cache = ModelCache::new(8);
/// assert_eq!(cache.capacity(), 8);
/// assert!(cache.is_empty());
/// ```
#[derive(Debug)]
pub struct ModelCache {
    /// Per-tenant entry quota.
    capacity: usize,
    tick: u64,
    entries: Vec<CacheEntry>,
    /// Per-tenant accounting, insertion-ordered for deterministic
    /// aggregation.
    stats: Vec<(TenantId, CacheStats)>,
}

impl ModelCache {
    /// An empty cache holding at most `capacity` models **per tenant**
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            tick: 0,
            entries: Vec::new(),
            stats: Vec::new(),
        }
    }

    /// Maximum number of cached models per tenant.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently cached models, all tenants.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Currently cached models belonging to one tenant.
    pub fn len_for(&self, tenant: &TenantId) -> usize {
        self.entries.iter().filter(|e| &e.tenant == tenant).count()
    }

    /// Whether the cache holds no models.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Aggregate accounting counters across every tenant.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for (_, s) in &self.stats {
            total.merge(s);
        }
        total
    }

    /// One tenant's accounting counters.
    pub fn stats_for(&self, tenant: &TenantId) -> CacheStats {
        self.stats
            .iter()
            .find(|(t, _)| t == tenant)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    fn stats_mut(&mut self, tenant: &TenantId) -> &mut CacheStats {
        if let Some(i) = self.stats.iter().position(|(t, _)| t == tenant) {
            return &mut self.stats[i].1;
        }
        self.stats.push((tenant.clone(), CacheStats::default()));
        &mut self.stats.last_mut().expect("just pushed").1
    }

    /// Looks up `tenant`'s model for `key` fitted at `generation`. A hit
    /// marks the entry most-recently-used; a generation mismatch drops
    /// the stale entry (counted as an invalidation *and* a miss). Another
    /// tenant's entry for the same key is invisible here.
    pub fn lookup(
        &mut self,
        tenant: &TenantId,
        key: &ModelKey,
        generation: u64,
    ) -> Option<Arc<InferredModel>> {
        let cache_key = key.cache_key();
        let Some(i) = self
            .entries
            .iter()
            .position(|e| &e.tenant == tenant && e.key == cache_key)
        else {
            self.stats_mut(tenant).misses += 1;
            return None;
        };
        if self.entries[i].generation != generation {
            self.entries.remove(i);
            let stats = self.stats_mut(tenant);
            stats.invalidations += 1;
            stats.misses += 1;
            return None;
        }
        self.tick += 1;
        self.entries[i].last_used = self.tick;
        self.stats_mut(tenant).hits += 1;
        Some(self.entries[i].model.clone())
    }

    /// Peeks whether a servable entry exists for `tenant`, without
    /// touching LRU order or the counters.
    pub fn contains(&self, tenant: &TenantId, key: &ModelKey, generation: u64) -> bool {
        self.peek(tenant, key, generation).is_some()
    }

    /// A counter-free read of `tenant`'s servable model for `key`: no
    /// LRU touch, no hit/miss accounting. The cluster replication path
    /// re-encodes cached models through here so replication traffic is
    /// invisible in the stats lines golden transcripts pin.
    pub fn peek(
        &self,
        tenant: &TenantId,
        key: &ModelKey,
        generation: u64,
    ) -> Option<Arc<InferredModel>> {
        let cache_key = key.cache_key();
        self.entries
            .iter()
            .find(|e| &e.tenant == tenant && e.key == cache_key && e.generation == generation)
            .map(|e| Arc::clone(&e.model))
    }

    /// The one mutation path behind [`ModelCache::insert`] and
    /// [`ModelCache::promote_warm`]: stores (or refreshes) an entry and
    /// updates the counters *in the same call*, returning whether the
    /// model was actually stored. A stale insert — `generation` older
    /// than what the map already holds for the key — is discarded and
    /// counts nothing (the old code still counted an insert for it).
    fn store(
        &mut self,
        tenant: &TenantId,
        cache_key: CacheKey,
        generation: u64,
        model: Arc<InferredModel>,
    ) -> bool {
        self.tick += 1;
        if let Some(entry) = self
            .entries
            .iter_mut()
            .find(|e| &e.tenant == tenant && e.key == cache_key)
        {
            // A pinned/delta fit working from an older snapshot can finish
            // after a fresher fit of the same key: keep the newer model,
            // or the next lookup would invalidate and re-run the
            // regression for nothing.
            if generation < entry.generation {
                return false;
            }
            entry.generation = generation;
            entry.last_used = self.tick;
            entry.model = model;
        } else {
            if self.len_for(tenant) >= self.capacity {
                let lru = self
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| &e.tenant == tenant)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(i, _)| i)
                    .expect("the tenant holds entries when over quota");
                self.entries.remove(lru);
                self.stats_mut(tenant).evictions += 1;
            }
            let tick = self.tick;
            self.entries.push(CacheEntry {
                tenant: tenant.clone(),
                key: cache_key,
                generation,
                last_used: tick,
                model,
            });
        }
        self.stats_mut(tenant).inserts += 1;
        true
    }

    /// Inserts (or replaces) `tenant`'s model for `key` at `generation`,
    /// evicting that tenant's least-recently-used entry when its quota is
    /// full. Other tenants' entries are never touched.
    pub fn insert(
        &mut self,
        tenant: &TenantId,
        key: &ModelKey,
        generation: u64,
        model: Arc<InferredModel>,
    ) {
        self.store(tenant, key.cache_key(), generation, model);
    }

    /// Promotes a model restored from the on-disk snapshot store into the
    /// cache. The caller's [`ModelCache::lookup`] just counted a miss, but
    /// the request was served without a regression after all — so in one
    /// atomic mutation the entry is stored and the miss reclassified as a
    /// hit, tallied under [`CacheStats::warm_loads`]. `hits + misses`
    /// still equals total lookups, and the counters can never be observed
    /// between the store and the reclassification.
    pub fn promote_warm(
        &mut self,
        tenant: &TenantId,
        key: &ModelKey,
        generation: u64,
        model: Arc<InferredModel>,
    ) {
        self.store(tenant, key.cache_key(), generation, model);
        let stats = self.stats_mut(tenant);
        // Saturating: a caller that skipped the lookup must not wrap the
        // counter (the service always looks up first).
        stats.misses = stats.misses.saturating_sub(1);
        stats.hits += 1;
        stats.warm_loads += 1;
    }

    /// Drops every entry `tenant` holds for `machine` (used when its spec
    /// is replaced).
    fn invalidate_machine(&mut self, tenant: &TenantId, machine: MachineId) {
        let before = self.entries.len();
        self.entries
            .retain(|e| &e.tenant != tenant || e.key.machine != machine);
        self.stats_mut(tenant).invalidations += (before - self.entries.len()) as u64;
    }
}

// ---------------------------------------------------------------------------
// Service state
// ---------------------------------------------------------------------------

/// Service counters, snapshot via [`Request::Stats`] /
/// [`CpiClient::stats`] (scoped to the calling client's tenant) or
/// returned aggregated across every tenant by [`CpiService::shutdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceStats {
    /// Tasks processed by the worker pool (requests may split into
    /// several tasks, e.g. multi-machine ingestion).
    pub requests: u64,
    /// Nonlinear regressions actually run (cache misses that fitted).
    pub fits: u64,
    /// Counter records ingested over the service's lifetime.
    pub ingested_records: u64,
    /// Worker shards serving the queue (deployment-wide).
    pub workers: usize,
    /// Model-cache accounting.
    pub cache: CacheStats,
    /// Tenants the service has seen traffic from (deployment-wide).
    pub tenants: usize,
}

#[derive(Debug, Default)]
struct MachineState {
    spec: Option<MachineSpec>,
    /// Ingested batches in arrival order. Each batch is an `Arc` so a fit
    /// can snapshot the store under the lock in O(batches) pointer clones
    /// and do all record filtering/copying *outside* it.
    batches: Vec<Arc<Vec<RunRecord>>>,
    generation: u64,
    /// Per-(suite, options) streaming baselines: the last full-fit anchor
    /// each [`Request::Refit`] key warm-starts from and drift-checks
    /// against. Invisible to the plain fitting path.
    baselines: Vec<(BaselineKey, RefitBaseline)>,
}

impl MachineState {
    fn baseline(&self, key: &BaselineKey) -> Option<&RefitBaseline> {
        self.baselines
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, b)| b)
    }

    fn set_baseline(&mut self, key: BaselineKey, baseline: RefitBaseline) {
        if let Some(i) = self.baselines.iter().position(|(k, _)| *k == key) {
            self.baselines[i].1 = baseline;
        } else {
            self.baselines.push((key, baseline));
        }
    }
}

/// Identifies one streaming baseline within a machine: the suite group and
/// the fit-options fingerprint (same scoping as the model cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BaselineKey {
    suite: Option<Suite>,
    options: u64,
}

/// The anchor a streaming key's incremental refits polish from: the last
/// full fit's parameters, its per-record objective (the drift bound), the
/// workload's identity digest, and how many incremental refits have run
/// since the anchor was set.
#[derive(Debug, Clone)]
struct RefitBaseline {
    params: crate::params::ModelParams,
    interval_cap: f64,
    /// The anchor full fit's objective divided by its record count — the
    /// scale-free quantity the drift guard compares against.
    full_norm_objective: f64,
    /// Digest of the distinct benchmark names the anchor trained on; a
    /// change means the workload itself shifted and the basin may have
    /// moved, so the guard forces a full refit.
    workload_digest: u64,
    since_full: u64,
}

/// One tenant's private slice of the service: its machine namespace and
/// its task counters. Nothing here is reachable from another tenant's
/// requests.
#[derive(Debug, Default)]
struct TenantState {
    /// Insertion-ordered so enumeration is deterministic.
    machines: Vec<(MachineId, MachineState)>,
    requests: u64,
    fits: u64,
    ingested_records: u64,
}

impl TenantState {
    fn machine_mut(&mut self, machine: MachineId) -> &mut MachineState {
        if let Some(i) = self.machines.iter().position(|(id, _)| *id == machine) {
            return &mut self.machines[i].1;
        }
        self.machines.push((machine, MachineState::default()));
        &mut self.machines.last_mut().expect("just pushed").1
    }

    fn machine(&self, machine: MachineId) -> Option<&MachineState> {
        self.machines
            .iter()
            .find(|(id, _)| *id == machine)
            .map(|(_, s)| s)
    }
}

#[derive(Debug)]
struct Inner {
    /// Per-tenant state, insertion-ordered.
    tenants: Vec<(TenantId, TenantState)>,
    cache: ModelCache,
    /// The durable model store root, when the service was started with a
    /// state dir (named tenants persist under per-tenant subdirectories
    /// of it). Workers clone the (cheap) handle out of the lock and do
    /// every file read/write outside it.
    persist: Option<SnapshotStore>,
    /// Deployment-wide cap on per-regression thread fan-out.
    fit_threads: Option<usize>,
    /// Streaming refit policy (drift guard + budgets), deployment-wide.
    refit: RefitPolicy,
    workers: usize,
}

impl Inner {
    fn tenant_mut(&mut self, tenant: &TenantId) -> &mut TenantState {
        if let Some(i) = self.tenants.iter().position(|(t, _)| t == tenant) {
            return &mut self.tenants[i].1;
        }
        self.tenants.push((tenant.clone(), TenantState::default()));
        &mut self.tenants.last_mut().expect("just pushed").1
    }

    fn tenant(&self, tenant: &TenantId) -> Option<&TenantState> {
        self.tenants
            .iter()
            .find(|(t, _)| t == tenant)
            .map(|(_, s)| s)
    }

    /// One tenant's view: its own task counters and cache accounting,
    /// plus the deployment-wide worker and tenant counts.
    fn stats_for(&self, tenant: &TenantId) -> ServiceStats {
        let state = self.tenant(tenant);
        ServiceStats {
            requests: state.map_or(0, |s| s.requests),
            fits: state.map_or(0, |s| s.fits),
            ingested_records: state.map_or(0, |s| s.ingested_records),
            workers: self.workers,
            cache: self.cache.stats_for(tenant),
            tenants: self.tenants.len(),
        }
    }

    /// The aggregate across every tenant (what a single-tenant service
    /// reported before tenancy existed).
    fn stats(&self) -> ServiceStats {
        let mut total = ServiceStats {
            workers: self.workers,
            tenants: self.tenants.len(),
            cache: self.cache.stats(),
            ..ServiceStats::default()
        };
        for (_, state) in &self.tenants {
            // Destructured so a future per-tenant counter cannot be
            // silently dropped from the aggregate.
            let TenantState {
                machines: _,
                requests,
                fits,
                ingested_records,
            } = state;
            total.requests += requests;
            total.fits += fits;
            total.ingested_records += ingested_records;
        }
        total
    }
}

/// Locks the state, recovering from a poisoned mutex (a panicking fit on
/// another worker must not wedge the whole service).
fn lock(inner: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    inner
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// Configuration, service, client
// ---------------------------------------------------------------------------

/// Configuration for [`CpiService::start`]. Construct via
/// [`ServiceConfig::new`] and refine with the `with_*` setters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Worker shards (machines are hashed across them).
    pub workers: usize,
    /// Maximum models held by the [`ModelCache`].
    pub cache_capacity: usize,
    /// When set, fitted models persist to a [`persist::SnapshotStore`]
    /// under this directory and are restored lazily on cache misses — a
    /// restarted service warms up without refitting (see [`persist`]).
    pub state_dir: Option<std::path::PathBuf>,
    /// When set, overrides every fit request's
    /// [`FitOptions::threads`] budget on the worker — the deployment's
    /// cap on regression fan-out. Total regression threads are bounded by
    /// `workers × fit_threads` (each shard fits one model at a time), so
    /// a service with many shards typically wants a small per-fit budget
    /// and vice versa. Scheduling only: fitted bits never depend on it,
    /// and it is invisible to cache keys and persisted snapshots.
    pub fit_threads: Option<usize>,
    /// Streaming refit policy: warm-start budget, drift bound and full-
    /// refit cadence for [`Request::Refit`].
    pub refit: RefitPolicy,
}

/// Policy governing streaming refits ([`Request::Refit`]): when the
/// warm-start polish may serve a batch and when the full multi-start
/// fan-out must re-anchor the baseline.
///
/// Like [`FitOptions`] it is `#[non_exhaustive]`: construct via
/// [`Default`] and refine with the `with_*` setters. Unlike `FitOptions`,
/// none of these knobs enter cache keys or persisted snapshots — they
/// steer *scheduling* between two deterministic fit paths, and the
/// stream-close reconciliation (a forced full refit) erases any
/// policy-dependent parameter history.
///
/// # Examples
///
/// ```
/// use memodel::service::RefitPolicy;
///
/// let policy = RefitPolicy::default().with_warm_evals(500).with_full_every(4);
/// assert_eq!(policy.warm_evals, 500);
/// assert_eq!(policy.full_every, 4);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RefitPolicy {
    /// Objective-evaluation budget of one incremental polish
    /// ([`InferredModel::refit`]). The full fan-out spends
    /// `(1 + extra_starts) × max_evals`; keeping this a small fraction of
    /// that is what makes steady-state streaming cheap.
    pub warm_evals: usize,
    /// Re-anchor with a full fit after this many consecutive incremental
    /// refits (minimum 1 = always full). Bounds how far the polished
    /// parameters can random-walk from a globally-optimal anchor.
    pub full_every: u64,
    /// Drift bound: an incremental refit is accepted only while its
    /// per-record objective stays within this factor of the baseline full
    /// fit's. Above it, the workload is assumed to have drifted out of
    /// the anchor's basin and the full fan-out runs instead.
    pub drift_factor: f64,
}

impl Default for RefitPolicy {
    fn default() -> Self {
        Self {
            warm_evals: 2_000,
            full_every: 16,
            drift_factor: 1.5,
        }
    }
}

impl RefitPolicy {
    /// The default policy: 2 000-evaluation polishes, a full re-anchor
    /// every 16 batches, drift bound 1.5×.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the incremental polish's evaluation budget (minimum 1).
    pub fn with_warm_evals(mut self, evals: usize) -> Self {
        self.warm_evals = evals.max(1);
        self
    }

    /// Sets the full-refit cadence (minimum 1 = every refit is full).
    pub fn with_full_every(mut self, every: u64) -> Self {
        self.full_every = every.max(1);
        self
    }

    /// Sets the drift bound (minimum 1.0).
    pub fn with_drift_factor(mut self, factor: f64) -> Self {
        self.drift_factor = factor.max(1.0);
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .clamp(1, 16),
            cache_capacity: 32,
            state_dir: None,
            fit_threads: None,
            refit: RefitPolicy::default(),
        }
    }
}

impl ServiceConfig {
    /// The default configuration: one worker per hardware thread (capped
    /// at 16), a 32-model cache, no persistence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-shard count (minimum 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the model-cache capacity (minimum 1).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Persists fitted models under `dir` and warm-loads them on cache
    /// misses (created if missing when the service starts).
    pub fn with_state_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.state_dir = Some(dir.into());
        self
    }

    /// Caps the multi-start thread budget of every regression run by this
    /// service's workers (minimum 1), overriding whatever the request's
    /// [`FitOptions::threads`] says. See [`ServiceConfig::fit_threads`].
    pub fn with_fit_threads(mut self, threads: usize) -> Self {
        self.fit_threads = Some(threads.max(1));
        self
    }

    /// Sets the streaming refit policy (see [`RefitPolicy`]).
    pub fn with_refit_policy(mut self, policy: RefitPolicy) -> Self {
        self.refit = policy;
        self
    }
}

enum WorkerMsg {
    Task {
        tenant: TenantId,
        task: Task,
        reply: mpsc::Sender<Response>,
    },
    Shutdown,
}

/// The worker-side unit of work: requests are routed (and multi-machine
/// ingestion split) into tasks before they reach a shard.
enum Task {
    Register(Box<MachineSpec>),
    Ingest {
        machine: MachineId,
        records: Vec<RunRecord>,
    },
    StreamBatch {
        machine: MachineId,
        records: Vec<RunRecord>,
    },
    Refit {
        key: ModelKey,
        force_full: bool,
    },
    Fit(ModelKey),
    Stacks(ModelKey),
    Group(ModelKey),
    Predictions(ModelKey),
    Delta {
        old: MachineId,
        new: MachineId,
        suite: Suite,
        options: FitOptions,
    },
    SweepCollect(Box<SweepSpec>),
    Sweep(Box<SweepSpec>),
    ImportRecords {
        spec: Box<MachineSpec>,
        records: Vec<RunRecord>,
    },
}

struct Router {
    shards: Vec<mpsc::Sender<WorkerMsg>>,
    inner: Arc<Mutex<Inner>>,
    /// Set once by shutdown so requests answered inline (stats) honour
    /// the `Stopped` contract like queue-routed ones do.
    stopped: std::sync::atomic::AtomicBool,
}

impl Router {
    /// Shard for machine-scoped traffic (registration, ingestion): all
    /// store mutations for one tenant's machine are serialized on one
    /// worker. The tenant is part of the hash, so two tenants' same-named
    /// machines fan out instead of contending for one shard.
    fn shard_of(&self, tenant: &TenantId, machine: MachineId) -> usize {
        let mut h = DefaultHasher::new();
        tenant.name().hash(&mut h);
        machine.name().hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Shard for model-scoped traffic (fit/stacks/group/predictions):
    /// hashed by the full tenant-scoped cache key, so repeat requests for
    /// one key are serialized (the second is a cache hit, never a
    /// duplicate regression) while *different* keys — even two suites of
    /// the same machine, or two tenants' models of one machine — fan out
    /// across workers.
    fn shard_of_key(&self, tenant: &TenantId, key: &ModelKey) -> usize {
        let mut h = DefaultHasher::new();
        tenant.name().hash(&mut h);
        key.machine.name().hash(&mut h);
        key.suite.map(Suite::name).hash(&mut h);
        key.options.fingerprint().hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }
}

/// The long-lived serving loop: a sharded worker pool over one shared
/// record store and model cache. See the [module docs](self).
pub struct CpiService {
    router: Arc<Router>,
    handles: Vec<JoinHandle<()>>,
}

impl fmt::Debug for CpiService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CpiService")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl CpiService {
    /// Spawns the worker pool and returns the running service.
    ///
    /// # Panics
    ///
    /// Panics if the configured state directory cannot be created — a
    /// deployment error best surfaced immediately. Use
    /// [`CpiService::try_start`] to handle it as a value.
    pub fn start(config: ServiceConfig) -> Self {
        Self::try_start(config).expect("opening the service state dir")
    }

    /// Spawns the worker pool, surfacing state-directory failures instead
    /// of panicking.
    ///
    /// # Errors
    ///
    /// [`persist::PersistError::Io`] when `config.state_dir` is set but
    /// the directory cannot be created.
    pub fn try_start(config: ServiceConfig) -> Result<Self, persist::PersistError> {
        let workers = config.workers.max(1);
        let persist = config
            .state_dir
            .as_ref()
            .map(SnapshotStore::open)
            .transpose()?;
        let inner = Arc::new(Mutex::new(Inner {
            tenants: Vec::new(),
            cache: ModelCache::new(config.cache_capacity),
            persist,
            fit_threads: config.fit_threads,
            refit: config.refit.clone(),
            workers,
        }));
        let mut shards = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = mpsc::channel::<WorkerMsg>();
            shards.push(tx);
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("cpi-shard-{i}"))
                    .spawn(move || worker_loop(rx, &inner))
                    .expect("spawning a service worker"),
            );
        }
        Ok(Self {
            router: Arc::new(Router {
                shards,
                inner,
                stopped: std::sync::atomic::AtomicBool::new(false),
            }),
            handles,
        })
    }

    /// A new client handle bound to the implicit [`TenantId::local`]
    /// tenant. Clients are cheap, cloneable, and may be moved to other
    /// threads; every client shares this service's warm state (within its
    /// tenant's namespace).
    pub fn client(&self) -> CpiClient {
        self.client_for(TenantId::local())
    }

    /// A client handle bound to `tenant`: every request it submits
    /// operates on that tenant's machine namespace, cache quota and
    /// persisted state, and [`CpiClient::stats`] reports that tenant's
    /// counters.
    pub fn client_for(&self, tenant: TenantId) -> CpiClient {
        CpiClient {
            router: Arc::clone(&self.router),
            tenant,
        }
    }

    /// Stops the workers (after they drain their queues) and returns the
    /// final counters. Outstanding clients observe [`ServiceError::Stopped`]
    /// on their next submission.
    pub fn shutdown(mut self) -> ServiceStats {
        self.stop();
        lock(&self.router.inner).stats()
    }

    fn stop(&mut self) {
        self.router
            .stopped
            .store(true, std::sync::atomic::Ordering::SeqCst);
        for shard in &self.router.shards {
            // A send can only fail if the worker already exited.
            let _ = shard.send(WorkerMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for CpiService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A handle for submitting [`Request`]s to a [`CpiService`], bound to one
/// [`TenantId`]. Obtained from [`CpiService::client`] (local tenant) or
/// [`CpiService::client_for`]; cloneable and thread-safe.
#[derive(Clone)]
pub struct CpiClient {
    router: Arc<Router>,
    tenant: TenantId,
}

impl fmt::Debug for CpiClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CpiClient")
            .field("shards", &self.router.shards.len())
            .field("tenant", &self.tenant.name())
            .finish()
    }
}

impl CpiClient {
    /// The tenant every request from this handle is scoped to.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// A sibling handle on the same service bound to a different tenant
    /// (the protocol front rebinds a session's client on a successful
    /// `hello` handshake).
    pub fn for_tenant(&self, tenant: TenantId) -> CpiClient {
        CpiClient {
            router: Arc::clone(&self.router),
            tenant,
        }
    }

    /// Submits one request; responses stream back on the returned channel.
    ///
    /// Ordering: store mutations for one machine (register, ingest) are
    /// FIFO on its shard, and model requests for one key are FIFO on the
    /// key's shard — but an ingest and a fit may land on *different*
    /// shards, so drain a mutation's stream before submitting a request
    /// that depends on it (every convenience method on this client does).
    pub fn submit(&self, request: Request) -> ResponseStream {
        let (tx, rx) = mpsc::channel();
        let stream = ResponseStream { rx };
        if matches!(request, Request::Stats) {
            // Stats is a cheap monitoring read of the shared state —
            // answering it here keeps it from queueing behind a
            // multi-second regression on some worker.
            if self
                .router
                .stopped
                .load(std::sync::atomic::Ordering::SeqCst)
            {
                let _ = tx.send(Response::Error(ServiceError::Stopped));
                return stream;
            }
            let mut guard = lock(&self.router.inner);
            guard.tenant_mut(&self.tenant).requests += 1;
            let stats = guard.stats_for(&self.tenant);
            drop(guard);
            let _ = tx.send(Response::Stats(stats));
            return stream;
        }
        let tasks: Vec<(usize, Task)> = match self.route(request) {
            Ok(tasks) => tasks,
            Err(e) => {
                let _ = tx.send(Response::Error(e));
                return stream;
            }
        };
        self.dispatch(tasks, &tx);
        stream
    }

    fn dispatch(&self, tasks: Vec<(usize, Task)>, tx: &mpsc::Sender<Response>) {
        for (shard, task) in tasks {
            if self.router.shards[shard]
                .send(WorkerMsg::Task {
                    tenant: self.tenant.clone(),
                    task,
                    reply: tx.clone(),
                })
                .is_err()
            {
                let _ = tx.send(Response::Error(ServiceError::Stopped));
            }
        }
    }

    /// A [`Request::Group`] pinned to an explicit shard (modulo the pool
    /// size), bypassing hash placement. Pinning forfeits same-key
    /// serialization — two concurrent requests for one key pinned to
    /// different shards can fit twice — so use it only for one-shot
    /// fan-out over *distinct* keys (as `Workbench::fit` and the bench
    /// `Campaign` do, round-robin, so no worker sits idle on a hash
    /// collision).
    pub fn submit_group_at(&self, shard: usize, key: ModelKey) -> ResponseStream {
        let (tx, rx) = mpsc::channel();
        let stream = ResponseStream { rx };
        let shard = shard % self.router.shards.len();
        self.dispatch(vec![(shard, Task::Group(key))], &tx);
        stream
    }

    /// Splits a request into per-shard tasks. CSV parsing happens here, on
    /// the client's thread, so a malformed batch never occupies a worker.
    fn route(&self, request: Request) -> Result<Vec<(usize, Task)>, ServiceError> {
        let r = &self.router;
        let t = &self.tenant;
        Ok(match request {
            Request::Register(spec) => vec![(r.shard_of(t, spec.id()), Task::Register(spec))],
            Request::IngestRecords(records) => {
                // Stable per-machine partition: each chunk routes to its
                // machine's shard, keeping ingest→fit FIFO per machine.
                let mut chunks: Vec<(MachineId, Vec<RunRecord>)> = Vec::new();
                for record in records {
                    let machine = record.machine();
                    match chunks.iter_mut().find(|(id, _)| *id == machine) {
                        Some((_, chunk)) => chunk.push(record),
                        None => chunks.push((machine, vec![record])),
                    }
                }
                chunks
                    .into_iter()
                    .map(|(machine, records)| {
                        (r.shard_of(t, machine), Task::Ingest { machine, records })
                    })
                    .collect()
            }
            Request::IngestCsv { text, origin } => {
                let records = pmu::csv::from_csv(&text)
                    .map_err(|error| ServiceError::Parse { origin, error })?;
                return self.route(Request::IngestRecords(records));
            }
            Request::StreamBatch {
                machine,
                mut records,
            } => {
                // A live source is bound to one machine; records tagged
                // for another are dropped here, never silently upserted
                // into the wrong store.
                records.retain(|r| r.machine() == machine);
                vec![(
                    r.shard_of(t, machine),
                    Task::StreamBatch { machine, records },
                )]
            }
            Request::Refit { key, force_full } => {
                vec![(r.shard_of_key(t, &key), Task::Refit { key, force_full })]
            }
            Request::Fit(key) => vec![(r.shard_of_key(t, &key), Task::Fit(key))],
            Request::Stacks(key) => vec![(r.shard_of_key(t, &key), Task::Stacks(key))],
            Request::Group(key) => vec![(r.shard_of_key(t, &key), Task::Group(key))],
            Request::Predictions(key) => {
                vec![(r.shard_of_key(t, &key), Task::Predictions(key))]
            }
            Request::Delta {
                old,
                new,
                suite,
                options,
            } => vec![(
                r.shard_of_key(t, &ModelKey::new(old, Some(suite), options.clone())),
                Task::Delta {
                    old,
                    new,
                    suite,
                    options,
                },
            )],
            Request::SweepCollect(spec) => {
                // The base's *store* shard: collection mutates every
                // variant's store, and serializing on one shard keeps two
                // overlapping sweeps from simulating the same config twice.
                vec![(r.shard_of(t, spec.base), Task::SweepCollect(spec))]
            }
            Request::Sweep(spec) => {
                let key = ModelKey::new(spec.base, Some(spec.suite), spec.options.clone());
                vec![(r.shard_of_key(t, &key), Task::Sweep(spec))]
            }
            Request::ImportRecords { spec, records } => vec![(
                r.shard_of(t, spec.id()),
                Task::ImportRecords { spec, records },
            )],
            // Answered inline by `submit` before routing.
            Request::Stats => Vec::new(),
        })
    }

    /// Registers (or replaces) a machine spec and waits for the ack.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] when the service is gone.
    pub fn register(&self, spec: MachineSpec) -> Result<MachineId, ServiceError> {
        for response in self.submit(Request::Register(Box::new(spec))) {
            match response {
                Response::Registered { machine } => return Ok(machine),
                Response::Error(e) => return Err(e),
                _ => {}
            }
        }
        Err(ServiceError::Stopped)
    }

    /// Ingests a record batch (machines may be mixed) and waits until every
    /// per-machine chunk has landed. Returns the total records ingested.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] when the service is gone.
    pub fn ingest(&self, records: Vec<RunRecord>) -> Result<usize, ServiceError> {
        let mut total = 0;
        for response in self.submit(Request::IngestRecords(records)) {
            match response {
                Response::Ingested { records, .. } => total += records,
                Response::Error(e) => return Err(e),
                _ => {}
            }
        }
        Ok(total)
    }

    /// Parses counters-CSV text and ingests it; `origin` names the source
    /// for error messages.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Parse`] (with `origin` and the offending line) when
    /// the text is malformed; [`ServiceError::Stopped`] when the service
    /// is gone.
    pub fn ingest_csv(&self, text: &str, origin: &str) -> Result<usize, ServiceError> {
        let mut total = 0;
        for response in self.submit(Request::IngestCsv {
            text: text.to_owned(),
            origin: origin.to_owned(),
        }) {
            match response {
                Response::Ingested { records, .. } => total += records,
                Response::Error(e) => return Err(e),
                _ => {}
            }
        }
        Ok(total)
    }

    /// Upserts one live counter batch into `machine`'s store (see
    /// [`Request::StreamBatch`]) and waits for the ack. Returns the
    /// records landed and the machine's new generation.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] when the service is gone.
    pub fn stream_batch(
        &self,
        machine: MachineId,
        records: Vec<RunRecord>,
    ) -> Result<(usize, u64), ServiceError> {
        for response in self.submit(Request::StreamBatch { machine, records }) {
            match response {
                Response::Ingested {
                    records,
                    generation,
                    ..
                } => return Ok((records, generation)),
                Response::Error(e) => return Err(e),
                _ => {}
            }
        }
        Err(ServiceError::Stopped)
    }

    /// Serves one model on the streaming path (see [`Request::Refit`]):
    /// cache hit, incremental warm-start polish, or full fan-out —
    /// whichever is cheapest and safe under the service's
    /// [`RefitPolicy`]. `force_full` forces the fan-out and re-anchors
    /// the baseline (the stream-close reconciliation).
    ///
    /// # Errors
    ///
    /// Any [`ServiceError`] the refit produced.
    pub fn refit(
        &self,
        key: ModelKey,
        force_full: bool,
    ) -> Result<(ModelReport, RefitMode), ServiceError> {
        for response in self.submit(Request::Refit { key, force_full }) {
            match response {
                Response::Refit { report, mode } => return Ok((report, mode)),
                Response::Error(e) => return Err(e),
                _ => {}
            }
        }
        Err(ServiceError::Stopped)
    }

    /// Fits (or fetches) one model.
    ///
    /// # Errors
    ///
    /// Any [`ServiceError`] the fit produced.
    pub fn fit(&self, key: ModelKey) -> Result<ModelReport, ServiceError> {
        for response in self.submit(Request::Fit(key)) {
            match response {
                Response::Model(report) => return Ok(report),
                Response::Error(e) => return Err(e),
                _ => {}
            }
        }
        Err(ServiceError::Stopped)
    }

    /// Fits (or fetches) one model and collects its streamed CPI stacks.
    ///
    /// # Errors
    ///
    /// Any [`ServiceError`] the fit produced.
    pub fn stacks(
        &self,
        key: ModelKey,
    ) -> Result<(ModelReport, Vec<(String, crate::stack::CpiStack)>), ServiceError> {
        let mut report = None;
        let mut stacks = Vec::new();
        for response in self.submit(Request::Stacks(key)) {
            match response {
                Response::Model(r) => report = Some(r),
                Response::Stack { benchmark, stack } => stacks.push((benchmark, stack)),
                Response::Error(e) => return Err(e),
                _ => {}
            }
        }
        report.map(|r| (r, stacks)).ok_or(ServiceError::Stopped)
    }

    /// Fits (or fetches) one model and returns the whole [`FittedGroup`].
    ///
    /// # Errors
    ///
    /// Any [`ServiceError`] the fit produced.
    pub fn group(&self, key: ModelKey) -> Result<FittedGroup, ServiceError> {
        for response in self.submit(Request::Group(key)) {
            match response {
                Response::Group(group) => return Ok(*group),
                Response::Error(e) => return Err(e),
                _ => {}
            }
        }
        Err(ServiceError::Stopped)
    }

    /// Fits (or fetches) one model and collects measured-vs-predicted CPI
    /// per benchmark.
    ///
    /// # Errors
    ///
    /// Any [`ServiceError`] the fit produced.
    pub fn predictions(
        &self,
        key: ModelKey,
    ) -> Result<(ModelReport, Vec<PredictionRow>), ServiceError> {
        let mut report = None;
        let mut predictions = Vec::new();
        for response in self.submit(Request::Predictions(key)) {
            match response {
                Response::Model(r) => report = Some(r),
                Response::Prediction {
                    benchmark,
                    measured,
                    predicted,
                } => predictions.push((benchmark, measured, predicted)),
                Response::Error(e) => return Err(e),
                _ => {}
            }
        }
        report
            .map(|r| (r, predictions))
            .ok_or(ServiceError::Stopped)
    }

    /// CPI-delta stacks explaining `new` vs `old` on one suite.
    ///
    /// # Errors
    ///
    /// Any [`ServiceError`] either fit produced.
    pub fn delta(
        &self,
        old: MachineId,
        new: MachineId,
        suite: Suite,
        options: FitOptions,
    ) -> Result<DeltaStacks, ServiceError> {
        // Warm both sides on their *home* shards first (concurrently, and
        // serialized with any other request for the same key), so the
        // combining task below is all cache hits — a raw
        // `Request::Delta` fits both sides on one worker instead.
        let warm_old = self.submit(Request::Fit(ModelKey::new(
            old,
            Some(suite),
            options.clone(),
        )));
        let warm_new = self.submit(Request::Fit(ModelKey::new(
            new,
            Some(suite),
            options.clone(),
        )));
        for stream in [warm_old, warm_new] {
            for response in stream {
                if let Response::Error(e) = response {
                    return Err(e);
                }
            }
        }
        for response in self.submit(Request::Delta {
            old,
            new,
            suite,
            options,
        }) {
            match response {
                Response::Delta(delta) => return Ok(delta),
                Response::Error(e) => return Err(e),
                _ => {}
            }
        }
        Err(ServiceError::Stopped)
    }

    /// Runs a design-space sweep end to end and returns the ranked
    /// summary: expand the grid, simulate only missing configs on the
    /// collect pool, warm every variant's model on its *home* shard
    /// (fanning the fits across the worker pool, each under the shared
    /// fit-thread budget), then combine — per-variant CPI, delta stacks
    /// vs. the base, and the Pareto front over (CPI,
    /// component-of-interest). A re-sweep of an already-swept grid
    /// simulates nothing and refits nothing: every variant serves from
    /// the model cache or the persisted snapshot store.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Sweep`] on a bad grid; any [`ServiceError`] a
    /// variant's fit produced; [`ServiceError::Stopped`] when the
    /// service is gone.
    pub fn sweep(&self, spec: SweepSpec) -> Result<SweepSummary, ServiceError> {
        let (simulated, stream) = self.sweep_begin(spec)?;
        let mut summary = None;
        for response in stream {
            match response {
                Response::SweepSummary(s) => summary = Some(*s),
                Response::Error(e) => return Err(e),
                _ => {}
            }
        }
        let mut summary = summary.ok_or(ServiceError::Stopped)?;
        // The combining task only counts what *it* simulated (nothing —
        // the collect phase below ran first); fold the real collection
        // cost back in.
        summary.simulated_configs += simulated.0;
        summary.simulated_runs += simulated.1;
        Ok(summary)
    }

    /// The streaming form of [`CpiClient::sweep`]: runs the collect
    /// phase, warms every variant key on its home shard, then submits
    /// [`Request::Sweep`] and hands back the live stream — one
    /// [`Response::SweepVariant`] per variant in grid-expansion order,
    /// then one [`Response::SweepSummary`]. Returns `(simulated configs,
    /// simulated runs)` from the collect phase alongside the stream (the
    /// streamed summary's own counters cover only the combining task,
    /// which collects nothing here).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Sweep`] on a bad grid; any error the collect or
    /// warming fits produced.
    pub fn sweep_begin(
        &self,
        spec: SweepSpec,
    ) -> Result<((usize, usize), ResponseStream), ServiceError> {
        let variants =
            sweep::expand_selected(&spec).map_err(|error| ServiceError::Sweep { error })?;
        let mut simulated = (0, 0);
        for response in self.submit(Request::SweepCollect(Box::new(spec.clone()))) {
            match response {
                Response::SweepReady { configs, runs } => simulated = (configs, runs),
                Response::Error(e) => return Err(e),
                _ => {}
            }
        }
        // Warm base + variants concurrently, each on its key's home
        // shard — the same trick `delta` uses, scaled to the grid: the
        // expensive regressions run in parallel across the pool, and the
        // combining task below then serves pure cache hits.
        let keys = std::iter::once(spec.base)
            .chain(variants.iter().map(|v| v.id).filter(|&id| id != spec.base));
        let warms: Vec<ResponseStream> = keys
            .map(|id| {
                self.submit(Request::Fit(ModelKey::new(
                    id,
                    Some(spec.suite),
                    spec.options.clone(),
                )))
            })
            .collect();
        for stream in warms {
            for response in stream {
                if let Response::Error(e) = response {
                    return Err(e);
                }
            }
        }
        Ok((simulated, self.submit(Request::Sweep(Box::new(spec)))))
    }

    /// Installs a replicated record store for one machine (see
    /// [`Request::ImportRecords`]) and waits for the ack. Returns the
    /// records installed (0 when the store already digest-matched) and
    /// the machine's generation.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] when the service is gone.
    pub fn import_records(
        &self,
        spec: MachineSpec,
        records: Vec<RunRecord>,
    ) -> Result<(usize, u64), ServiceError> {
        for response in self.submit(Request::ImportRecords {
            spec: Box::new(spec),
            records,
        }) {
            match response {
                Response::Ingested {
                    records,
                    generation,
                    ..
                } => return Ok((records, generation)),
                Response::Error(e) => return Err(e),
                _ => {}
            }
        }
        Err(ServiceError::Stopped)
    }

    /// Reads one machine's complete record store (every suite, batch
    /// order preserved) — the payload the [`cluster`] router ships when a
    /// two-machine request spans ring owners. Counter-free like
    /// [`CpiClient::export_snapshot`]: answered inline from the shared
    /// state without touching request or cache accounting.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] after shutdown;
    /// [`ServiceError::NotRegistered`] when the machine has no spec;
    /// [`ServiceError::NoRecords`] when it has no records at all.
    pub fn export_records(
        &self,
        machine: MachineId,
    ) -> Result<(crate::params::MicroarchParams, Vec<RunRecord>), ServiceError> {
        if self
            .router
            .stopped
            .load(std::sync::atomic::Ordering::SeqCst)
        {
            return Err(ServiceError::Stopped);
        }
        let guard = lock(&self.router.inner);
        let state = guard
            .tenant(&self.tenant)
            .and_then(|t| t.machine(machine))
            .ok_or(ServiceError::NotRegistered { machine })?;
        let arch = *state
            .spec
            .as_ref()
            .ok_or(ServiceError::NotRegistered { machine })?
            .arch();
        let records: Vec<RunRecord> = state
            .batches
            .iter()
            .flat_map(|b| b.iter())
            .cloned()
            .collect();
        if records.is_empty() {
            return Err(ServiceError::NoRecords {
                machine,
                suite: None,
            });
        }
        Ok((arch, records))
    }

    /// Snapshots the service counters.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] when the service is gone.
    pub fn stats(&self) -> Result<ServiceStats, ServiceError> {
        for response in self.submit(Request::Stats) {
            match response {
                Response::Stats(stats) => return Ok(stats),
                Response::Error(e) => return Err(e),
                _ => {}
            }
        }
        Err(ServiceError::Stopped)
    }

    /// Serializes this tenant's current servable model for `key` as
    /// [`persist`] snapshot bytes — the payload the [`cluster`]
    /// replication layer ships to ring successors.
    ///
    /// Deliberately **counter-free**: it answers inline from the shared
    /// state (like `stats`) but increments no request/fit counter and
    /// never touches the cache's LRU or hit/miss accounting, so
    /// replication traffic is invisible in the per-tenant stats lines
    /// golden transcripts pin. Resolution mirrors the read side of the
    /// fitting path: the in-memory cache at the current generation
    /// first (re-encoded against the live records digest), then the
    /// tenant's on-disk store. `Ok(None)` when no fitted model exists
    /// for the key yet.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] after shutdown;
    /// [`ServiceError::NotRegistered`] / [`ServiceError::NoRecords`]
    /// when the key has no spec or no training records to bind a
    /// snapshot's digest to.
    pub fn export_snapshot(&self, key: &ModelKey) -> Result<Option<Vec<u8>>, ServiceError> {
        if self
            .router
            .stopped
            .load(std::sync::atomic::Ordering::SeqCst)
        {
            return Err(ServiceError::Stopped);
        }
        let (arch, batches, store, cached) = {
            let guard = lock(&self.router.inner);
            let state = guard
                .tenant(&self.tenant)
                .and_then(|t| t.machine(key.machine))
                .ok_or(ServiceError::NotRegistered {
                    machine: key.machine,
                })?;
            let spec = state.spec.as_ref().ok_or(ServiceError::NotRegistered {
                machine: key.machine,
            })?;
            (
                *spec.arch(),
                state.batches.clone(),
                guard.persist.clone(),
                guard.cache.peek(&self.tenant, key, state.generation),
            )
        };
        let snapshot = RecordsSnapshot {
            batches,
            suite: key.suite,
        };
        let records = snapshot.to_vec();
        if records.is_empty() {
            return Err(ServiceError::NoRecords {
                machine: key.machine,
                suite: key.suite,
            });
        }
        let digest = persist::records_digest(&records);
        if let Some(model) = cached {
            return Ok(Some(persist::encode(&persist::ModelSnapshot {
                machine: key.machine,
                suite: key.suite,
                options_fingerprint: key.options.fingerprint(),
                records_digest: digest,
                records: records.len() as u32,
                arch,
                params: *model.params(),
                interval_cap: model.interval_cap(),
                objective: model.objective(),
            })));
        }
        // Not in memory: the node may still hold it on disk (warm-loaded
        // then evicted, or persisted before a restart).
        let store = store.and_then(|root| root.for_tenant(&self.tenant).ok());
        if let Some(store) = store {
            if let Ok(Some(snap)) =
                store.load(key.machine, key.suite, key.options.fingerprint(), digest)
            {
                if snap.arch == arch {
                    return Ok(Some(persist::encode(&snap)));
                }
            }
        }
        Ok(None)
    }

    /// Installs replicated snapshot bytes into this tenant's **on-disk**
    /// store — the receiving half of [`cluster`] replication. Counter-
    /// and cache-free by design: the replica only becomes servable when
    /// a later request's records digest, options fingerprint and arch
    /// match it exactly, at which point the normal warm-load path in the
    /// fitting code promotes it (counted as a `warm` hit with zero
    /// `fits` — exactly what failover asserts). A stale or foreign
    /// replica is inert, never wrong.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] after shutdown;
    /// [`ServiceError::Snapshot`] when the bytes do not decode as a
    /// valid snapshot, or the service runs without a state dir (nowhere
    /// durable to install to).
    pub fn import_snapshot(&self, bytes: &[u8]) -> Result<(), ServiceError> {
        if self
            .router
            .stopped
            .load(std::sync::atomic::Ordering::SeqCst)
        {
            return Err(ServiceError::Stopped);
        }
        let snap = persist::decode(bytes).map_err(|e| ServiceError::Snapshot {
            detail: e.to_string(),
        })?;
        let store = lock(&self.router.inner)
            .persist
            .clone()
            .ok_or_else(|| ServiceError::Snapshot {
                detail: "this node runs without a state dir".into(),
            })?
            .for_tenant(&self.tenant)
            .map_err(|e| ServiceError::Snapshot {
                detail: e.to_string(),
            })?;
        store.save(&snap).map_err(|e| ServiceError::Snapshot {
            detail: e.to_string(),
        })?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The worker loop — the one fitting code path
// ---------------------------------------------------------------------------

fn worker_loop(rx: mpsc::Receiver<WorkerMsg>, inner: &Mutex<Inner>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Shutdown => break,
            WorkerMsg::Task {
                tenant,
                task,
                reply,
            } => {
                // A panicking handler (a pathological record set blowing
                // up in the regression, say) must not kill the shard: the
                // whole key-space hashed here would then see `Stopped`
                // while the rest of the service kept working. Catch it,
                // report it in-band, keep serving. `lock()` recovers the
                // mutex if the panic poisoned it.
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_task(&tenant, task, &reply, inner)
                }));
                if let Err(payload) = caught {
                    let detail = panic_detail(&payload);
                    let _ = reply.send(Response::Error(ServiceError::Panicked { detail }));
                }
                // `reply` drops here; when the last clone goes, the
                // client-side stream ends.
            }
        }
    }
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

fn handle_task(
    tenant: &TenantId,
    task: Task,
    reply: &mpsc::Sender<Response>,
    inner: &Mutex<Inner>,
) {
    lock(inner).tenant_mut(tenant).requests += 1;
    // The client may have hung up mid-stream; sends failing is fine.
    let send = |response: Response| {
        let _ = reply.send(response);
    };
    match task {
        Task::Register(spec) => {
            let machine = spec.id();
            let mut guard = lock(inner);
            let replacing = {
                let state = guard.tenant_mut(tenant).machine_mut(machine);
                let replacing = state.spec.is_some();
                if replacing {
                    // New constants mean every cached model for this
                    // machine was fitted against the wrong arch.
                    state.generation += 1;
                }
                state.spec = Some(*spec);
                replacing
            };
            if replacing {
                guard.cache.invalidate_machine(tenant, machine);
            }
            drop(guard);
            send(Response::Registered { machine });
        }
        Task::Ingest { machine, records } => {
            let count = records.len();
            let batch = Arc::new(records);
            let mut guard = lock(inner);
            let state = guard.tenant_mut(tenant);
            state.ingested_records += count as u64;
            let machine_state = state.machine_mut(machine);
            machine_state.batches.push(batch);
            machine_state.generation += 1;
            let generation = machine_state.generation;
            drop(guard);
            send(Response::Ingested {
                machine,
                records: count,
                generation,
            });
        }
        Task::StreamBatch { machine, records } => {
            // Within-batch dedupe first: keep only the *last* record per
            // (benchmark, suite), so the final store never depends on how
            // the stream was chopped into batches — a batch carrying two
            // samples of one workload behaves exactly like two batches
            // carrying one each.
            let mut batch = records;
            let mut i = 0;
            while i < batch.len() {
                let superseded = batch[i + 1..].iter().any(|newer| {
                    newer.suite() == batch[i].suite() && newer.benchmark() == batch[i].benchmark()
                });
                if superseded {
                    batch.remove(i);
                } else {
                    i += 1;
                }
            }
            let count = batch.len();
            let mut guard = lock(inner);
            let state = guard.tenant_mut(tenant);
            if count == 0 {
                let generation = state.machine_mut(machine).generation;
                drop(guard);
                send(Response::Ingested {
                    machine,
                    records: 0,
                    generation,
                });
                return;
            }
            state.ingested_records += count as u64;
            let machine_state = state.machine_mut(machine);
            // Upsert: copy-on-write removal of superseded records from
            // earlier batches. Batches are shared `Arc`s (snapshots taken
            // by in-flight fits keep the old view), so a touched batch is
            // rebuilt rather than mutated.
            let supersedes = |old: &RunRecord| {
                batch
                    .iter()
                    .any(|new| new.suite() == old.suite() && new.benchmark() == old.benchmark())
            };
            for slot in machine_state.batches.iter_mut() {
                if slot.iter().any(&supersedes) {
                    let kept: Vec<RunRecord> =
                        slot.iter().filter(|r| !supersedes(r)).cloned().collect();
                    *slot = Arc::new(kept);
                }
            }
            machine_state.batches.retain(|b| !b.is_empty());
            machine_state.batches.push(Arc::new(batch));
            machine_state.generation += 1;
            let generation = machine_state.generation;
            drop(guard);
            send(Response::Ingested {
                machine,
                records: count,
                generation,
            });
        }
        Task::Refit { key, force_full } => match refit_key(inner, tenant, &key, force_full) {
            Ok((report, mode)) => send(Response::Refit { report, mode }),
            Err(e) => send(Response::Error(e)),
        },
        Task::Fit(key) => match fit_key(inner, tenant, &key) {
            Ok((report, _, _)) => send(Response::Model(report)),
            Err(e) => send(Response::Error(e)),
        },
        Task::Stacks(key) => match fit_key(inner, tenant, &key) {
            Ok((report, snapshot, _)) => {
                let model = Arc::clone(&report.model);
                send(Response::Model(report));
                for record in snapshot.iter() {
                    send(Response::Stack {
                        benchmark: record.benchmark().to_owned(),
                        stack: model.cpi_stack(record),
                    });
                }
            }
            Err(e) => send(Response::Error(e)),
        },
        Task::Group(key) => match fit_key(inner, tenant, &key) {
            Ok((report, snapshot, trained)) => send(Response::Group(Box::new(FittedGroup {
                machine: report.machine,
                suite: report.suite,
                arch: *report.model.arch(),
                model: (*report.model).clone(),
                records: trained.unwrap_or_else(|| snapshot.to_vec()),
            }))),
            Err(e) => send(Response::Error(e)),
        },
        Task::Predictions(key) => match fit_key(inner, tenant, &key) {
            Ok((report, snapshot, _)) => {
                let model = Arc::clone(&report.model);
                send(Response::Model(report));
                for record in snapshot.iter() {
                    send(Response::Prediction {
                        benchmark: record.benchmark().to_owned(),
                        measured: record.cpi(),
                        predicted: model.predict_record(record),
                    });
                }
            }
            Err(e) => send(Response::Error(e)),
        },
        Task::Delta {
            old,
            new,
            suite,
            options,
        } => {
            let fit_side = |machine: MachineId| {
                let key = ModelKey::new(machine, Some(suite), options.clone());
                fit_key(inner, tenant, &key).map(|(report, snapshot, trained)| {
                    let records = trained.unwrap_or_else(|| snapshot.to_vec());
                    (report, records)
                })
            };
            match fit_side(old).and_then(|a| fit_side(new).map(|b| (a, b))) {
                Ok(((a, a_records), (b, b_records))) => send(Response::Delta(suite_delta(
                    &a.model, &a_records, &b.model, &b_records,
                ))),
                Err(e) => send(Response::Error(e)),
            }
        }
        Task::SweepCollect(spec) => match sweep_ensure(inner, tenant, &spec) {
            Ok((configs, runs)) => send(Response::SweepReady { configs, runs }),
            Err(e) => send(Response::Error(e)),
        },
        Task::Sweep(spec) => {
            if let Err(e) = serve_sweep(inner, tenant, &spec, reply) {
                send(Response::Error(e));
            }
        }
        Task::ImportRecords { spec, records } => {
            let machine = spec.id();
            let incoming = persist::records_digest(&records);
            let count = records.len();
            let mut guard = lock(inner);
            let state = guard.tenant_mut(tenant);
            let unchanged = state.machine(machine).is_some_and(|m| {
                let existing: Vec<RunRecord> =
                    m.batches.iter().flat_map(|b| b.iter()).cloned().collect();
                m.spec.is_some()
                    && !existing.is_empty()
                    && persist::records_digest(&existing) == incoming
            });
            if unchanged {
                let generation = state.machine_mut(machine).generation;
                drop(guard);
                send(Response::Ingested {
                    machine,
                    records: 0,
                    generation,
                });
                return;
            }
            state.ingested_records += count as u64;
            let machine_state = state.machine_mut(machine);
            machine_state.spec = Some(*spec);
            machine_state.batches = vec![Arc::new(records)];
            machine_state.generation += 1;
            let generation = machine_state.generation;
            guard.cache.invalidate_machine(tenant, machine);
            drop(guard);
            send(Response::Ingested {
                machine,
                records: count,
                generation,
            });
        }
    }
}

/// The suite's workload profiles, in campaign order.
fn suite_profiles(suite: Suite) -> Vec<specgen::profile::WorkloadProfile> {
    match suite {
        Suite::Cpu2000 => specgen::suites::cpu2000(),
        Suite::Cpu2006 => specgen::suites::cpu2006(),
    }
}

/// The collection phase of a sweep: expand the grid and make sure the
/// base and every variant hold records for the spec's suite, simulating
/// only what is missing. Returns `(distinct configs simulated, traces
/// run)` — `(0, 0)` on a warm re-sweep.
fn sweep_ensure(
    inner: &Mutex<Inner>,
    tenant: &TenantId,
    spec: &SweepSpec,
) -> Result<(usize, usize), ServiceError> {
    let variants = sweep::expand_selected(spec).map_err(|error| ServiceError::Sweep { error })?;
    sweep_ensure_variants(inner, tenant, spec, &variants)
}

/// [`sweep_ensure`] with the grid already expanded.
///
/// The workload set is pinned by the *base*: once the base machine has
/// records for the suite, every variant simulates exactly the base's
/// benchmark set (so delta stacks pair benchmark-for-benchmark); on a
/// fresh store the suite (optionally truncated by `spec.limit`) defines
/// it. Missing configs are simulated in one flattened work-list on the
/// work-stealing collect pool — each workload's trace runs once per
/// distinct config, never once per variant-request — and ingested under
/// the lock afterwards. A machine that already carries a registered spec
/// keeps it; collection only fills gaps.
fn sweep_ensure_variants(
    inner: &Mutex<Inner>,
    tenant: &TenantId,
    spec: &SweepSpec,
    variants: &[SweepVariant],
) -> Result<(usize, usize), ServiceError> {
    // The base participates even when the grid skips its point: every
    // variant's delta is relative to it.
    let mut configs: Vec<oosim::machine::MachineConfig> = vec![MachineConfig::preset(spec.base)];
    for variant in variants {
        if configs.iter().all(|c| c.id != variant.id) {
            configs.push(variant.config.clone());
        }
    }
    let (need, base_benchmarks, workers) = {
        let guard = lock(inner);
        let tenant_state = guard.tenant(tenant);
        let has_records = |id: MachineId| {
            tenant_state.and_then(|t| t.machine(id)).is_some_and(|m| {
                m.spec.is_some()
                    && m.batches
                        .iter()
                        .flat_map(|b| b.iter())
                        .any(|r| r.suite() == spec.suite)
            })
        };
        let need: Vec<oosim::machine::MachineConfig> = configs
            .iter()
            .filter(|c| !has_records(c.id))
            .cloned()
            .collect();
        let base_benchmarks: Vec<String> = tenant_state
            .and_then(|t| t.machine(spec.base))
            .map(|m| {
                m.batches
                    .iter()
                    .flat_map(|b| b.iter())
                    .filter(|r| r.suite() == spec.suite)
                    .map(|r| r.benchmark().to_owned())
                    .collect()
            })
            .unwrap_or_default();
        (need, base_benchmarks, guard.workers)
    };
    if need.is_empty() {
        return Ok((0, 0));
    }
    let profiles = suite_profiles(spec.suite);
    let profiles: Vec<specgen::profile::WorkloadProfile> = if base_benchmarks.is_empty() {
        match spec.limit {
            Some(n) => profiles.into_iter().take(n).collect(),
            None => profiles,
        }
    } else {
        profiles
            .into_iter()
            .filter(|p| {
                base_benchmarks
                    .iter()
                    .any(|n| n.as_str() == p.name.as_ref())
            })
            .collect()
    };
    let source = SimSource::new()
        .suite(profiles)
        .uops(spec.uops)
        .seed(spec.seed);
    let specs: Vec<MachineSpec> = need.iter().map(MachineSpec::from).collect();
    let results = source.collect_all(&specs, workers);
    let mut runs = 0;
    let mut guard = lock(inner);
    let state = guard.tenant_mut(tenant);
    for (machine_spec, result) in specs.into_iter().zip(results) {
        let records = result.expect("simulated specs always carry configs");
        runs += records.len();
        state.ingested_records += records.len() as u64;
        let machine_state = state.machine_mut(machine_spec.id());
        if machine_state.spec.is_none() {
            machine_state.spec = Some(machine_spec);
        }
        machine_state.batches.push(Arc::new(records));
        machine_state.generation += 1;
    }
    Ok((need.len(), runs))
}

/// Serves one [`Task::Sweep`]: collection (idempotent; usually already
/// done by [`Request::SweepCollect`]), then base + every variant through
/// the one fitting path ([`fit_key`] — cache, warm snapshot store, or a
/// fresh fit under the shared thread budget), streaming each variant's
/// result as soon as it is ready and the ranked summary last.
fn serve_sweep(
    inner: &Mutex<Inner>,
    tenant: &TenantId,
    spec: &SweepSpec,
    reply: &mpsc::Sender<Response>,
) -> Result<(), ServiceError> {
    let variants = sweep::expand_selected(spec).map_err(|error| ServiceError::Sweep { error })?;
    let (simulated_configs, simulated_runs) =
        sweep_ensure_variants(inner, tenant, spec, &variants)?;
    let base_key = ModelKey::new(spec.base, Some(spec.suite), spec.options.clone());
    let (base_report, base_snapshot, base_trained) = fit_key(inner, tenant, &base_key)?;
    let base_records = base_trained.unwrap_or_else(|| base_snapshot.to_vec());
    let mut results: Vec<SweepVariantResult> = Vec::with_capacity(variants.len());
    for variant in &variants {
        let (report, records) = if variant.id == spec.base {
            (base_report.clone(), base_records.clone())
        } else {
            let key = ModelKey::new(variant.id, Some(spec.suite), spec.options.clone());
            let (report, snapshot, trained) = fit_key(inner, tenant, &key)?;
            let records = trained.unwrap_or_else(|| snapshot.to_vec());
            (report, records)
        };
        let mut cpi = 0.0;
        let mut component = 0.0;
        for record in &records {
            let stack = report.model.cpi_stack(record);
            cpi += stack.total();
            component += spec.component.value(&stack);
        }
        let n = records.len().max(1) as f64;
        let result = SweepVariantResult {
            id: variant.id,
            cpi: cpi / n,
            component: component / n,
            delta: suite_delta(&base_report.model, &base_records, &report.model, &records),
            cached: report.cached,
            benchmarks: records.len(),
        };
        let _ = reply.send(Response::SweepVariant(Box::new(result.clone())));
        results.push(result);
    }
    let points: Vec<(f64, f64)> = results.iter().map(|r| (r.cpi, r.component)).collect();
    let pareto = sweep::pareto_front(&points)
        .into_iter()
        .map(|i| results[i].id)
        .collect();
    let _ = reply.send(Response::SweepSummary(Box::new(SweepSummary {
        base: spec.base,
        suite: spec.suite,
        component: spec.component,
        results,
        pareto,
        simulated_configs,
        simulated_runs,
    })));
    Ok(())
}

/// A point-in-time, suite-filtered view of one machine's ingested
/// records: `Arc` clones of the batch list, no record copies. Streaming
/// handlers iterate it in place; only consumers that need owned
/// contiguous records (`Group`, `Delta`, the regression itself)
/// materialize a `Vec`.
struct RecordsSnapshot {
    batches: Vec<Arc<Vec<RunRecord>>>,
    suite: Option<Suite>,
}

impl RecordsSnapshot {
    fn iter(&self) -> impl Iterator<Item = &RunRecord> {
        let suite = self.suite;
        self.batches
            .iter()
            .flat_map(|batch| batch.iter())
            .filter(move |r| suite.is_none_or(|s| r.suite() == s))
    }

    fn to_vec(&self) -> Vec<RunRecord> {
        self.iter().cloned().collect()
    }
}

/// Serves one model key for one tenant. The machine's store is
/// snapshotted under the lock in O(batches) `Arc` clones; record
/// filtering/copying and the regression all run *outside* it, so a slow
/// fit or a huge record set on one shard never stalls ingestion or cached
/// serves on another. Cache hits copy no records at all — the returned
/// snapshot streams them in place, and the `Vec` is `Some` only when a
/// miss had to materialize one (so `Group`/`Delta` reuse it instead of
/// re-copying). A memory miss with a state dir consults the tenant's own
/// slice of the [`persist::SnapshotStore`] before fitting: a snapshot
/// whose records digest and arch match the *current* training state is
/// restored without a regression (counted as a [`CacheStats::warm_loads`]
/// hit); any mismatch or corruption falls through to a fresh fit, whose
/// result is then written back to disk — here, behind the worker pool,
/// never on a client thread. Everything — the machine lookup, the cache,
/// the disk store — is tenant-scoped: another tenant's records, models or
/// snapshots are unreachable from this path. This is the single fitting
/// code path behind the service *and* `Workbench::fit()`.
#[allow(clippy::type_complexity)]
fn fit_key(
    inner: &Mutex<Inner>,
    tenant: &TenantId,
    key: &ModelKey,
) -> Result<(ModelReport, RecordsSnapshot, Option<Vec<RunRecord>>), ServiceError> {
    let (arch, batches, generation, store, fit_threads) = {
        let guard = lock(inner);
        let state = guard
            .tenant(tenant)
            .and_then(|t| t.machine(key.machine))
            .ok_or(ServiceError::NotRegistered {
                machine: key.machine,
            })?;
        let spec = state.spec.as_ref().ok_or(ServiceError::NotRegistered {
            machine: key.machine,
        })?;
        (
            *spec.arch(),
            state.batches.clone(),
            state.generation,
            guard.persist.clone(),
            guard.fit_threads,
        )
    };
    let snapshot = RecordsSnapshot {
        batches,
        suite: key.suite,
    };
    let count = snapshot.iter().count();
    if count == 0 {
        return Err(ServiceError::NoRecords {
            machine: key.machine,
            suite: key.suite,
        });
    }
    let report = |model: Arc<InferredModel>, cached: bool| ModelReport {
        machine: key.machine,
        suite: key.suite,
        records: count,
        model,
        cached,
        generation,
    };
    // The generation travels with the snapshot: if a batch lands between
    // the snapshot and this lookup (or the insert below), the entry is
    // recorded against the old generation and retires on its next lookup.
    let hit = lock(inner).cache.lookup(tenant, key, generation);
    if let Some(model) = hit {
        return Ok((report(model, true), snapshot, None));
    }
    // Only a miss pays for disk state: resolve the tenant's private
    // slice of the snapshot store here (the root for the local tenant,
    // `tenant-<name>/` otherwise — a directory syscall that must not tax
    // the cache-hit path above). Opening can fail on a sick disk;
    // persistence is best-effort, so that is a plain miss.
    let store = store.and_then(|root| root.for_tenant(tenant).ok());
    let records = snapshot.to_vec();
    // The digest binds any persisted model to these exact records: a
    // restart that replays the same batches reproduces it; one changed
    // counter anywhere does not.
    let digest = store.as_ref().map(|_| persist::records_digest(&records));
    if let (Some(store), Some(digest)) = (&store, digest) {
        // A corrupt or mismatched snapshot is a miss, never an error (and
        // never a stale model): fall through to the regression below.
        if let Ok(Some(snap)) =
            store.load(key.machine, key.suite, key.options.fingerprint(), digest)
        {
            if snap.arch == arch {
                let model = Arc::new(InferredModel::from_parts(
                    snap.arch,
                    snap.params,
                    snap.interval_cap,
                    snap.objective,
                ));
                lock(inner)
                    .cache
                    .promote_warm(tenant, key, generation, Arc::clone(&model));
                return Ok((report(model, true), snapshot, Some(records)));
            }
        }
    }
    // The deployment cap on regression fan-out applies here, after the
    // cache key was formed: thread budgets never split keys (they cannot
    // change the fitted bits).
    let options = match fit_threads {
        Some(threads) => key.options.clone().with_threads(threads),
        None => key.options.clone(),
    };
    let fit_start = Instant::now();
    let (model, profile) =
        InferredModel::fit_profiled(&arch, &records, &options).map_err(|error| {
            ServiceError::Fit {
                machine: key.machine,
                suite: key.suite,
                error,
            }
        })?;
    let fit_wall_us = fit_start.elapsed().as_micros() as u64;
    let model = Arc::new(model);
    {
        let mut guard = lock(inner);
        guard.tenant_mut(tenant).fits += 1;
        let stats = guard.cache.stats_mut(tenant);
        stats.fit_evals += profile.evals;
        stats.fit_wall_us += fit_wall_us;
        guard
            .cache
            .insert(tenant, key, generation, Arc::clone(&model));
    }
    if let (Some(store), Some(digest)) = (&store, digest) {
        // Best-effort write-behind: a full disk must not fail the request
        // the model was just fitted for.
        let _ = store.save(&persist::ModelSnapshot {
            machine: key.machine,
            suite: key.suite,
            options_fingerprint: key.options.fingerprint(),
            records_digest: digest,
            records: count as u32,
            arch,
            params: *model.params(),
            interval_cap: model.interval_cap(),
            objective: model.objective(),
        });
    }
    Ok((report(model, false), snapshot, Some(records)))
}

/// Digest of the *workload's identity*: the distinct benchmark names in a
/// training set, order-free. Two record sets that re-sample the same
/// workloads (a stationary stream) share a digest; adding, dropping or
/// renaming a benchmark changes it — the cheap signal the drift guard uses
/// to force a full refit on a workload shift without fitting anything.
fn workload_digest(records: &[RunRecord]) -> u64 {
    let mut names: Vec<&str> = records.iter().map(|r| r.benchmark()).collect();
    names.sort_unstable();
    names.dedup();
    let mut h = DefaultHasher::new();
    for name in names {
        name.hash(&mut h);
    }
    h.finish()
}

/// Serves one model key on the streaming path. Mode selection, cheapest
/// first:
///
/// 1. **Cached** — the cache holds the key at the current generation
///    (skipped under `force_full`).
/// 2. **Incremental** — a baseline anchor exists, the workload digest is
///    unchanged, the periodic full-refit cadence is not due, and the
///    warm-start polish's per-record objective stays within the policy's
///    drift bound of the anchor's. The polished parameters become the next
///    polish's starting point; the anchor objective does not move.
/// 3. **Full** — everything else: first fit of a stream, a workload
///    shift, cadence due, drift-guard rejection, or `force_full` (the
///    stream-close reconciliation). Re-anchors the baseline and persists
///    the model (incremental results are never persisted: on restart the
///    stream re-anchors from a full fit, so disk state is always the
///    product of a full fan-out).
///
/// Both fitting modes insert into the model cache (same generation
/// semantics as [`fit_key`]) and count one `fits`; the `full_refits` /
/// `incremental_refits` split lands in [`CacheStats`] so the steady-state
/// saving is observable per tenant.
fn refit_key(
    inner: &Mutex<Inner>,
    tenant: &TenantId,
    key: &ModelKey,
    force_full: bool,
) -> Result<(ModelReport, RefitMode), ServiceError> {
    let baseline_key = BaselineKey {
        suite: key.suite,
        options: key.options.fingerprint(),
    };
    let (arch, batches, generation, store, fit_threads, policy, baseline) = {
        let guard = lock(inner);
        let state = guard
            .tenant(tenant)
            .and_then(|t| t.machine(key.machine))
            .ok_or(ServiceError::NotRegistered {
                machine: key.machine,
            })?;
        let spec = state.spec.as_ref().ok_or(ServiceError::NotRegistered {
            machine: key.machine,
        })?;
        (
            *spec.arch(),
            state.batches.clone(),
            state.generation,
            guard.persist.clone(),
            guard.fit_threads,
            guard.refit.clone(),
            state.baseline(&baseline_key).cloned(),
        )
    };
    let snapshot = RecordsSnapshot {
        batches,
        suite: key.suite,
    };
    let count = snapshot.iter().count();
    if count == 0 {
        return Err(ServiceError::NoRecords {
            machine: key.machine,
            suite: key.suite,
        });
    }
    let report = |model: Arc<InferredModel>, cached: bool| ModelReport {
        machine: key.machine,
        suite: key.suite,
        records: count,
        model,
        cached,
        generation,
    };
    if !force_full {
        let hit = lock(inner).cache.lookup(tenant, key, generation);
        if let Some(model) = hit {
            return Ok((report(model, true), RefitMode::Cached));
        }
    }
    let records = snapshot.to_vec();
    let digest = workload_digest(&records);
    let fit_error = |error: FitError| ServiceError::Fit {
        machine: key.machine,
        suite: key.suite,
        error,
    };
    // Try the warm-start polish when the guard allows it. Its effort is
    // tallied whether or not the guard accepts the result — a rejected
    // polish still spent its (warm_evals-bounded) budget.
    let mut polish_cost = (0u64, 0u64); // (evals, wall µs)
    let warm = match (&baseline, force_full) {
        (Some(b), false) if b.workload_digest == digest && b.since_full + 1 < policy.full_every => {
            let anchor = InferredModel::from_parts(arch, b.params, b.interval_cap, 0.0);
            let polish_start = Instant::now();
            let (polished, profile) = anchor
                .refit_profiled(&records, &key.options, policy.warm_evals)
                .map_err(fit_error)?;
            polish_cost = (profile.evals, polish_start.elapsed().as_micros() as u64);
            let norm = polished.objective() / count as f64;
            // The drift guard: accept only while the polish tracks the
            // anchor's quality. A rejected polish is discarded entirely —
            // its cost was bounded by `warm_evals`.
            (norm <= b.full_norm_objective * policy.drift_factor).then_some(polished)
        }
        _ => None,
    };
    if let Some(polished) = warm {
        let model = Arc::new(polished);
        let mut guard = lock(inner);
        guard.tenant_mut(tenant).fits += 1;
        let stats = guard.cache.stats_mut(tenant);
        stats.incremental_refits += 1;
        stats.fit_evals += polish_cost.0;
        stats.fit_wall_us += polish_cost.1;
        guard
            .cache
            .insert(tenant, key, generation, Arc::clone(&model));
        let baseline = baseline.expect("warm polish requires a baseline");
        guard
            .tenant_mut(tenant)
            .machine_mut(key.machine)
            .set_baseline(
                baseline_key,
                RefitBaseline {
                    params: *model.params(),
                    since_full: baseline.since_full + 1,
                    ..baseline
                },
            );
        drop(guard);
        return Ok((report(model, false), RefitMode::Incremental));
    }
    // Full fan-out: fit, re-anchor, persist.
    let options = match fit_threads {
        Some(threads) => key.options.clone().with_threads(threads),
        None => key.options.clone(),
    };
    let fit_start = Instant::now();
    let (model, profile) =
        InferredModel::fit_profiled(&arch, &records, &options).map_err(fit_error)?;
    let fit_wall_us = fit_start.elapsed().as_micros() as u64;
    let model = Arc::new(model);
    {
        let mut guard = lock(inner);
        guard.tenant_mut(tenant).fits += 1;
        let stats = guard.cache.stats_mut(tenant);
        stats.full_refits += 1;
        stats.fit_evals += profile.evals + polish_cost.0;
        stats.fit_wall_us += fit_wall_us + polish_cost.1;
        guard
            .cache
            .insert(tenant, key, generation, Arc::clone(&model));
        guard
            .tenant_mut(tenant)
            .machine_mut(key.machine)
            .set_baseline(
                baseline_key,
                RefitBaseline {
                    params: *model.params(),
                    interval_cap: model.interval_cap(),
                    full_norm_objective: model.objective() / count as f64,
                    workload_digest: digest,
                    since_full: 0,
                },
            );
    }
    // Best-effort write-behind, exactly as the plain fitting path does.
    let store = store.and_then(|root| root.for_tenant(tenant).ok());
    if let Some(store) = store {
        let _ = store.save(&persist::ModelSnapshot {
            machine: key.machine,
            suite: key.suite,
            options_fingerprint: key.options.fingerprint(),
            records_digest: persist::records_digest(&records),
            records: count as u32,
            arch,
            params: *model.params(),
            interval_cap: model.interval_cap(),
            objective: model.objective(),
        });
    }
    Ok((report(model, false), RefitMode::Full))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workbench::SimSource;
    use oosim::machine::MachineConfig;

    fn core2_records(n: usize, uops: u64, seed: u64) -> Vec<RunRecord> {
        SimSource::new()
            .suite(specgen::suites::cpu2000().into_iter().take(n).collect())
            .uops(uops)
            .seed(seed)
            .collect_config(&MachineConfig::core2())
    }

    fn warm_service() -> (CpiService, CpiClient) {
        let service = CpiService::start(ServiceConfig::new().with_workers(2));
        let client = service.client();
        client
            .register(MachineSpec::from(MachineConfig::core2()))
            .expect("register");
        client.ingest(core2_records(12, 3_000, 7)).expect("ingest");
        (service, client)
    }

    #[test]
    fn fit_then_refit_hits_the_cache() {
        let (service, client) = warm_service();
        let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
        let first = client.fit(key.clone()).expect("first fit");
        assert!(!first.cached);
        let second = client.fit(key).expect("second fit");
        assert!(second.cached);
        assert_eq!(first.model.params(), second.model.params());
        let stats = service.shutdown();
        assert_eq!(stats.fits, 1);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
    }

    #[test]
    fn ingestion_invalidates_cached_models() {
        let (service, client) = warm_service();
        let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
        let first = client.fit(key.clone()).expect("fit");
        client
            .ingest(core2_records(12, 3_000, 99))
            .expect("second batch");
        let refit = client.fit(key).expect("refit");
        assert!(!refit.cached, "new batch must retire the cached model");
        assert_eq!(refit.records, 24);
        assert!(refit.generation > first.generation);
        let stats = service.shutdown();
        assert_eq!(stats.cache.invalidations, 1);
        assert_eq!(stats.fits, 2);
    }

    #[test]
    fn reregistering_new_constants_invalidates() {
        let (service, client) = warm_service();
        let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
        client.fit(key.clone()).expect("fit");
        client
            .register(MachineSpec::real(
                MachineId::Core2,
                crate::params::MicroarchParams::new(4.0, 14.0, 25.0, 200.0, 40.0),
            ))
            .expect("re-register");
        let refit = client.fit(key).expect("refit");
        assert!(!refit.cached);
        assert_eq!(refit.model.arch().c_l2, 25.0);
        drop(client);
        let stats = service.shutdown();
        assert_eq!(stats.cache.invalidations, 1);
    }

    #[test]
    fn unknown_machine_and_empty_suite_are_typed_errors() {
        let (service, client) = warm_service();
        let err = client
            .fit(ModelKey::pooled(MachineId::Pentium4, FitOptions::quick()))
            .expect_err("never registered");
        assert!(matches!(
            err,
            ServiceError::NotRegistered {
                machine: MachineId::Pentium4
            }
        ));
        let err = client
            .fit(ModelKey::new(
                MachineId::Core2,
                Some(Suite::Cpu2006),
                FitOptions::quick(),
            ))
            .expect_err("no cpu2006 records ingested");
        assert!(matches!(err, ServiceError::NoRecords { .. }));
        service.shutdown();
    }

    #[test]
    fn csv_ingestion_round_trips_and_parse_errors_carry_origin() {
        let service = CpiService::start(ServiceConfig::new().with_workers(1));
        let client = service.client();
        client
            .register(MachineSpec::from(MachineConfig::core2()))
            .expect("register");
        let csv = pmu::csv::to_csv(&core2_records(12, 3_000, 5));
        assert_eq!(client.ingest_csv(&csv, "batch.csv").expect("ingest"), 12);
        let err = client
            .ingest_csv("not,a,header\n1,2,3\n", "bad.csv")
            .expect_err("malformed");
        match &err {
            ServiceError::Parse { origin, .. } => assert_eq!(origin, "bad.csv"),
            other => panic!("expected Parse, got {other:?}"),
        }
        let report = client
            .fit(ModelKey::new(
                MachineId::Core2,
                Some(Suite::Cpu2000),
                FitOptions::quick(),
            ))
            .expect("fit over csv batch");
        assert_eq!(report.records, 12);
        service.shutdown();
    }

    #[test]
    fn stacks_stream_model_first_then_per_benchmark() {
        let (service, client) = warm_service();
        let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
        let mut saw_model = false;
        let mut stacks = 0;
        for response in client.submit(Request::Stacks(key)) {
            match response {
                Response::Model(_) => {
                    assert_eq!(stacks, 0, "model arrives before any stack");
                    saw_model = true;
                }
                Response::Stack { .. } => {
                    assert!(saw_model);
                    stacks += 1;
                }
                Response::Error(e) => panic!("unexpected error: {e}"),
                _ => {}
            }
        }
        assert_eq!(stacks, 12);
        service.shutdown();
    }

    #[test]
    fn delta_is_served_through_the_same_cache() {
        let service = CpiService::start(ServiceConfig::new().with_workers(3));
        let client = service.client();
        for config in [MachineConfig::pentium4(), MachineConfig::core2()] {
            let records = SimSource::new()
                .suite(specgen::suites::cpu2000().into_iter().take(12).collect())
                .uops(3_000)
                .seed(7)
                .collect_config(&config);
            client
                .register(MachineSpec::from(config))
                .expect("register");
            client.ingest(records).expect("ingest");
        }
        let delta = client
            .delta(
                MachineId::Pentium4,
                MachineId::Core2,
                Suite::Cpu2000,
                FitOptions::quick(),
            )
            .expect("delta");
        assert!(delta.overall.total().is_finite());
        // Both sides are now cached: repeating the delta runs no new fits.
        let before = client.stats().expect("stats").fits;
        client
            .delta(
                MachineId::Pentium4,
                MachineId::Core2,
                Suite::Cpu2000,
                FitOptions::quick(),
            )
            .expect("repeat delta");
        let stats = service.shutdown();
        assert_eq!(stats.fits, before, "repeat delta is all cache hits");
        assert_eq!(stats.fits, 2);
    }

    #[test]
    fn submitting_after_shutdown_reports_stopped() {
        let (service, client) = warm_service();
        service.shutdown();
        let err = client
            .fit(ModelKey::pooled(MachineId::Core2, FitOptions::quick()))
            .expect_err("service is gone");
        assert!(matches!(err, ServiceError::Stopped));
        let err = client.stats().expect_err("stats honours the contract too");
        assert!(matches!(err, ServiceError::Stopped));
    }

    #[test]
    fn options_fingerprint_separates_cache_entries() {
        let (service, client) = warm_service();
        let quick = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
        let seeded = ModelKey::new(
            MachineId::Core2,
            Some(Suite::Cpu2000),
            FitOptions::quick().with_seed(1),
        );
        client.fit(quick).expect("fit quick");
        let other = client.fit(seeded).expect("fit seeded");
        assert!(!other.cached, "different options are a different key");
        let stats = service.shutdown();
        assert_eq!(stats.fits, 2);
    }

    /// One jittered round of a stationary live stream: the same workloads,
    /// counters perturbed ±1%.
    fn jitter_round(records: &[RunRecord], seed: u64) -> Vec<RunRecord> {
        use pmu::live::{LiveSource, ReplaySource};
        let mut src = ReplaySource::new(records.to_vec())
            .batch_size(records.len().max(1))
            .rounds(2)
            .jitter(seed);
        src.next_batch(); // round 0: verbatim
        src.next_batch().expect("round 1")
    }

    #[test]
    fn streaming_refits_pick_the_cheapest_safe_mode() {
        let (service, client) = warm_service();
        let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
        // First refit of a stream: no baseline yet, so the fan-out runs.
        let (first, mode) = client.refit(key.clone(), false).expect("anchor");
        assert_eq!(mode, RefitMode::Full);
        assert!(!first.cached);
        // Nothing new arrived: the cache serves.
        let (_, mode) = client.refit(key.clone(), false).expect("cached");
        assert_eq!(mode, RefitMode::Cached);
        // A stationary batch (same workloads, jittered counters): the
        // warm-start polish is accepted, and the upsert keeps the store at
        // 12 records instead of growing it to 24.
        let batch = jitter_round(&core2_records(12, 3_000, 7), 5);
        client
            .stream_batch(MachineId::Core2, batch)
            .expect("stream batch");
        let (second, mode) = client.refit(key.clone(), false).expect("incremental");
        assert_eq!(mode, RefitMode::Incremental);
        assert_eq!(second.records, 12, "stream batches upsert, not append");
        // Forced reconciliation bypasses the cache and re-anchors.
        let (reconciled, mode) = client.refit(key, true).expect("reconcile");
        assert_eq!(mode, RefitMode::Full);
        assert!(!reconciled.cached);
        let stats = service.shutdown();
        assert_eq!(stats.cache.full_refits, 2);
        assert_eq!(stats.cache.incremental_refits, 1);
        assert_eq!(stats.fits, 3);
    }

    #[test]
    fn workload_shift_forces_the_full_fanout() {
        let (service, client) = warm_service();
        let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
        client.refit(key.clone(), false).expect("anchor");
        // Stationary: incremental, proving the guard was letting polishes
        // through before the shift.
        client
            .stream_batch(
                MachineId::Core2,
                jitter_round(&core2_records(12, 3_000, 7), 1),
            )
            .expect("stationary batch");
        let (_, mode) = client.refit(key.clone(), false).expect("incremental");
        assert_eq!(mode, RefitMode::Incremental);
        // Shift: a batch of *different* benchmarks changes the workload
        // digest, so the guard must fall back to the full fan-out without
        // even running the polish.
        let shifted = SimSource::new()
            .suite(
                specgen::suites::cpu2000()
                    .into_iter()
                    .skip(12)
                    .take(12)
                    .collect(),
            )
            .uops(3_000)
            .seed(8)
            .collect_config(&MachineConfig::core2());
        client
            .stream_batch(MachineId::Core2, shifted)
            .expect("shifted batch");
        let (report, mode) = client.refit(key, false).expect("post-shift refit");
        assert_eq!(mode, RefitMode::Full, "workload shift must re-anchor");
        assert_eq!(report.records, 24, "new workloads add, same ones replace");
        let stats = service.shutdown();
        assert_eq!(stats.cache.full_refits, 2);
        assert_eq!(stats.cache.incremental_refits, 1);
    }

    #[test]
    fn periodic_full_refit_reanchors() {
        let service = CpiService::start(
            ServiceConfig::new()
                .with_workers(2)
                .with_refit_policy(RefitPolicy::default().with_full_every(2)),
        );
        let client = service.client();
        client
            .register(MachineSpec::from(MachineConfig::core2()))
            .expect("register");
        let records = core2_records(12, 3_000, 7);
        client.ingest(records.clone()).expect("ingest");
        let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
        let mut modes = Vec::new();
        for seed in 1..=4u64 {
            let (_, mode) = client.refit(key.clone(), false).expect("refit");
            modes.push(mode);
            client
                .stream_batch(MachineId::Core2, jitter_round(&records, seed))
                .expect("batch");
        }
        let (_, last) = client.refit(key, false).expect("final refit");
        modes.push(last);
        // full_every = 2: anchor, one polish, re-anchor, one polish, ...
        assert_eq!(
            modes,
            vec![
                RefitMode::Full,
                RefitMode::Incremental,
                RefitMode::Full,
                RefitMode::Incremental,
                RefitMode::Full
            ]
        );
        service.shutdown();
    }
}
