//! Model parameters: machine-level constants and the ten regression
//! parameters.

use oosim::machine::MachineConfig;
use std::fmt;

/// The microarchitecture-only inputs of Eq. 1 (the paper's Table 2 row):
/// dispatch width, front-end depth, and the cache/TLB/memory latencies.
///
/// These come either from processor specifications
/// ([`MicroarchParams::from_machine`]) or from Calibrator-style
/// microbenchmarks ([`MicroarchParams::new`] with estimates from the
/// `calibrate` crate) — the paper does the latter for the latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroarchParams {
    /// Dispatch width `D`.
    pub width: f64,
    /// Front-end pipeline depth `c_fe` (branch refill cycles).
    pub fe_depth: f64,
    /// L2 access time `c_L2` (the penalty of an L1 I-miss that hits L2).
    pub c_l2: f64,
    /// Memory access time `c_mem`.
    pub c_mem: f64,
    /// TLB miss penalty `c_TLB`.
    pub c_tlb: f64,
}

impl MicroarchParams {
    /// Builds parameters from explicit values.
    ///
    /// # Panics
    ///
    /// Panics if any value is non-positive.
    pub fn new(width: f64, fe_depth: f64, c_l2: f64, c_mem: f64, c_tlb: f64) -> Self {
        assert!(
            width > 0.0 && fe_depth > 0.0 && c_l2 > 0.0 && c_mem > 0.0 && c_tlb > 0.0,
            "microarchitecture parameters must be positive"
        );
        Self {
            width,
            fe_depth,
            c_l2,
            c_mem,
            c_tlb,
        }
    }

    /// Reads the parameters off a simulated machine's specification — the
    /// equivalent of reading Intel's datasheets, as the paper does for the
    /// width and pipeline depth.
    pub fn from_machine(machine: &MachineConfig) -> Self {
        Self::new(
            machine.dispatch_width as f64,
            machine.frontend_depth as f64,
            machine.lat.l2 as f64,
            machine.lat.mem as f64,
            machine.lat.tlb as f64,
        )
    }
}

impl fmt::Display for MicroarchParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "D={}, c_fe={}, c_L2={}, c_mem={}, c_TLB={}",
            self.width, self.fe_depth, self.c_l2, self.c_mem, self.c_tlb
        )
    }
}

/// The ten regression parameters `b1..b10` of Eq. 2–6.
///
/// | parameter | role |
/// |---|---|
/// | `b1`, `b2` | branch resolution: scale and interval-length power law |
/// | `b3`, `b4` | branch resolution: FP and L1-D-miss chain factors |
/// | `b5`–`b7` | MLP: scale and the two power-law exponents |
/// | `b8`–`b10` | resource stalls: scale, FP and L1-D-miss factors |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// The raw parameter vector `[b1, …, b10]`.
    pub b: [f64; 10],
}

impl ModelParams {
    /// Number of regression parameters.
    pub const COUNT: usize = 10;

    /// A physically-plausible starting point for regression.
    pub fn initial_guess() -> Self {
        Self {
            b: [1.0, 0.5, 1.0, 10.0, 8.0, 0.25, 0.05, 0.3, 2.0, 20.0],
        }
    }

    /// Box bounds used during fitting: each parameter's physically
    /// meaningful range (scales non-negative, exponents in `[-1, 1.5]`).
    pub fn bounds() -> [(f64, f64); 10] {
        [
            (0.0, 100.0),   // b1: resolution scale
            (0.0, 1.5),     // b2: interval power law
            (0.0, 50.0),    // b3: fp factor
            (0.0, 2000.0),  // b4: L1D-miss factor
            (0.05, 2000.0), // b5: MLP scale
            (-1.0, 1.5),    // b6: MLP exponent on LLC misses
            (-1.0, 1.5),    // b7: MLP exponent on DTLB misses
            (0.0, 10.0),    // b8: stall scale
            (0.0, 50.0),    // b9: stall fp factor
            (0.0, 5000.0),  // b10: stall L1D-miss factor
        ]
    }

    /// Creates parameters from a slice (regression output).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != 10`.
    pub fn from_slice(values: &[f64]) -> Self {
        assert_eq!(values.len(), Self::COUNT, "expected 10 parameters");
        let mut b = [0.0; 10];
        b.copy_from_slice(values);
        Self { b }
    }

    /// `b_i` with the paper's 1-based numbering.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= i <= 10`.
    pub fn get(&self, i: usize) -> f64 {
        assert!((1..=10).contains(&i), "parameter index out of range");
        self.b[i - 1]
    }
}

impl fmt::Display for ModelParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b = [")?;
        for (i, v) in self.b.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_machine_matches_table_2() {
        let p = MicroarchParams::from_machine(&MachineConfig::pentium4());
        assert_eq!(p.width, 3.0);
        assert_eq!(p.fe_depth, 31.0);
        assert_eq!(p.c_l2, 31.0);
        assert_eq!(p.c_mem, 313.0);
        assert_eq!(p.c_tlb, 70.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive() {
        let _ = MicroarchParams::new(0.0, 14.0, 19.0, 169.0, 30.0);
    }

    #[test]
    fn params_round_trip_slice() {
        let p = ModelParams::initial_guess();
        let q = ModelParams::from_slice(&p.b);
        assert_eq!(p, q);
        assert_eq!(p.get(1), p.b[0]);
        assert_eq!(p.get(10), p.b[9]);
    }

    #[test]
    fn bounds_contain_initial_guess() {
        let p = ModelParams::initial_guess();
        for (v, (lo, hi)) in p.b.iter().zip(ModelParams::bounds()) {
            assert!(*v >= lo && *v <= hi);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_rejects_zero() {
        let _ = ModelParams::initial_guess().get(0);
    }

    #[test]
    fn display_formats() {
        let text = ModelParams::initial_guess().to_string();
        assert!(text.starts_with("b = ["));
        let text = MicroarchParams::from_machine(&MachineConfig::core2()).to_string();
        assert!(text.contains("D=4"));
    }
}
