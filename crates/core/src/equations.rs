//! Eq. 1–6 of the paper, as pure functions.
//!
//! Everything here works in per-µop (CPI) space: Eq. 1 divided through by
//! `N`, which is also how the regression's objective is defined (§4: "The
//! predicted value is the number of cycles per micro-operation").
//!
//! ## A note on the interval cap (Eq. 2)
//!
//! The paper's printed formula reads `max(128, 1/mpµ_br)`, but its prose
//! says the factor is *capped* "to prevent the factor to grow indefinitely
//! for workloads that have very few mispredicted branches … the dependence
//! path to the branch is limited by the size of the instruction window."
//! A `max` floors rather than caps; we implement the cap the prose
//! describes (`min(cap, 1/mpµ_br)`, window-sized default 128) and expose
//! the cap for sensitivity analysis (see the ablation benches).

use crate::inputs::ModelInputs;
use crate::params::{MicroarchParams, ModelParams};

/// The instruction-window cap on the branch-resolution interval factor.
pub const INTERVAL_CAP: f64 = 128.0;

/// Floor for rates inside power laws (avoids `0^negative`).
const RATE_FLOOR: f64 = 1e-9;

/// Eq. 2 — branch resolution time `c_br` in cycles.
///
/// `c_br = b1 · min(cap, 1/mpµ_br)^b2 · (1 + b3·fp) · (1 + b4·mpµ_DL1)`
pub fn branch_resolution(params: &ModelParams, inputs: &ModelInputs) -> f64 {
    branch_resolution_capped(params, inputs, INTERVAL_CAP)
}

/// Eq. 2 with an explicit interval cap (for the sensitivity sweep).
pub fn branch_resolution_capped(params: &ModelParams, inputs: &ModelInputs, cap: f64) -> f64 {
    let interval = (1.0 / inputs.mpu_br.max(RATE_FLOOR)).min(cap);
    params.get(1)
        * interval.powf(params.get(2))
        * (1.0 + params.get(3) * inputs.fp)
        * (1.0 + params.get(4) * inputs.mpu_dl1)
}

/// Eq. 3 — the MLP correction factor.
///
/// `MLP = b5 · (mpµ_DL2)^b6 · (mpµ_DTLB)^b7`, clamped to at least 1 (a
/// memory access cannot overlap with fewer than itself).
pub fn mlp_correction(params: &ModelParams, inputs: &ModelInputs) -> f64 {
    let mlp = params.get(5)
        * inputs.mpu_dl2.max(RATE_FLOOR).powf(params.get(6))
        * inputs.mpu_dtlb.max(RATE_FLOOR).powf(params.get(7));
    mlp.clamp(1.0, 1e4)
}

/// Eq. 5 — the undamped resource-stall component `c'_stall`, per µop.
///
/// `c'_stall = b8 · (1 + b9·fp) · (1 + b10·mpµ_DL1)`
pub fn raw_stall(params: &ModelParams, inputs: &ModelInputs) -> f64 {
    params.get(8) * (1.0 + params.get(9) * inputs.fp) * (1.0 + params.get(10) * inputs.mpu_dl1)
}

/// Eq. 6 — total miss-event cycles per µop, `c_miss = Σ mᵢ·cᵢ / N`: the sum
/// of all the miss components of Eq. 1.
pub fn miss_cycles(arch: &MicroarchParams, params: &ModelParams, inputs: &ModelInputs) -> f64 {
    let mlp = mlp_correction(params, inputs);
    let cbr = branch_resolution(params, inputs);
    inputs.mpu_l1i * arch.c_l2
        + inputs.mpu_llci * arch.c_mem
        + inputs.mpu_itlb * arch.c_tlb
        + inputs.mpu_br * (cbr + arch.fe_depth)
        + memory_term(inputs.mpu_dl2, arch.c_mem, mlp)
        + memory_term(inputs.mpu_dtlb, arch.c_tlb, mlp)
}

/// Eq. 4 — the damped resource-stall component, per µop.
///
/// `c_stall = max(0, 1 − c_miss/(N/D + c'_stall)) · c'_stall`: resource
/// stalls shrink as miss events eat the intervals between them.
pub fn resource_stall(arch: &MicroarchParams, params: &ModelParams, inputs: &ModelInputs) -> f64 {
    let raw = raw_stall(params, inputs);
    let miss = miss_cycles(arch, params, inputs);
    let damping = 1.0 - miss / (1.0 / arch.width + raw).max(RATE_FLOOR);
    damping.max(0.0) * raw
}

/// A memory term of Eq. 1 (`m·c / MLP`), zero when there are no misses.
fn memory_term(rate: f64, latency: f64, mlp: f64) -> f64 {
    if rate <= 0.0 {
        0.0
    } else {
        rate * latency / mlp
    }
}

/// Eq. 1 divided by `N`: the predicted cycles per µop.
pub fn predict_cpi(arch: &MicroarchParams, params: &ModelParams, inputs: &ModelInputs) -> f64 {
    let mlp = mlp_correction(params, inputs);
    let cbr = branch_resolution(params, inputs);
    1.0 / arch.width
        + inputs.mpu_l1i * arch.c_l2
        + inputs.mpu_llci * arch.c_mem
        + inputs.mpu_itlb * arch.c_tlb
        + inputs.mpu_br * (cbr + arch.fe_depth)
        + memory_term(inputs.mpu_dl2, arch.c_mem, mlp)
        + memory_term(inputs.mpu_dtlb, arch.c_tlb, mlp)
        + resource_stall(arch, params, inputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> MicroarchParams {
        MicroarchParams::new(4.0, 14.0, 19.0, 169.0, 30.0)
    }

    fn inputs() -> ModelInputs {
        ModelInputs {
            mpu_br: 0.005,
            mpu_l1i: 0.001,
            mpu_llci: 0.0001,
            mpu_itlb: 0.0002,
            mpu_dl1: 0.02,
            mpu_dl2: 0.004,
            mpu_dtlb: 0.001,
            fp: 0.1,
            measured_cpi: 1.5,
        }
    }

    #[test]
    fn prediction_is_at_least_base() {
        let p = ModelParams::initial_guess();
        let cpi = predict_cpi(&arch(), &p, &inputs());
        assert!(cpi >= 0.25, "cpi {cpi} below 1/D");
        assert!(cpi.is_finite());
    }

    #[test]
    fn branch_resolution_grows_with_interval_until_cap() {
        let p = ModelParams::initial_guess();
        let mut few = inputs();
        few.mpu_br = 1.0 / 64.0; // interval 64 < cap
        let mut fewer = inputs();
        fewer.mpu_br = 1.0 / 120.0; // interval 120 < cap
        let mut rare = inputs();
        rare.mpu_br = 1e-6; // interval 1e6 → capped at 128
        let c1 = branch_resolution(&p, &few);
        let c2 = branch_resolution(&p, &fewer);
        let c3 = branch_resolution(&p, &rare);
        assert!(c2 > c1, "longer interval → longer resolution");
        let mut capped = inputs();
        capped.mpu_br = 1.0 / 128.0;
        assert!(
            (c3 - branch_resolution(&p, &capped)).abs() < 1e-9,
            "cap binds"
        );
    }

    #[test]
    fn fp_and_l1d_factors_lengthen_resolution() {
        let p = ModelParams::initial_guess();
        let base = branch_resolution(&p, &inputs());
        let mut fpheavy = inputs();
        fpheavy.fp = 0.4;
        assert!(branch_resolution(&p, &fpheavy) > base);
        let mut missy = inputs();
        missy.mpu_dl1 = 0.08;
        assert!(branch_resolution(&p, &missy) > base);
    }

    #[test]
    fn mlp_grows_with_miss_rate_for_positive_exponent() {
        let p = ModelParams::from_slice(&[1.0, 0.5, 1.0, 10.0, 30.0, 0.4, 0.0, 0.3, 2.0, 20.0]);
        let mut sparse = inputs();
        sparse.mpu_dl2 = 1e-4;
        let mut dense = inputs();
        dense.mpu_dl2 = 1e-2;
        assert!(mlp_correction(&p, &dense) > mlp_correction(&p, &sparse));
    }

    #[test]
    fn mlp_is_clamped_to_at_least_one() {
        let p = ModelParams::from_slice(&[1.0, 0.5, 1.0, 10.0, 0.05, 1.0, 1.0, 0.3, 2.0, 20.0]);
        let mut tiny = inputs();
        tiny.mpu_dl2 = 1e-8;
        tiny.mpu_dtlb = 1e-8;
        assert_eq!(mlp_correction(&p, &tiny), 1.0);
    }

    #[test]
    fn zero_miss_rates_zero_the_memory_terms() {
        let p = ModelParams::initial_guess();
        let mut no_mem = inputs();
        no_mem.mpu_dl2 = 0.0;
        no_mem.mpu_dtlb = 0.0;
        let cpi = predict_cpi(&arch(), &p, &no_mem);
        assert!(cpi.is_finite());
        // Rebuild by hand without memory terms: must match.
        let cbr = branch_resolution(&p, &no_mem);
        let expect = 0.25
            + no_mem.mpu_l1i * 19.0
            + no_mem.mpu_llci * 169.0
            + no_mem.mpu_itlb * 30.0
            + no_mem.mpu_br * (cbr + 14.0)
            + resource_stall(&arch(), &p, &no_mem);
        assert!((cpi - expect).abs() < 1e-12);
    }

    #[test]
    fn stall_damping_shrinks_with_miss_pressure() {
        let p = ModelParams::initial_guess();
        let calm = inputs();
        let mut stormy = inputs();
        stormy.mpu_dl2 = 0.05; // drown the run in misses
        let calm_stall = resource_stall(&arch(), &p, &calm);
        let stormy_stall = resource_stall(&arch(), &p, &stormy);
        assert!(
            stormy_stall < calm_stall,
            "more misses → fewer resource stalls ({stormy_stall} vs {calm_stall})"
        );
        assert!(
            stormy_stall >= 0.0,
            "max(0, ·) keeps the component positive"
        );
    }

    #[test]
    fn prediction_decomposes_into_terms() {
        // predict_cpi must equal base + miss components + stall.
        let p = ModelParams::initial_guess();
        let i = inputs();
        let a = arch();
        let total = predict_cpi(&a, &p, &i);
        let parts = 1.0 / a.width + miss_cycles(&a, &p, &i) + resource_stall(&a, &p, &i);
        assert!((total - parts).abs() < 1e-12);
    }
}
