//! The unified pipeline API: one way to run the paper's Fig. 1 workflow.
//!
//! Every consumer of this reproduction — the CLI, the examples, the
//! experiment campaign, the integration tests — needs the same four-stage
//! pipeline: **collect** performance counters, **fit** the Eq. 1–6 model,
//! read off **CPI (delta) stacks**, and **export** the results. This
//! module packages that pipeline as a builder, [`Workbench`], over a
//! pluggable [`CounterSource`]:
//!
//! * [`SimSource`] — the built-in out-of-order simulator (the seeded
//!   "measurement campaign" the paper ran on real Intel machines),
//! * [`CsvSource`] — counter CSVs from real hardware (perfex/perfmon
//!   logs exported through `pmu::csv`),
//! * [`RecordsSource`] — in-memory records, for tests and embedding.
//!
//! Multi-machine collection runs on a single work-stealing pool under one
//! thread budget ([`Workbench::threads`], `0` = auto): the simulator
//! flattens the whole campaign into (machine × benchmark) work items whose
//! output slots are pre-assigned in sequential order, so any schedule —
//! and any thread count — produces **byte-identical** records to the
//! sequential path. Failures at any stage surface as one typed
//! [`PipelineError`] that says *which stage* (source → fit → export) and
//! *which machine* went wrong.
//!
//! # Examples
//!
//! The end-to-end flow on two simulated machines:
//!
//! ```
//! use memodel::workbench::{SimSource, Workbench};
//! use memodel::FitOptions;
//! use oosim::machine::MachineConfig;
//! use pmu::{MachineId, Suite};
//!
//! let suite: Vec<_> = specgen::suites::cpu2000().into_iter().take(12).collect();
//! let fitted = Workbench::new()
//!     .machine(MachineConfig::pentium4())
//!     .machine(MachineConfig::core2())
//!     .source(SimSource::new().suite(suite).uops(20_000).seed(42))
//!     .fit_options(FitOptions::quick())
//!     .collect()
//!     .expect("simulation cannot fail")
//!     .fit()
//!     .expect("12 records are enough for 10 parameters");
//! let delta = fitted
//!     .delta(MachineId::Pentium4, MachineId::Core2, Suite::Cpu2000)
//!     .expect("both machines were collected");
//! println!("Core 2 vs Pentium 4: {delta}");
//! for group in fitted.groups() {
//!     for (benchmark, stack) in group.stacks() {
//!         println!("{benchmark}: {stack}");
//!     }
//! }
//! ```

use crate::delta::{suite_delta, DeltaStacks};
use crate::export;
use crate::fit::{FitError, FitOptions, InferredModel};
use crate::params::MicroarchParams;
use crate::stack::CpiStack;
use oosim::machine::MachineConfig;
use pmu::csv::ParseCsvError;
use pmu::{MachineId, RunRecord, Suite};
use specgen::WorkloadProfile;
use std::fmt;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Error from a [`CounterSource`] — the pipeline's first stage.
#[derive(Debug)]
#[non_exhaustive]
pub enum SourceError {
    /// Reading the backing file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// Parsing counter data failed.
    Parse {
        /// Where the data came from (a path, or `"<memory>"`).
        origin: String,
        /// The underlying error.
        error: ParseCsvError,
    },
    /// The source has no records for a requested machine.
    NoRecords {
        /// The machine nothing was found for.
        machine: MachineId,
        /// The source's self-description.
        source: String,
    },
    /// The source needs a full [`MachineConfig`], but the pipeline only
    /// has microarchitectural constants for this machine.
    NeedsMachineConfig {
        /// The machine missing a config.
        machine: MachineId,
    },
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Io { path, error } => {
                write!(f, "reading `{}` failed: {error}", path.display())
            }
            SourceError::Parse { origin, error } => {
                write!(f, "parsing counters from {origin} failed: {error}")
            }
            SourceError::NoRecords { machine, source } => {
                write!(
                    f,
                    "{source} has no records for machine `{}`",
                    machine.name()
                )
            }
            SourceError::NeedsMachineConfig { machine } => write!(
                f,
                "the simulator source needs a full MachineConfig for `{}`, \
                 not just microarchitectural constants",
                machine.name()
            ),
        }
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SourceError::Io { error, .. } => Some(error),
            SourceError::Parse { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// One typed error for the whole pipeline, tagged by stage: configuration,
/// source (collect), fit, or export. This is the only error type
/// `Workbench` users handle, end to end.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// The pipeline was assembled inconsistently (no source, no machines,
    /// a delta between uncollected machines, …).
    Config(String),
    /// The collect stage failed.
    Source(SourceError),
    /// The fit stage failed for one (machine, suite) group.
    Fit {
        /// The machine whose model could not be inferred.
        machine: MachineId,
        /// The suite group (`None` when suites were pooled).
        suite: Option<Suite>,
        /// The underlying fit error.
        error: FitError,
    },
    /// The export stage failed to write a file.
    Export {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Config(msg) => write!(f, "pipeline configuration: {msg}"),
            PipelineError::Source(e) => write!(f, "collect stage: {e}"),
            PipelineError::Fit {
                machine,
                suite,
                error,
            } => match suite {
                Some(suite) => write!(f, "fit stage ({} / {suite}): {error}", machine.name()),
                None => write!(f, "fit stage ({}): {error}", machine.name()),
            },
            PipelineError::Export { path, error } => {
                write!(f, "export stage (`{}`): {error}", path.display())
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Source(e) => Some(e),
            PipelineError::Fit { error, .. } => Some(error),
            PipelineError::Export { error, .. } => Some(error),
            PipelineError::Config(_) => None,
        }
    }
}

impl From<SourceError> for PipelineError {
    fn from(e: SourceError) -> Self {
        PipelineError::Source(e)
    }
}

// ---------------------------------------------------------------------------
// Machines
// ---------------------------------------------------------------------------

/// One machine the pipeline models: its identity, the five
/// microarchitectural constants the model needs, and — when the machine is
/// simulated rather than real — the full simulator configuration.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    id: MachineId,
    arch: MicroarchParams,
    config: Option<MachineConfig>,
}

impl MachineSpec {
    /// A real machine: known constants, no simulator config. This is the
    /// hardware path — counters must come from a [`CsvSource`] or
    /// [`RecordsSource`].
    pub fn real(id: MachineId, arch: MicroarchParams) -> Self {
        Self {
            id,
            arch,
            config: None,
        }
    }

    /// Attaches a simulator config while keeping the constants set so
    /// far — a simulated machine fitted with *calibrated* (rather than
    /// spec-sheet) latencies, as in the `calibrate_latencies` example.
    pub fn with_config(mut self, config: MachineConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// The machine's identity.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// The microarchitectural constants (Table 2) used for fitting.
    pub fn arch(&self) -> &MicroarchParams {
        &self.arch
    }

    /// The simulator configuration, if this machine is simulated.
    pub fn config(&self) -> Option<&MachineConfig> {
        self.config.as_ref()
    }
}

impl From<MachineConfig> for MachineSpec {
    fn from(config: MachineConfig) -> Self {
        Self {
            id: config.id,
            arch: MicroarchParams::from_machine(&config),
            config: Some(config),
        }
    }
}

impl From<&MachineConfig> for MachineSpec {
    fn from(config: &MachineConfig) -> Self {
        Self::from(config.clone())
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Where counter records come from — the pluggable first stage of the
/// pipeline.
///
/// Implementations must be [`Sync`]: the workbench collects machines on
/// parallel threads, each calling [`CounterSource::collect`] through a
/// shared reference. `collect` must be deterministic per machine so the
/// parallel and sequential paths agree byte for byte.
pub trait CounterSource: Sync {
    /// One-line self-description for error messages and banners.
    fn describe(&self) -> String;

    /// The machines this source can enumerate on its own (`None` when the
    /// pipeline must name machines explicitly, as with the simulator).
    fn machine_ids(&self) -> Option<Vec<MachineId>>;

    /// Collects every record for one machine. `threads` is the budget for
    /// internal fan-out (1 = strictly sequential).
    fn collect(&self, machine: &MachineSpec, threads: usize)
        -> Result<Vec<RunRecord>, SourceError>;

    /// Collects every machine of a campaign under **one** thread budget
    /// (the returned vector is parallel to `specs`).
    ///
    /// The default fans machines out across at most `threads` scoped
    /// workers pulling from a shared atomic work index, each collecting
    /// one machine sequentially — so the budget is an upper bound on live
    /// threads rather than a per-machine multiplier. Sources that can
    /// parallelise *within* a machine (the simulator) override this with
    /// a finer-grained pool. Every implementation must return records in
    /// an order independent of the schedule.
    fn collect_all(
        &self,
        specs: &[MachineSpec],
        threads: usize,
    ) -> Vec<Result<Vec<RunRecord>, SourceError>> {
        let workers = threads.clamp(1, specs.len().max(1));
        if workers == 1 {
            return specs.iter().map(|s| self.collect(s, 1)).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<Vec<RunRecord>, SourceError>>> = Vec::new();
        slots.resize_with(specs.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(spec) = specs.get(i) else {
                                break done;
                            };
                            done.push((i, self.collect(spec, 1)));
                        }
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in join_unwinding(handle) {
                    slots[i] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every machine was collected"))
            .collect()
    }
}

/// Counter collection by running the built-in out-of-order simulator —
/// the paper's measurement campaign, minus the machine room.
///
/// Configure suites (defaults to both paper suites when none are given),
/// the per-benchmark µop budget, the warm-up budget, and the campaign
/// seed. With a thread budget above one, a machine's suites are simulated
/// on parallel threads; each workload is seeded independently, so results
/// do not depend on the schedule.
#[derive(Debug, Clone)]
pub struct SimSource {
    suites: Vec<Vec<WorkloadProfile>>,
    uops: u64,
    /// Warm-up µops per run; `None` = warm for the measurement budget
    /// (the historical 2×-cost default).
    warmup: Option<u64>,
    seed: u64,
}

impl SimSource {
    /// A simulator source with no suites yet (collect uses both paper
    /// suites if none are added).
    pub fn new() -> Self {
        Self {
            suites: Vec::new(),
            uops: oosim::run::DEFAULT_UOPS,
            warmup: None,
            seed: 42,
        }
    }

    /// A source preloaded with both full paper suites (48 + 55
    /// benchmark–input pairs).
    pub fn paper_suites() -> Self {
        Self::new()
            .suite(specgen::suites::cpu2000())
            .suite(specgen::suites::cpu2006())
    }

    /// Adds one suite (a parallel collection chunk) to the campaign.
    pub fn suite(mut self, profiles: Vec<WorkloadProfile>) -> Self {
        self.suites.push(profiles);
        self
    }

    /// Sets the µop budget per benchmark run.
    pub fn uops(mut self, uops: u64) -> Self {
        self.uops = uops;
        self
    }

    /// Sets the warm-up budget per benchmark run in µops. The default
    /// warms for the full measurement budget (caches, TLBs and the
    /// predictor see `uops` µops before counting starts — a 2× total
    /// simulation cost); campaigns whose workloads reach stationary
    /// counter rates sooner can cut the bill with a smaller budget.
    /// Changing the warm-up changes the measured records (and therefore
    /// every digest downstream) — it is a *campaign* knob, not a
    /// scheduling knob.
    pub fn warmup(mut self, warmup: u64) -> Self {
        self.warmup = Some(warmup);
        self
    }

    /// Sets the campaign seed (every workload derives its stream from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Convenience: collects sequentially for one fully-configured
    /// simulated machine (the simulator cannot fail when a config is
    /// present).
    pub fn collect_config(&self, machine: &MachineConfig) -> Vec<RunRecord> {
        self.collect(&machine.into(), 1)
            .expect("the simulator source cannot fail for a configured machine")
    }

    fn effective_suites(&self) -> Vec<Vec<WorkloadProfile>> {
        if self.suites.is_empty() {
            vec![specgen::suites::cpu2000(), specgen::suites::cpu2006()]
        } else {
            self.suites.clone()
        }
    }

    /// Runs the flattened `(machine × benchmark)` work-list on `workers`
    /// threads pulling items from one shared atomic index — the
    /// work-stealing pool behind both `collect` and `collect_all`.
    ///
    /// Determinism: each item's output slot is assigned *before* any worker
    /// starts (item `i` writes slot `i`, and the item list is in exact
    /// sequential order: machine-major, then suite, then benchmark), and
    /// every workload is independently seeded, so which worker simulates
    /// which benchmark — and in what order — can never change a single
    /// record byte. Each worker reuses one [`oosim::pipeline::SimScratch`]
    /// across all its items (machine switches included; `prepare` resizes).
    fn run_pool(
        &self,
        items: &[(&MachineConfig, &WorkloadProfile)],
        workers: usize,
    ) -> Vec<RunRecord> {
        let warmup = self.warmup.unwrap_or(self.uops);
        let run_one = |(config, profile): &(&MachineConfig, &WorkloadProfile),
                       scratch: &mut oosim::pipeline::SimScratch| {
            oosim::run::run_workload_with(
                config,
                profile,
                warmup,
                self.uops,
                self.seed,
                &mut oosim::observer::NullObserver,
                scratch,
            )
        };
        if workers <= 1 {
            let mut scratch = oosim::pipeline::SimScratch::new();
            return items
                .iter()
                .map(|item| run_one(item, &mut scratch))
                .collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<RunRecord>> = vec![None; items.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = oosim::pipeline::SimScratch::new();
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(item) = items.get(i) else {
                                break done;
                            };
                            done.push((i, run_one(item, &mut scratch)));
                        }
                    })
                })
                .collect();
            for handle in handles {
                for (i, record) in join_unwinding(handle) {
                    slots[i] = Some(record);
                }
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every work item was simulated"))
            .collect()
    }
}

impl Default for SimSource {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterSource for SimSource {
    fn describe(&self) -> String {
        let n: usize = self.effective_suites().iter().map(Vec::len).sum();
        match self.warmup {
            Some(warmup) => format!(
                "simulator campaign ({n} benchmarks, {} µops each after {warmup} warm-up, seed {})",
                self.uops, self.seed
            ),
            None => format!(
                "simulator campaign ({n} benchmarks, {} µops each, seed {})",
                self.uops, self.seed
            ),
        }
    }

    fn machine_ids(&self) -> Option<Vec<MachineId>> {
        None // the simulator needs full configs from the pipeline
    }

    fn collect(
        &self,
        machine: &MachineSpec,
        threads: usize,
    ) -> Result<Vec<RunRecord>, SourceError> {
        self.collect_all(std::slice::from_ref(machine), threads)
            .pop()
            .expect("one spec in, one result out")
    }

    /// The work-stealing pool: every `(machine, benchmark)` pair of the
    /// campaign becomes one item in a single flattened work-list shared by
    /// at most `threads` workers — so the budget never multiplies across
    /// machines, and no worker idles behind a heavy suite while another
    /// machine still has benchmarks queued. Output slots are pre-assigned
    /// in sequential order; see [`SimSource::run_pool`] for why any
    /// schedule yields byte-identical records.
    fn collect_all(
        &self,
        specs: &[MachineSpec],
        threads: usize,
    ) -> Vec<Result<Vec<RunRecord>, SourceError>> {
        let suites = self.effective_suites();
        let benchmarks: Vec<&WorkloadProfile> = suites.iter().flatten().collect();
        // Machine-major, suite-order, benchmark-order: the exact sequential
        // record order, so machine `m`'s records are the contiguous slot
        // range starting at its offset.
        let mut items: Vec<(&MachineConfig, &WorkloadProfile)> = Vec::new();
        for spec in specs {
            if let Some(config) = spec.config() {
                items.extend(benchmarks.iter().map(|&p| (config, p)));
            }
        }
        let workers = threads.clamp(1, items.len().max(1));
        let mut records = self.run_pool(&items, workers).into_iter();
        specs
            .iter()
            .map(|spec| {
                if spec.config().is_some() {
                    Ok(records.by_ref().take(benchmarks.len()).collect())
                } else {
                    Err(SourceError::NeedsMachineConfig { machine: spec.id })
                }
            })
            .collect()
    }
}

/// Counter records parsed from a `pmu::csv` file — the real-hardware
/// path: run SPEC under perfex/perfmon, export a CSV, fit here.
#[derive(Debug, Clone)]
pub struct CsvSource {
    origin: String,
    records: Vec<RunRecord>,
}

impl CsvSource {
    /// Reads and parses a counters CSV from disk.
    ///
    /// # Errors
    ///
    /// [`SourceError::Io`] when the file cannot be read,
    /// [`SourceError::Parse`] when it is not a valid counters CSV.
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, SourceError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|error| SourceError::Io {
            path: path.to_path_buf(),
            error,
        })?;
        Self::parse(&text, path.display().to_string())
    }

    /// Parses counters CSV text already in memory.
    ///
    /// # Errors
    ///
    /// [`SourceError::Parse`] when the text is not a valid counters CSV.
    pub fn from_text(text: &str) -> Result<Self, SourceError> {
        Self::parse(text, "<memory>".to_owned())
    }

    fn parse(text: &str, origin: String) -> Result<Self, SourceError> {
        let records = pmu::csv::from_csv(text).map_err(|error| SourceError::Parse {
            origin: origin.clone(),
            error,
        })?;
        Ok(Self { origin, records })
    }

    /// All parsed records, before any per-machine filtering.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }
}

impl CounterSource for CsvSource {
    fn describe(&self) -> String {
        format!(
            "counters CSV `{}` ({} records)",
            self.origin,
            self.records.len()
        )
    }

    fn machine_ids(&self) -> Option<Vec<MachineId>> {
        Some(distinct_machines(&self.records))
    }

    fn collect(
        &self,
        machine: &MachineSpec,
        _threads: usize,
    ) -> Result<Vec<RunRecord>, SourceError> {
        filter_records(&self.records, machine.id, || self.describe())
    }
}

/// In-memory records as a source — for tests, embedding, and replaying a
/// previous collection without touching disk.
#[derive(Debug, Clone)]
pub struct RecordsSource {
    records: Vec<RunRecord>,
}

impl RecordsSource {
    /// Wraps a record set.
    pub fn new(records: Vec<RunRecord>) -> Self {
        Self { records }
    }
}

impl From<Vec<RunRecord>> for RecordsSource {
    fn from(records: Vec<RunRecord>) -> Self {
        Self::new(records)
    }
}

impl CounterSource for RecordsSource {
    fn describe(&self) -> String {
        format!("in-memory records ({})", self.records.len())
    }

    fn machine_ids(&self) -> Option<Vec<MachineId>> {
        Some(distinct_machines(&self.records))
    }

    fn collect(
        &self,
        machine: &MachineSpec,
        _threads: usize,
    ) -> Result<Vec<RunRecord>, SourceError> {
        filter_records(&self.records, machine.id, || self.describe())
    }
}

fn distinct_machines(records: &[RunRecord]) -> Vec<MachineId> {
    let mut ids = Vec::new();
    for r in records {
        if !ids.contains(&r.machine()) {
            ids.push(r.machine());
        }
    }
    ids
}

fn filter_records(
    records: &[RunRecord],
    id: MachineId,
    describe: impl Fn() -> String,
) -> Result<Vec<RunRecord>, SourceError> {
    let picked: Vec<RunRecord> = records
        .iter()
        .filter(|r| r.machine() == id)
        .cloned()
        .collect();
    if picked.is_empty() {
        return Err(SourceError::NoRecords {
            machine: id,
            source: describe(),
        });
    }
    Ok(picked)
}

/// Joins a scoped worker, re-raising its panic with the original payload
/// (a bare `expect` would bury the actionable message under `Any { .. }`).
fn join_unwinding<T>(handle: std::thread::ScopedJoinHandle<'_, T>) -> T {
    match handle.join() {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

// ---------------------------------------------------------------------------
// The workbench builder
// ---------------------------------------------------------------------------

/// How collected records are grouped for fitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Grouping {
    /// One model per (machine, suite) pair — the paper's protocol, which
    /// enables cross-suite robustness checks.
    #[default]
    MachineSuite,
    /// One model per machine, pooling all suites — the pragmatic hardware
    /// path when suite membership is incidental.
    Machine,
}

/// Builder for the measurement-and-modeling pipeline. See the
/// [module docs](self) for the full picture.
pub struct Workbench {
    specs: Vec<MachineSpec>,
    default_arch: Option<MicroarchParams>,
    source: Option<Box<dyn CounterSource>>,
    options: FitOptions,
    grouping: Grouping,
    parallel: bool,
    threads: usize,
}

impl Default for Workbench {
    fn default() -> Self {
        Self::new()
    }
}

impl Workbench {
    /// An empty workbench: add machines and a source, then `collect()`.
    pub fn new() -> Self {
        Self {
            specs: Vec::new(),
            default_arch: None,
            source: None,
            options: FitOptions::default(),
            grouping: Grouping::default(),
            parallel: true,
            threads: 0,
        }
    }

    /// Adds one machine (a [`MachineConfig`] for simulated machines, or a
    /// [`MachineSpec::real`] for real hardware).
    pub fn machine(mut self, spec: impl Into<MachineSpec>) -> Self {
        self.specs.push(spec.into());
        self
    }

    /// Adds several machines at once.
    pub fn machines<I>(mut self, specs: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<MachineSpec>,
    {
        self.specs.extend(specs.into_iter().map(Into::into));
        self
    }

    /// Applies one set of microarchitectural constants to *every* machine
    /// of the pipeline: those named with `.machine(...)` (overriding the
    /// constants their specs carry — e.g. fitting a simulated machine
    /// with calibrated rather than spec-sheet latencies) and, when none
    /// are named, every machine the source enumerates — the CLI path,
    /// where the user states width/depth/latencies once for the CSV they
    /// measured.
    pub fn arch(mut self, arch: MicroarchParams) -> Self {
        self.default_arch = Some(arch);
        self
    }

    /// Plugs in the counter source.
    pub fn source(mut self, source: impl CounterSource + 'static) -> Self {
        self.source = Some(Box::new(source));
        self
    }

    /// Sets the fit options used by [`Collected::fit`].
    pub fn fit_options(mut self, options: FitOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets how records group into models (default: per machine × suite).
    pub fn grouping(mut self, grouping: Grouping) -> Self {
        self.grouping = grouping;
        self
    }

    /// Enables or disables thread fan-out (default: enabled). The
    /// sequential path produces byte-identical records; disabling is only
    /// useful for measurement baselines and debugging.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Sets the collection thread budget (`0` = one worker per hardware
    /// thread). This is the **total** budget for the whole campaign — the
    /// source's pool spreads it across every (machine × benchmark) work
    /// item, so it never multiplies with the machine count. Purely a
    /// scheduling knob: records are byte-identical for every value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs the collection stage: every machine's records from the source,
    /// machines fanned out across scoped threads when parallelism is on.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Config`] when no source is set or no machines can
    /// be determined; [`PipelineError::Source`] when the source fails.
    pub fn collect(self) -> Result<Collected, PipelineError> {
        let source = self.source.as_deref().ok_or_else(|| {
            PipelineError::Config("no counter source set — call .source(...)".into())
        })?;
        let specs: Vec<MachineSpec> = if !self.specs.is_empty() {
            let mut specs = self.specs.clone();
            if let Some(arch) = self.default_arch {
                // .arch(...) overrides every named machine's constants —
                // silently ignoring it would fit a different model than
                // the caller asked for.
                for spec in &mut specs {
                    spec.arch = arch;
                }
            }
            specs
        } else {
            let ids = source.machine_ids().ok_or_else(|| {
                PipelineError::Config(format!(
                    "{} cannot enumerate machines — add them with .machine(...)",
                    source.describe()
                ))
            })?;
            let arch = self.default_arch.ok_or_else(|| {
                PipelineError::Config(
                    "machines inferred from the source need constants — call .arch(...) \
                     or add full .machine(...) specs"
                        .into(),
                )
            })?;
            if ids.is_empty() {
                return Err(PipelineError::Config(format!(
                    "{} contains no machines",
                    source.describe()
                )));
            }
            ids.into_iter()
                .map(|id| MachineSpec::real(id, arch))
                .collect()
        };
        for (i, spec) in specs.iter().enumerate() {
            if specs[..i].iter().any(|s| s.id() == spec.id()) {
                // The serving layer stores records per machine id, so two
                // specs for one machine would silently merge campaigns.
                return Err(PipelineError::Config(format!(
                    "machine `{}` was added twice",
                    spec.id().name()
                )));
            }
        }

        // One budget for the whole campaign: the source's pool decides how
        // to spread it across machines and benchmarks (historically the
        // per-machine fan-out here *multiplied* with the source's inner
        // suite workers — machines × threads live threads on a 2-core box).
        let budget = if !self.parallel {
            1
        } else if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let results = source.collect_all(&specs, budget);
        let mut records = Vec::with_capacity(specs.len());
        for result in results {
            records.push(result?);
        }
        Ok(Collected {
            specs,
            records,
            options: self.options,
            grouping: self.grouping,
            parallel: self.parallel,
        })
    }
}

impl fmt::Debug for Workbench {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workbench")
            .field(
                "machines",
                &self.specs.iter().map(MachineSpec::id).collect::<Vec<_>>(),
            )
            .field("source", &self.source.as_ref().map(|s| s.describe()))
            .field("grouping", &self.grouping)
            .field("parallel", &self.parallel)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Collected → Fitted
// ---------------------------------------------------------------------------

/// Output of the collect stage: per-machine record sets, ready to fit or
/// export.
#[derive(Debug, Clone)]
pub struct Collected {
    specs: Vec<MachineSpec>,
    /// Parallel to `specs`.
    records: Vec<Vec<RunRecord>>,
    options: FitOptions,
    grouping: Grouping,
    parallel: bool,
}

impl Collected {
    /// The machines collected, in pipeline order.
    pub fn machines(&self) -> Vec<MachineId> {
        self.specs.iter().map(MachineSpec::id).collect()
    }

    /// One machine's records.
    pub fn machine_records(&self, id: MachineId) -> Option<&[RunRecord]> {
        self.specs
            .iter()
            .position(|s| s.id() == id)
            .map(|i| self.records[i].as_slice())
    }

    /// All records, machine-major, in deterministic pipeline order.
    pub fn records(&self) -> impl Iterator<Item = &RunRecord> {
        self.records.iter().flatten()
    }

    /// Serializes every record as a `pmu::csv` counters CSV.
    pub fn to_csv(&self) -> String {
        let all: Vec<RunRecord> = self.records().cloned().collect();
        pmu::csv::to_csv(&all)
    }

    /// Writes the counters CSV to disk.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Export`] when the file cannot be written.
    pub fn export_to(&self, path: impl AsRef<Path>) -> Result<(), PipelineError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_csv()).map_err(|error| PipelineError::Export {
            path: path.to_path_buf(),
            error,
        })
    }

    /// Runs the fit stage: one model per group (machine × suite by
    /// default). Implemented on top of an ephemeral
    /// [`CpiService`](crate::service::CpiService) — the workbench registers
    /// its machines, ingests the collected records, and submits one
    /// [`Group`](crate::service::Request::Group) request per model, so the
    /// one-shot path and the long-lived serving path share a single
    /// fitting code path. With parallelism on, groups fan out across the
    /// service's worker shards; fitting is deterministic, so the threading
    /// never changes results.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Fit`] naming the first group whose inference
    /// failed.
    pub fn fit(self) -> Result<Fitted, PipelineError> {
        use crate::service::{CpiService, ModelKey, Response, ServiceConfig, ServiceError};

        // Deterministic group order: specs in pipeline order, suites in
        // Suite::ALL order, empty groups skipped.
        let mut keys: Vec<ModelKey> = Vec::new();
        for (spec, records) in self.specs.iter().zip(&self.records) {
            match self.grouping {
                Grouping::Machine => {
                    keys.push(ModelKey::pooled(spec.id(), self.options.clone()));
                }
                Grouping::MachineSuite => {
                    for suite in Suite::ALL {
                        if records.iter().any(|r| r.suite() == suite) {
                            keys.push(ModelKey::new(spec.id(), Some(suite), self.options.clone()));
                        }
                    }
                }
            }
        }

        let workers = if self.parallel { keys.len().max(1) } else { 1 };
        let service = CpiService::start(
            ServiceConfig::new()
                .with_workers(workers)
                .with_cache_capacity(keys.len().max(1)),
        );
        let client = service.client();
        let stopped = || PipelineError::Config("the fitting service stopped early".into());
        for (spec, records) in self.specs.iter().zip(self.records) {
            client.register(spec.clone()).map_err(|_| stopped())?;
            client.ingest(records).map_err(|_| stopped())?;
        }

        // Submit every group before collecting any, so shards fit in
        // parallel — pinned round-robin (one group per worker), since hash
        // placement would collide some of these distinct one-shot keys
        // onto one shard and leave workers idle. Then drain in submission
        // order for deterministic (first-failing-group) error reporting.
        let streams: Vec<_> = keys
            .into_iter()
            .enumerate()
            .map(|(i, key)| client.submit_group_at(i, key))
            .collect();
        let mut groups = Vec::with_capacity(streams.len());
        for stream in streams {
            let mut found = None;
            for response in stream {
                match response {
                    Response::Group(group) => found = Some(*group),
                    Response::Error(ServiceError::Fit {
                        machine,
                        suite,
                        error,
                    }) => {
                        return Err(PipelineError::Fit {
                            machine,
                            suite,
                            error,
                        })
                    }
                    Response::Error(e) => {
                        return Err(PipelineError::Config(format!("fit service: {e}")))
                    }
                    _ => {}
                }
            }
            groups.push(found.ok_or_else(stopped)?);
        }
        drop(client);
        service.shutdown();
        Ok(Fitted { groups })
    }
}

/// One fitted model with the records it was trained on.
#[derive(Debug, Clone)]
pub struct FittedGroup {
    /// The machine modeled.
    pub machine: MachineId,
    /// The suite group (`None` when suites were pooled).
    pub suite: Option<Suite>,
    /// The constants the model was built with.
    pub arch: MicroarchParams,
    /// The inferred model.
    pub model: InferredModel,
    /// The training records, in collection order.
    pub records: Vec<RunRecord>,
}

impl FittedGroup {
    /// The model-estimated CPI stack per benchmark, in collection order —
    /// the paper's headline deliverable.
    pub fn stacks(&self) -> Vec<(&str, CpiStack)> {
        self.records
            .iter()
            .map(|r| (r.benchmark(), self.model.cpi_stack(r)))
            .collect()
    }

    /// This group's stacks as CSV (`memodel::export` format).
    pub fn stacks_csv(&self) -> String {
        export::stacks_csv(&self.model, &self.records)
    }

    /// This group's measured-vs-predicted dump as CSV.
    pub fn predictions_csv(&self) -> String {
        export::predictions_csv(&self.model, &self.records)
    }
}

/// Output of the fit stage: every group's model, stacks, deltas and
/// exports.
#[derive(Debug, Clone)]
pub struct Fitted {
    groups: Vec<FittedGroup>,
}

impl Fitted {
    /// Assembles a `Fitted` from groups produced elsewhere — e.g. by
    /// [`Group`](crate::service::Request::Group) requests against a
    /// long-lived [`CpiService`](crate::service::CpiService). Group order
    /// is preserved.
    pub fn from_groups(groups: Vec<FittedGroup>) -> Self {
        Self { groups }
    }

    /// All fitted groups, in pipeline order.
    pub fn groups(&self) -> &[FittedGroup] {
        &self.groups
    }

    /// The group for a machine and suite, if it was collected and fitted.
    /// With [`Grouping::Machine`], pass the machine's pooled group via
    /// [`Fitted::pooled_group`] instead.
    pub fn group(&self, machine: MachineId, suite: Suite) -> Option<&FittedGroup> {
        self.groups
            .iter()
            .find(|g| g.machine == machine && g.suite == Some(suite))
    }

    /// The pooled group for a machine (under [`Grouping::Machine`]).
    pub fn pooled_group(&self, machine: MachineId) -> Option<&FittedGroup> {
        self.groups
            .iter()
            .find(|g| g.machine == machine && g.suite.is_none())
    }

    /// The fitted model for a machine and suite.
    pub fn model(&self, machine: MachineId, suite: Suite) -> Option<&InferredModel> {
        self.group(machine, suite).map(|g| &g.model)
    }

    /// The training records for a machine and suite.
    pub fn records(&self, machine: MachineId, suite: Suite) -> Option<&[RunRecord]> {
        self.group(machine, suite).map(|g| g.records.as_slice())
    }

    /// CPI-delta stacks explaining `new` vs `old` on one suite (Fig. 6).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Config`] when either machine has no fitted group
    /// for `suite`.
    pub fn delta(
        &self,
        old: MachineId,
        new: MachineId,
        suite: Suite,
    ) -> Result<DeltaStacks, PipelineError> {
        let pick = |id: MachineId| {
            self.group(id, suite).ok_or_else(|| {
                PipelineError::Config(format!(
                    "no fitted group for machine `{}` on {suite} — was it collected?",
                    id.name()
                ))
            })
        };
        let (a, b) = (pick(old)?, pick(new)?);
        Ok(suite_delta(&a.model, &a.records, &b.model, &b.records))
    }

    /// Every group's CPI stacks as one CSV document. Groups beyond the
    /// first are separated by `# machine suite` comment lines so the file
    /// stays trivially splittable.
    pub fn stacks_csv(&self) -> String {
        let mut out = String::new();
        for (i, g) in self.groups.iter().enumerate() {
            if self.groups.len() > 1 {
                let suite = g.suite.map(|s| s.name()).unwrap_or("all");
                if i > 0 {
                    out.push('\n');
                }
                out.push_str(&format!("# {} {suite}\n", g.machine.name()));
            }
            out.push_str(&g.stacks_csv());
        }
        out
    }

    /// Writes [`Fitted::stacks_csv`] to disk.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Export`] when the file cannot be written.
    pub fn export_stacks_to(&self, path: impl AsRef<Path>) -> Result<(), PipelineError> {
        let path = path.as_ref();
        std::fs::write(path, self.stacks_csv()).map_err(|error| PipelineError::Export {
            path: path.to_path_buf(),
            error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_suite(n: usize) -> Vec<WorkloadProfile> {
        specgen::suites::cpu2000().into_iter().take(n).collect()
    }

    fn two_machine_bench(parallel: bool) -> Collected {
        Workbench::new()
            .machine(MachineConfig::pentium4())
            .machine(MachineConfig::core2())
            .source(SimSource::new().suite(small_suite(12)).uops(4_000).seed(99))
            .fit_options(FitOptions::quick())
            .parallel(parallel)
            .collect()
            .expect("sim collection succeeds")
    }

    #[test]
    fn arch_overrides_named_machine_constants() {
        // .arch(...) alongside .machine(config) fits with the given
        // constants (e.g. calibrated latencies), not the config's own.
        let override_arch = MicroarchParams::new(4.0, 14.0, 25.0, 200.0, 40.0);
        let fitted = Workbench::new()
            .machine(MachineConfig::core2())
            .arch(override_arch)
            .source(SimSource::new().suite(small_suite(12)).uops(4_000).seed(1))
            .fit_options(FitOptions::quick())
            .collect()
            .expect("collect")
            .fit()
            .expect("fit");
        let group = fitted
            .group(MachineId::Core2, Suite::Cpu2000)
            .expect("group");
        assert_eq!(group.arch, override_arch);
        assert_eq!(group.model.arch(), &override_arch);
    }

    #[test]
    fn suite_chunk_fanout_honours_budget_and_order() {
        // Three suite chunks under budgets 1, 2, 3 and 16: records always
        // come back in chunk order, regardless of worker count.
        let all = small_suite(9);
        let source = SimSource::new()
            .suite(all[0..3].to_vec())
            .suite(all[3..6].to_vec())
            .suite(all[6..9].to_vec())
            .uops(2_000)
            .seed(5);
        let machine = MachineConfig::core2();
        let sequential = source.collect(&(&machine).into(), 1).expect("collect");
        assert_eq!(sequential.len(), 9);
        for budget in [2, 3, 16] {
            let fanned = source.collect(&(&machine).into(), budget).expect("collect");
            assert_eq!(fanned, sequential, "budget {budget} reordered records");
        }
    }

    #[test]
    fn warmup_knob_defaults_to_full_and_scales_down() {
        let machine = MachineConfig::core2();
        let base = SimSource::new().suite(small_suite(3)).uops(8_000).seed(4);
        let implicit = base.clone().collect_config(&machine);
        // warmup(uops) is exactly the historical default.
        let explicit = base.clone().warmup(8_000).collect_config(&machine);
        assert_eq!(implicit, explicit);
        // A reduced warm-up is a different campaign (colder counters).
        let colder = base.warmup(1_000).collect_config(&machine);
        assert_ne!(implicit, colder);
        assert_eq!(colder.len(), 3);
    }

    #[test]
    fn parallel_collect_is_byte_identical_to_sequential() {
        let par = two_machine_bench(true);
        let seq = two_machine_bench(false);
        assert_eq!(par.to_csv(), seq.to_csv());
        assert_eq!(par.machines(), seq.machines());
    }

    #[test]
    fn parallel_and_sequential_fits_agree() {
        let par = two_machine_bench(true).fit().expect("fit");
        let seq = two_machine_bench(false).fit().expect("fit");
        assert_eq!(par.groups().len(), seq.groups().len());
        for (a, b) in par.groups().iter().zip(seq.groups()) {
            assert_eq!(a.machine, b.machine);
            assert_eq!(a.suite, b.suite);
            assert_eq!(a.model.params(), b.model.params());
        }
    }

    #[test]
    fn csv_source_round_trips_through_workbench() {
        let collected = two_machine_bench(true);
        let csv = collected.to_csv();
        let refit = Workbench::new()
            .machine(MachineConfig::pentium4())
            .machine(MachineConfig::core2())
            .source(CsvSource::from_text(&csv).expect("valid csv"))
            .fit_options(FitOptions::quick())
            .collect()
            .expect("csv collection succeeds");
        assert_eq!(refit.to_csv(), csv);
    }

    #[test]
    fn csv_source_enumerates_machines_with_shared_arch() {
        let csv = two_machine_bench(true).to_csv();
        let fitted = Workbench::new()
            .arch(MicroarchParams::new(4.0, 14.0, 19.0, 169.0, 30.0))
            .source(CsvSource::from_text(&csv).expect("valid csv"))
            .fit_options(FitOptions::quick())
            .grouping(Grouping::Machine)
            .collect()
            .expect("collection succeeds")
            .fit()
            .expect("fit succeeds");
        assert_eq!(fitted.groups().len(), 2);
        assert!(fitted.pooled_group(MachineId::Pentium4).is_some());
        assert!(fitted.pooled_group(MachineId::Core2).is_some());
    }

    #[test]
    fn records_source_feeds_tests_without_io() {
        let records: Vec<RunRecord> = two_machine_bench(true).records().cloned().collect();
        let fitted = Workbench::new()
            .machine(MachineConfig::core2())
            .source(RecordsSource::new(records))
            .fit_options(FitOptions::quick())
            .collect()
            .expect("records collection succeeds")
            .fit()
            .expect("fit succeeds");
        let group = fitted
            .group(MachineId::Core2, Suite::Cpu2000)
            .expect("group");
        assert_eq!(group.stacks().len(), 12);
        assert!(group.stacks_csv().starts_with("benchmark,"));
    }

    #[test]
    fn delta_flows_through_the_pipeline() {
        let fitted = two_machine_bench(true).fit().expect("fit");
        let delta = fitted
            .delta(MachineId::Pentium4, MachineId::Core2, Suite::Cpu2000)
            .expect("both machines fitted");
        // The Core 2 beats the Pentium 4 overall on any reasonable draw.
        assert!(delta.overall.total() < 0.0, "{delta}");
        let missing = fitted.delta(MachineId::Pentium4, MachineId::CoreI7, Suite::Cpu2000);
        assert!(matches!(missing, Err(PipelineError::Config(_))));
    }

    #[test]
    fn configuration_errors_are_typed() {
        let no_source = Workbench::new().machine(MachineConfig::core2()).collect();
        assert!(matches!(no_source, Err(PipelineError::Config(_))));
        let no_machines = Workbench::new()
            .source(SimSource::new().suite(small_suite(4)))
            .collect();
        assert!(matches!(no_machines, Err(PipelineError::Config(_))));
    }

    #[test]
    fn source_errors_carry_stage_and_machine() {
        // A CSV of core2-only records cannot serve a pentium4 pipeline.
        let csv = Workbench::new()
            .machine(MachineConfig::core2())
            .source(SimSource::new().suite(small_suite(2)).uops(1_000))
            .collect()
            .expect("collect")
            .to_csv();
        let err = Workbench::new()
            .machine(MachineSpec::real(
                MachineId::Pentium4,
                MicroarchParams::new(3.0, 31.0, 28.0, 344.0, 57.0),
            ))
            .source(CsvSource::from_text(&csv).expect("valid csv"))
            .collect()
            .expect_err("no pentium4 rows");
        match &err {
            PipelineError::Source(SourceError::NoRecords { machine, .. }) => {
                assert_eq!(*machine, MachineId::Pentium4);
            }
            other => panic!("expected NoRecords, got {other:?}"),
        }
        assert!(err.to_string().contains("collect stage"));
    }

    #[test]
    fn fit_errors_name_the_group() {
        // Two records are far too few for ten parameters.
        let err = Workbench::new()
            .machine(MachineConfig::core2())
            .source(SimSource::new().suite(small_suite(2)).uops(1_000))
            .collect()
            .expect("collect")
            .fit()
            .expect_err("underdetermined");
        match err {
            PipelineError::Fit {
                machine,
                suite,
                error: FitError::TooFewRecords { got },
            } => {
                assert_eq!(machine, MachineId::Core2);
                assert_eq!(suite, Some(Suite::Cpu2000));
                assert_eq!(got, 2);
            }
            other => panic!("expected Fit error, got {other:?}"),
        }
    }

    #[test]
    fn file_errors_name_the_path_and_line() {
        let dir = std::env::temp_dir().join(format!("workbench_errpath_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // A malformed row: the message must say which file and which line.
        let bad = dir.join("bad.csv");
        let mut csv = two_machine_bench(false).to_csv();
        let second_row = csv.lines().nth(1).unwrap().to_owned();
        csv = csv.replace(&second_row, &second_row.replace(',', ";"));
        std::fs::write(&bad, &csv).unwrap();
        let err = CsvSource::from_path(&bad).expect_err("malformed row");
        let msg = err.to_string();
        assert!(msg.contains("bad.csv"), "path missing: {msg}");
        assert!(msg.contains("line 2"), "line missing: {msg}");

        // A missing file: the message must say which path failed to read.
        let gone = dir.join("does_not_exist.csv");
        let msg = CsvSource::from_path(&gone)
            .expect_err("io error")
            .to_string();
        assert!(msg.contains("does_not_exist.csv"), "path missing: {msg}");

        // A failed export: the message must say which path failed to write.
        let collected = two_machine_bench(false);
        let target = dir.join("no_such_dir").join("out.csv");
        let msg = collected
            .export_to(&target)
            .expect_err("unwritable")
            .to_string();
        assert!(msg.contains("out.csv"), "path missing: {msg}");
        assert!(msg.contains("export stage"), "stage missing: {msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_writes_and_reports_failures() {
        let collected = Workbench::new()
            .machine(MachineConfig::core2())
            .source(SimSource::new().suite(small_suite(12)).uops(2_000))
            .fit_options(FitOptions::quick())
            .collect()
            .expect("collect");
        // Per-process dir: parallel checkouts on a shared host must not
        // collide on a fixed /tmp path.
        let dir =
            std::env::temp_dir().join(format!("workbench_export_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("counters.csv");
        collected.export_to(&path).expect("write succeeds");
        let reread = CsvSource::from_path(&path).expect("file parses back");
        assert_eq!(reread.records().len(), 12);
        let bad = collected.export_to("/nonexistent/dir/counters.csv");
        assert!(matches!(bad, Err(PipelineError::Export { .. })));
        let fitted = collected.fit().expect("fit");
        fitted
            .export_stacks_to(dir.join("stacks.csv"))
            .expect("stacks write");
        assert!(fitted.stacks_csv().starts_with("benchmark,"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
