//! Property tests for the snapshot persistence layer: serialization must
//! be lossless for arbitrary finite parameters, and *any* single-byte
//! corruption of a snapshot must be detected and surface as a typed
//! error (the service treats it as a cache miss) — never a panic, and
//! never a silently different model.

use memodel::service::persist::{decode, encode, fnv64, ModelSnapshot, SnapshotStore};
use memodel::{MicroarchParams, ModelParams};
use pmu::{MachineId, Suite};
use proptest::prelude::*;

/// Builds a snapshot from raw strategy outputs. Machine/suite pick by
/// index so every name length (and the pooled empty-suite encoding) is
/// exercised.
fn snapshot_from(
    which: u64,
    fingerprint: u64,
    digest: u64,
    records: u64,
    arch: &[f64],
    b: &[f64],
    interval_cap: f64,
    objective: f64,
) -> ModelSnapshot {
    let machine = MachineId::ALL[(which % 3) as usize];
    let suite = [None, Some(Suite::Cpu2000), Some(Suite::Cpu2006)][((which / 3) % 3) as usize];
    ModelSnapshot {
        machine,
        suite,
        options_fingerprint: fingerprint,
        records_digest: digest,
        records: records as u32,
        arch: MicroarchParams::new(arch[0], arch[1], arch[2], arch[3], arch[4]),
        params: ModelParams::from_slice(b),
        interval_cap,
        objective,
    }
}

proptest! {
    /// encode → decode is the identity for arbitrary finite parameter
    /// sets — including negative exponents, tiny magnitudes, and every
    /// machine/suite combination. Bit-exact: floats travel as raw LE
    /// bytes, so no precision is shed.
    #[test]
    fn snapshot_round_trip_is_lossless(
        which in 0u64..9,
        fingerprint in 0u64..u64::MAX,
        digest in 0u64..u64::MAX,
        records in 0u64..100_000,
        arch in prop::collection::vec(1e-3f64..1e4, 5),
        b in prop::collection::vec(-1e9f64..1e9, 10),
        interval_cap in 1e-6f64..1e9,
        objective in 0.0f64..1e12,
    ) {
        let snap = snapshot_from(
            which, fingerprint, digest, records, &arch, &b, interval_cap, objective,
        );
        let bytes = encode(&snap);
        let back = decode(&bytes).expect("pristine bytes decode");
        prop_assert_eq!(&back, &snap);
        // Lossless means bit-identical bytes on re-encode, too.
        prop_assert_eq!(encode(&back), bytes);
    }

    /// Flipping any single byte anywhere in the file — magic, header,
    /// names, parameters, or the checksum itself — is detected: decode
    /// returns an error. It must never panic, and never return Ok (an
    /// undetected corruption could serve wrong model parameters).
    #[test]
    fn any_single_byte_corruption_is_detected(
        which in 0u64..9,
        fingerprint in 0u64..u64::MAX,
        digest in 0u64..u64::MAX,
        b in prop::collection::vec(-1e6f64..1e6, 10),
        position in 0usize..10_000,
        flip in 1u64..256,
    ) {
        let snap = snapshot_from(
            which, fingerprint, digest, 48,
            &[4.0, 14.0, 19.0, 169.0, 30.0], &b, 256.0, 0.5,
        );
        let mut bytes = encode(&snap);
        let index = position % bytes.len();
        bytes[index] ^= flip as u8;
        prop_assert!(
            decode(&bytes).is_err(),
            "flip 0x{flip:02x} at byte {index} went undetected"
        );
    }

    /// The store round-trips through real files, and a corrupted file is
    /// a miss for the service (typed Corrupt error from load), not a
    /// panic and not a hit.
    #[test]
    fn corrupted_store_files_load_as_misses(
        b in prop::collection::vec(-1e6f64..1e6, 10),
        position in 0usize..10_000,
        flip in 1u64..256,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "cpis_prop_{}_{position}_{flip}",
            std::process::id()
        ));
        let store = SnapshotStore::open(&dir).expect("temp store opens");
        let snap = snapshot_from(
            1, 7, 9, 48, &[4.0, 14.0, 19.0, 169.0, 30.0], &b, 256.0, 0.5,
        );
        let path = store.save(&snap).expect("save");
        let loaded = store
            .load(snap.machine, snap.suite, snap.options_fingerprint, snap.records_digest)
            .expect("pristine file loads");
        prop_assert_eq!(loaded.as_ref(), Some(&snap));
        // Corrupt one byte on disk: the next load must reject it.
        let mut bytes = std::fs::read(&path).expect("read back");
        let index = position % bytes.len();
        bytes[index] ^= flip as u8;
        std::fs::write(&path, &bytes).expect("write corrupt");
        let result = store.load(
            snap.machine,
            snap.suite,
            snap.options_fingerprint,
            snap.records_digest,
        );
        prop_assert!(
            result.is_err(),
            "corrupt file served as {result:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The checksum itself: FNV-1a distinguishes any two byte streams
    /// that differ in one byte (every round is injective in the running
    /// state), which is what makes the corruption guarantee above hold.
    #[test]
    fn fnv64_separates_single_byte_differences(
        data in prop::collection::vec(0u64..256, 1..128),
        position in 0usize..10_000,
        flip in 1u64..256,
    ) {
        let bytes: Vec<u8> = data.iter().map(|v| *v as u8).collect();
        let mut other = bytes.clone();
        let index = position % other.len();
        other[index] ^= flip as u8;
        prop_assert!(fnv64(&bytes) != fnv64(&other));
    }
}
