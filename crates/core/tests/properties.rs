//! Property-based tests: the model equations respect their structural
//! invariants for any parameter/input combination within bounds.

use memodel::equations::{
    branch_resolution, miss_cycles, mlp_correction, predict_cpi, resource_stall,
};
use memodel::{MicroarchParams, ModelInputs, ModelParams};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = ModelParams> {
    let bounds = ModelParams::bounds();
    prop::collection::vec(0.0f64..1.0, 10).prop_map(move |u| {
        let mut b = [0.0; 10];
        for (i, (v, (lo, hi))) in u.iter().zip(bounds).enumerate() {
            b[i] = lo + v * (hi - lo);
        }
        ModelParams { b }
    })
}

fn arb_inputs() -> impl Strategy<Value = ModelInputs> {
    (
        0.0f64..0.02,  // mpu_br
        0.0f64..0.02,  // mpu_l1i
        0.0f64..0.005, // mpu_llci
        0.0f64..0.005, // mpu_itlb
        0.0f64..0.08,  // mpu_dl1
        0.0f64..0.1,   // mpu_dl2
        0.0f64..0.05,  // mpu_dtlb
        0.0f64..0.5,   // fp
    )
        .prop_map(
            |(mpu_br, mpu_l1i, mpu_llci, mpu_itlb, mpu_dl1, mpu_dl2, mpu_dtlb, fp)| ModelInputs {
                mpu_br,
                mpu_l1i,
                mpu_llci,
                mpu_itlb,
                mpu_dl1,
                mpu_dl2,
                mpu_dtlb,
                fp,
                measured_cpi: 1.0,
            },
        )
}

fn arb_arch() -> impl Strategy<Value = MicroarchParams> {
    (
        2.0f64..6.0,
        8.0f64..32.0,
        8.0f64..40.0,
        100.0f64..400.0,
        20.0f64..80.0,
    )
        .prop_map(|(w, fe, l2, mem, tlb)| MicroarchParams::new(w, fe, l2, mem, tlb))
}

proptest! {
    /// The prediction is always finite, and never below the base component.
    #[test]
    fn prediction_bounded_below_by_base(
        arch in arb_arch(),
        params in arb_params(),
        inputs in arb_inputs(),
    ) {
        let cpi = predict_cpi(&arch, &params, &inputs);
        prop_assert!(cpi.is_finite());
        prop_assert!(cpi >= 1.0 / arch.width - 1e-12);
    }

    /// The prediction decomposes exactly into base + misses + stall.
    #[test]
    fn prediction_decomposes(
        arch in arb_arch(),
        params in arb_params(),
        inputs in arb_inputs(),
    ) {
        let whole = predict_cpi(&arch, &params, &inputs);
        let parts = 1.0 / arch.width
            + miss_cycles(&arch, &params, &inputs)
            + resource_stall(&arch, &params, &inputs);
        prop_assert!((whole - parts).abs() < 1e-9);
    }

    /// MLP is clamped to [1, 1e4] and the stall term is non-negative.
    #[test]
    fn component_ranges(
        arch in arb_arch(),
        params in arb_params(),
        inputs in arb_inputs(),
    ) {
        let mlp = mlp_correction(&params, &inputs);
        prop_assert!((1.0..=1e4).contains(&mlp));
        prop_assert!(resource_stall(&arch, &params, &inputs) >= 0.0);
        prop_assert!(branch_resolution(&params, &inputs) >= 0.0);
    }

    /// Adding I-cache misses can only increase the prediction (the other
    /// terms do not depend on mpu_l1i).
    #[test]
    fn icache_term_is_monotone(
        arch in arb_arch(),
        params in arb_params(),
        inputs in arb_inputs(),
        extra in 0.001f64..0.02,
    ) {
        // Hold the stall damping fixed by comparing the miss term directly.
        let mut more = inputs;
        more.mpu_l1i += extra;
        let a = inputs.mpu_l1i * arch.c_l2;
        let b = more.mpu_l1i * arch.c_l2;
        prop_assert!(b > a);
        // And the full model (damping may offset but never inverts the
        // direction beyond the stall's own magnitude).
        let full_a = predict_cpi(&arch, &params, &inputs);
        let full_b = predict_cpi(&arch, &params, &more);
        let stall_a = resource_stall(&arch, &params, &inputs);
        prop_assert!(full_b + stall_a >= full_a - 1e-9);
    }
}
