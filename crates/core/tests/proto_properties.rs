//! Protocol fuzz/property tests: arbitrary byte lines thrown at
//! [`execute_line`] and corrupted/truncated binary frames thrown at
//! [`read_frame`] must never panic, never wedge a worker shard, and —
//! on an auth-gated session — never reach command dispatch without a
//! valid `hello <token>` handshake.

use memodel::service::auth::TokenRegistry;
use memodel::service::proto::{
    self, decode_stack_frame, encode_stack_frame, read_frame, LineOutcome, SessionSpec,
};
use memodel::service::{CpiService, ServiceConfig, TenantId};
use memodel::stack::CpiStack;
use memodel::FitOptions;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// The one token the fuzz registry accepts.
const TOKEN: &str = "fuzz-token-0123456789abcdef";

/// One long-lived service shared by every fuzz case (cases must not each
/// pay a worker-pool spawn); the `CpiService` lives in the `OnceLock` so
/// its workers survive for the whole test binary.
fn shared() -> &'static (CpiService, SessionSpec) {
    static SHARED: OnceLock<(CpiService, SessionSpec)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let service =
            CpiService::start(ServiceConfig::new().with_workers(2).with_cache_capacity(4));
        let registry = Arc::new(
            TokenRegistry::new()
                .with_token(TOKEN, "fuzz")
                .expect("fuzz token"),
        );
        let spec = SessionSpec::with_auth(service.client(), FitOptions::quick(), registry);
        (service, spec)
    })
}

/// Runs one line through a session, returning the in-band output and the
/// outcome. Writing to a `Vec` cannot fail, so any `Err` here is itself
/// a property violation.
fn run_line(session: &mut proto::Session, line: &str) -> (String, LineOutcome) {
    let mut out = Vec::new();
    let outcome = proto::execute_line(session, line, &mut out).expect("Vec sink never errors");
    (String::from_utf8_lossy(&out).into_owned(), outcome)
}

fn arbitrary_bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec((0u16..256).prop_map(|b| b as u8), 0..max_len)
}

fn sample_stacks(n: usize, scale: f64) -> Vec<(String, CpiStack)> {
    (0..n)
        .map(|i| {
            let f = i as f64 * scale;
            (
                format!("fuzz.bench.{i}"),
                CpiStack {
                    base: 0.25 + f,
                    l1i: 0.01 * f,
                    llc_i: 0.002,
                    itlb: f,
                    branch: 0.125,
                    llc_d: 0.5 * f,
                    dtlb: 0.03,
                    resource: 0.75,
                    branch_resolution: 11.0 + f,
                    mlp: 1.5,
                },
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary bytes at an UNAUTHENTICATED session: the session never
    /// panics, never authenticates (short of guessing the exact token),
    /// never returns the server-stopping `Shutdown` outcome, and every
    /// command other than `hello`/`help`/`quit` is rejected in-band
    /// before dispatch.
    #[test]
    fn unauthenticated_fuzz_is_rejected_before_dispatch(
        bytes in arbitrary_bytes(120),
    ) {
        let (_, spec) = shared();
        let mut session = spec.session();
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let (out, outcome) = run_line(&mut session, &line);
        prop_assert!(outcome != LineOutcome::Shutdown,
            "an anonymous line must never stop the server: {line:?}");
        let mut words = line.split_whitespace();
        match words.next() {
            None => prop_assert!(out.is_empty(), "blank lines answer nothing"),
            Some("hello") => {
                // Only the exact registered token authenticates.
                let authed = words.next() == Some(TOKEN) && words.next().is_none();
                prop_assert_eq!(session.is_authenticated(), authed);
                if !authed {
                    prop_assert!(out.starts_with("err: "), "{out}");
                }
            }
            Some("help") | Some("quit") => {
                prop_assert!(!session.is_authenticated());
            }
            Some(_) => {
                prop_assert!(
                    out.starts_with("err: authenticate first"),
                    "line {line:?} slipped past the auth gate: {out}"
                );
                prop_assert!(!session.is_authenticated());
            }
        }
    }

    /// Arbitrary bytes at an AUTHENTICATED session: whatever garbage a
    /// line carried, the session answers in protocol (`ok`/`err:`
    /// terminated), never panics — and the worker shards are still alive
    /// afterwards, proven by a live `stats` round-trip through the
    /// service.
    #[test]
    fn malformed_lines_never_wedge_an_authenticated_session(
        bytes in arbitrary_bytes(120),
    ) {
        let (_, spec) = shared();
        let mut session = spec.session();
        let (hello_out, _) = run_line(&mut session, &format!("hello {TOKEN}"));
        prop_assert!(hello_out.ends_with("ok\n"), "{hello_out}");
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let (out, _) = run_line(&mut session, &line);
        if line.split_whitespace().next().is_some() {
            let last = out.lines().last().unwrap_or("");
            prop_assert!(
                last == "ok" || last.starts_with("err: ") || out.contains("\nok\n")
                    || out.starts_with("ok\n"),
                "unterminated response to {line:?}: {out:?}"
            );
        }
        // The shard hashed for this tenant still serves: stats answers.
        let (stats_out, _) = run_line(&mut session, "stats");
        prop_assert!(
            stats_out.contains("stats: requests") && stats_out.contains("tenant fuzz"),
            "worker wedged after {line:?}: {stats_out}"
        );
    }

    /// Any single flipped byte in a valid binary stack frame fails
    /// `read_frame` — never a panic, never a silently different payload.
    #[test]
    fn corrupted_frames_are_always_rejected(
        n in 0usize..5,
        scale in 0.0f64..4.0,
        position in 0usize..10_000,
        flip in 1u16..256,
    ) {
        let frame = encode_stack_frame(&sample_stacks(n, scale));
        let mut bad = frame.clone();
        let at = position % bad.len();
        bad[at] ^= flip as u8;
        prop_assert!(
            read_frame(&mut bad.as_slice()).is_err(),
            "flip of byte {at} by {flip:#04x} went undetected"
        );
        // Truncation anywhere is an error too, not a panic or a hang.
        let cut = position % frame.len();
        prop_assert!(read_frame(&mut frame[..cut].as_ref()).is_err());
    }

    /// Totally arbitrary bytes into the frame reader and the payload
    /// decoder: no panics, no giant allocations, and anything `Ok` must
    /// round-trip to the exact same encoding (i.e. only genuinely valid
    /// frames pass).
    #[test]
    fn arbitrary_bytes_never_panic_the_frame_codec(
        bytes in arbitrary_bytes(200),
    ) {
        if let Ok((kind, payload)) = read_frame(&mut bytes.as_slice()) {
            // Vanishingly unlikely (magic + checksum), but if it parses
            // the bounds must have held.
            prop_assert!(payload.len() <= proto::MAX_FRAME_PAYLOAD);
            let _ = kind;
        }
        if let Ok(stacks) = decode_stack_frame(&bytes) {
            // A payload that decodes must re-encode to a frame whose
            // payload is byte-identical — the decoder accepted no
            // ambiguity.
            let frame = encode_stack_frame(&stacks);
            let (_, payload) = read_frame(&mut frame.as_slice()).expect("fresh frame parses");
            prop_assert_eq!(payload, bytes);
        }
    }
}

/// Deterministic companion to the fuzz: after a storm of anonymous
/// garbage, the fuzz tenant's service-side counters show that *nothing*
/// was ever dispatched on its behalf — the gate runs strictly before the
/// queue.
#[test]
fn anonymous_garbage_never_reaches_the_service() {
    let (service, spec) = shared();
    let mut session = spec.session();
    for line in [
        "stats",
        "shutdown",
        "fit core2 cpu2000",
        "machine core2 4 14 19 169 30",
        "ingest /etc/passwd",
        "binstack core2 all",
        "delta pentium4 core2 cpu2000",
        "hello wrong-token-00000000",
    ] {
        let (out, outcome) = run_line(&mut session, line);
        assert!(out.starts_with("err: "), "{line} -> {out}");
        assert_eq!(outcome, LineOutcome::Continue);
    }
    // Had the gate leaked, those lines would have dispatched on the
    // session's base client — the LOCAL tenant (nothing else in this
    // binary runs as local; the authenticated fuzz cases rebind to
    // `fuzz` first). The only local task ever counted is this stats
    // read itself.
    let stats = service
        .client_for(TenantId::local())
        .stats()
        .expect("service alive");
    assert_eq!(
        stats.requests, 1,
        "an unauthenticated session must dispatch zero tasks"
    );
    assert_eq!(stats.fits, 0);
    assert_eq!(stats.ingested_records, 0);
}
