//! Integration coverage for the serving layer: `ModelCache` accounting and
//! eviction, and multi-client `CpiService` sessions agreeing byte-for-byte
//! with the one-shot `Workbench` path.

use memodel::service::{CpiService, ModelCache, ModelKey, ServiceConfig, TenantId};
use memodel::workbench::{MachineSpec, SimSource, Workbench};
use memodel::FitOptions;
use oosim::machine::MachineConfig;
use pmu::{MachineId, RunRecord, Suite};
use std::sync::Arc;

const UOPS: u64 = 4_000;
const SEED: u64 = 1234;

fn campaign_records(config: &MachineConfig) -> Vec<RunRecord> {
    SimSource::new()
        .suite(
            specgen::suites::cpu2000()
                .into_iter()
                .take(12)
                .collect::<Vec<_>>(),
        )
        .uops(UOPS)
        .seed(SEED)
        .collect_config(config)
}

/// A cheap fitted model to populate cache entries with.
fn some_model() -> Arc<memodel::InferredModel> {
    let records = campaign_records(&MachineConfig::core2());
    let arch = memodel::MicroarchParams::from_machine(&MachineConfig::core2());
    Arc::new(
        memodel::InferredModel::fit(&arch, &records, &FitOptions::quick()).expect("12 records fit"),
    )
}

fn key_with_seed(seed: u64) -> ModelKey {
    ModelKey::new(
        MachineId::Core2,
        Some(Suite::Cpu2000),
        FitOptions::quick().with_seed(seed),
    )
}

#[test]
fn cache_counts_hits_and_misses() {
    let local = TenantId::local();
    let mut cache = ModelCache::new(4);
    let key = key_with_seed(1);
    let model = some_model();
    assert!(cache.lookup(&local, &key, 1).is_none(), "cold cache misses");
    cache.insert(&local, &key, 1, model.clone());
    assert!(cache.lookup(&local, &key, 1).is_some());
    assert!(cache.lookup(&local, &key, 1).is_some());
    let stats = cache.stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.inserts, 1);
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.invalidations, 0);
    // Aggregate == the single tenant's view on a single-tenant cache.
    assert_eq!(stats, cache.stats_for(&local));
}

#[test]
fn cache_evicts_least_recently_used_at_capacity() {
    let local = TenantId::local();
    let mut cache = ModelCache::new(2);
    let model = some_model();
    let (a, b, c) = (key_with_seed(1), key_with_seed(2), key_with_seed(3));
    cache.insert(&local, &a, 1, model.clone());
    cache.insert(&local, &b, 1, model.clone());
    assert_eq!(cache.len(), 2);
    // Touch `a` so `b` becomes the LRU entry, then overflow with `c`.
    assert!(cache.lookup(&local, &a, 1).is_some());
    cache.insert(&local, &c, 1, model.clone());
    assert_eq!(cache.len(), 2, "capacity is a hard bound");
    assert_eq!(cache.stats().evictions, 1);
    assert!(cache.contains(&local, &a, 1), "recently used survives");
    assert!(!cache.contains(&local, &b, 1), "LRU entry was evicted");
    assert!(cache.contains(&local, &c, 1));
    // Re-inserting an existing key replaces in place: no eviction.
    cache.insert(&local, &c, 1, model);
    assert_eq!(cache.stats().evictions, 1);
    assert_eq!(cache.len(), 2);
}

#[test]
fn cache_invalidates_on_generation_change() {
    let local = TenantId::local();
    let mut cache = ModelCache::new(4);
    let key = key_with_seed(1);
    cache.insert(&local, &key, 1, some_model());
    assert!(cache.lookup(&local, &key, 1).is_some());
    // A new counter batch bumped the machine's generation: the cached
    // model is stale and must not be served.
    assert!(cache.lookup(&local, &key, 2).is_none());
    let stats = cache.stats();
    assert_eq!(stats.invalidations, 1);
    assert_eq!(stats.misses, 1);
    assert!(cache.is_empty(), "stale entry was dropped");
}

#[test]
fn cache_insert_keeps_newer_generation() {
    let local = TenantId::local();
    let mut cache = ModelCache::new(2);
    let key = key_with_seed(1);
    let model = some_model();
    cache.insert(&local, &key, 2, model.clone());
    // A straggler fit from an older snapshot must not clobber the
    // fresher entry.
    cache.insert(&local, &key, 1, model);
    assert!(cache.contains(&local, &key, 2), "newer entry survives");
    assert!(!cache.contains(&local, &key, 1));
    // The discarded stale insert counted nothing: exactly one insert
    // (the old insert-then-adjust code tallied both).
    assert_eq!(cache.stats().inserts, 1);
}

#[test]
fn cache_quota_is_per_tenant_and_flooding_cannot_cross_it() {
    let alpha = TenantId::new("alpha").unwrap();
    let beta = TenantId::new("beta").unwrap();
    let mut cache = ModelCache::new(2);
    let model = some_model();
    // Alpha fills its quota.
    cache.insert(&alpha, &key_with_seed(1), 1, model.clone());
    cache.insert(&alpha, &key_with_seed(2), 1, model.clone());
    // Beta floods far past the quota: only beta's own entries rotate.
    for seed in 10..20 {
        cache.insert(&beta, &key_with_seed(seed), 1, model.clone());
    }
    assert_eq!(cache.len_for(&alpha), 2, "alpha lost nothing");
    assert_eq!(cache.len_for(&beta), 2, "beta is clamped to its quota");
    assert!(cache.contains(&alpha, &key_with_seed(1), 1));
    assert!(cache.contains(&alpha, &key_with_seed(2), 1));
    assert_eq!(cache.stats_for(&alpha).evictions, 0);
    assert_eq!(cache.stats_for(&beta).evictions, 8);
    // The same key cached by both tenants is two distinct entries.
    cache.insert(&alpha, &key_with_seed(19), 1, model);
    assert!(cache.contains(&alpha, &key_with_seed(19), 1));
    assert!(cache.contains(&beta, &key_with_seed(19), 1));
    // And lookups never cross tenants.
    assert!(cache.lookup(&alpha, &key_with_seed(10), 1).is_none());
    assert_eq!(cache.stats_for(&alpha).misses, 1);
    assert_eq!(cache.stats_for(&beta).misses, 0);
}

/// The `promote_warm` accounting footgun (fixed): a warm promotion racing
/// a fresher same-key insert after a generation bump must keep the
/// counters exact — the promotion's store is discarded as stale, but the
/// lookup-miss it reclassifies still becomes exactly one warm hit, never
/// two, and `hits + misses` always equals total lookups.
#[test]
fn warm_promotion_racing_a_fresher_insert_counts_exactly_once() {
    let local = TenantId::local();
    let mut cache = ModelCache::new(2);
    let key = key_with_seed(1);
    let model = some_model();
    // A worker misses at generation 2 (on its way to a warm disk load).
    assert!(cache.lookup(&local, &key, 2).is_none());
    // Meanwhile another worker fits and inserts at generation 3 (a batch
    // landed in between).
    cache.insert(&local, &key, 3, model.clone());
    // The warm load finishes and promotes its older-generation model.
    cache.promote_warm(&local, &key, 2, model.clone());
    let stats = cache.stats_for(&local);
    assert_eq!(stats.hits, 1, "the reclassified miss, once");
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.warm_loads, 1);
    assert_eq!(stats.inserts, 1, "the stale promotion stored nothing");
    assert_eq!(stats.hits + stats.misses, 1, "lookups balance");
    // The fresher model survived the stale promotion.
    assert!(cache.contains(&local, &key, 3));
    assert!(!cache.contains(&local, &key, 2));

    // The quota path: promotions evict like inserts, within the tenant.
    cache.insert(&local, &key_with_seed(2), 1, model.clone());
    assert!(cache.lookup(&local, &key_with_seed(3), 1).is_none());
    cache.promote_warm(&local, &key_with_seed(3), 1, model);
    let stats = cache.stats_for(&local);
    assert_eq!(cache.len_for(&local), 2, "quota still holds");
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.warm_loads, 2);
    assert_eq!(
        stats.hits + stats.misses,
        2,
        "two lookups total, every one accounted"
    );
}

#[test]
fn service_ingestion_invalidates_cached_models() {
    let machine = MachineConfig::core2();
    let service = CpiService::start(ServiceConfig::new().with_workers(2));
    let client = service.client();
    client
        .register(MachineSpec::from(&machine))
        .expect("register");
    client.ingest(campaign_records(&machine)).expect("ingest");

    let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
    assert!(!client.fit(key.clone()).expect("first fit").cached);
    assert!(client.fit(key.clone()).expect("repeat").cached);

    // New batch arrives: next fit must retrain on all 24 records.
    let more = SimSource::new()
        .suite(
            specgen::suites::cpu2000()
                .into_iter()
                .skip(12)
                .take(12)
                .collect::<Vec<_>>(),
        )
        .uops(UOPS)
        .seed(SEED)
        .collect_config(&machine);
    client.ingest(more).expect("second batch");
    let refit = client.fit(key).expect("refit");
    assert!(!refit.cached);
    assert_eq!(refit.records, 24);

    let stats = service.shutdown();
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.cache.invalidations, 1);
    assert_eq!(stats.fits, 2);
    assert_eq!(stats.ingested_records, 24);
}

#[test]
fn concurrent_clients_share_one_fit_and_match_workbench() {
    const CLIENTS: usize = 6;
    let machine = MachineConfig::core2();

    // Reference: the one-shot sequential Workbench under the same seed.
    let reference = Workbench::new()
        .machine(machine.clone())
        .source(
            SimSource::new()
                .suite(
                    specgen::suites::cpu2000()
                        .into_iter()
                        .take(12)
                        .collect::<Vec<_>>(),
                )
                .uops(UOPS)
                .seed(SEED),
        )
        .fit_options(FitOptions::quick())
        .parallel(false)
        .collect()
        .expect("collect")
        .fit()
        .expect("fit");
    let reference_csv = reference
        .group(MachineId::Core2, Suite::Cpu2000)
        .expect("group")
        .stacks_csv();

    // N concurrent clients hammer one warm service with the same key.
    let service = CpiService::start(ServiceConfig::new().with_workers(4));
    let seed_client = service.client();
    seed_client
        .register(MachineSpec::from(&machine))
        .expect("register");
    seed_client
        .ingest(campaign_records(&machine))
        .expect("ingest");

    let key = ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick());
    let outputs: Vec<(bool, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let client = service.client();
                let key = key.clone();
                scope.spawn(move || {
                    let group = client.group(key).expect("group");
                    (client.stats().expect("stats").fits > 0, group.stacks_csv())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    for (_, csv) in &outputs {
        assert_eq!(
            csv, &reference_csv,
            "every concurrent client must see byte-identical stacks"
        );
    }
    let stats = service.shutdown();
    assert_eq!(
        stats.fits, 1,
        "one machine on one shard: the regression runs exactly once"
    );
    assert_eq!(stats.cache.hits as usize, CLIENTS - 1);
    assert_eq!(stats.cache.misses, 1);
}

#[test]
fn workbench_fit_is_served_through_the_service_path() {
    // Two machines, both suites sliced: the one-shot path and a manual
    // service session must agree group for group.
    let suite: Vec<_> = specgen::suites::cpu2000().into_iter().take(12).collect();
    let source = SimSource::new().suite(suite).uops(UOPS).seed(SEED);
    let fitted = Workbench::new()
        .machine(MachineConfig::pentium4())
        .machine(MachineConfig::core2())
        .source(source.clone())
        .fit_options(FitOptions::quick())
        .collect()
        .expect("collect")
        .fit()
        .expect("fit");

    let service = CpiService::start(ServiceConfig::new());
    let client = service.client();
    for config in [MachineConfig::pentium4(), MachineConfig::core2()] {
        let records = source.collect_config(&config);
        client
            .register(MachineSpec::from(config))
            .expect("register");
        client.ingest(records).expect("ingest");
    }
    for group in fitted.groups() {
        let served = client
            .group(ModelKey::new(
                group.machine,
                group.suite,
                FitOptions::quick(),
            ))
            .expect("served group");
        assert_eq!(served.model.params(), group.model.params());
        assert_eq!(served.stacks_csv(), group.stacks_csv());
    }
    service.shutdown();
}
