//! Property tests for the cluster's consistent-hash ring — the two
//! invariants failover correctness rests on:
//!
//! 1. **Balance**: keys spread across N nodes within a bound (no node
//!    starves or hoards), thanks to the virtual-node points.
//! 2. **Minimal disruption**: removing one node moves *only* that
//!    node's keys, and each moved key lands exactly where filtered
//!    routing (the failover path) already sends it — so a crash and a
//!    membership change agree about every key's new home.

use memodel::service::cluster::HashRing;
use proptest::prelude::*;

/// A ring of `nodes` members named `node-0..`, 64 virtual nodes each
/// (the router's default).
fn ring_of(nodes: usize) -> HashRing {
    let mut ring = HashRing::new(64);
    for i in 0..nodes {
        ring.add(&format!("node-{i}"));
    }
    ring
}

/// A deterministic key population: `keys` distinct `(tenant, machine)`
/// pairs spread over a few tenants, offset by `salt` so every proptest
/// case looks at a different slice of key space.
fn keys_of(keys: usize, salt: u64) -> Vec<(String, String)> {
    (0..keys)
        .map(|i| {
            (
                format!("tenant-{}", (salt as usize + i) % 7),
                format!("machine-{salt}-{i}"),
            )
        })
        .collect()
}

proptest! {
    /// Every node owns a bounded share of a large key population: at
    /// least a quarter and at most four times the fair share. (64
    /// virtual nodes keep real imbalance well inside that; the bound is
    /// deliberately loose so the test pins the invariant, not the hash
    /// function's luck.)
    #[test]
    fn keys_balance_across_nodes(nodes in 2usize..8, salt in 0u64..1_000) {
        let ring = ring_of(nodes);
        let keys = keys_of(600, salt);
        let mut counts = vec![0usize; nodes];
        for (tenant, machine) in &keys {
            let owner = ring.node_for(tenant, machine).expect("non-empty ring");
            let index: usize = owner
                .strip_prefix("node-")
                .and_then(|s| s.parse().ok())
                .expect("harness node name");
            counts[index] += 1;
        }
        let fair = keys.len() / nodes;
        for (index, count) in counts.iter().enumerate() {
            prop_assert!(
                *count >= fair / 4,
                "node-{index} starves: {count} of {} keys across {nodes} nodes",
                keys.len()
            );
            prop_assert!(
                *count <= fair * 4,
                "node-{index} hoards: {count} of {} keys across {nodes} nodes",
                keys.len()
            );
        }
    }

    /// Removing one node moves exactly that node's keys — every other
    /// key keeps its owner — and each moved key lands on the node the
    /// *filtered* route (what the router uses when a member dies) was
    /// already naming. Crash-failover and membership change agree.
    #[test]
    fn removing_a_node_moves_only_its_keys(
        nodes in 2usize..8,
        victim in 0usize..8,
        salt in 0u64..1_000,
    ) {
        let victim = victim % nodes;
        let victim_name = format!("node-{victim}");
        let ring = ring_of(nodes);
        let mut shrunk = ring.clone();
        shrunk.remove(&victim_name);
        for (tenant, machine) in &keys_of(200, salt) {
            let before = ring.node_for(tenant, machine).expect("owner");
            let after = shrunk.node_for(tenant, machine).expect("survivor");
            if before == victim_name {
                prop_assert!(after != victim_name, "moved key stayed on the victim");
                let failover = ring
                    .node_for_filtered(tenant, machine, |n| n != victim_name)
                    .expect("filtered survivor");
                prop_assert_eq!(after, failover);
            } else {
                prop_assert_eq!(after, before);
            }
        }
    }

    /// The replica chain is sane for any key: successors are distinct,
    /// never include the owner, and (tenant, machine) both participate
    /// in the key — the ordered walk is a permutation of the members.
    #[test]
    fn successor_chains_are_distinct_permutations(
        nodes in 2usize..8,
        salt in 0u64..1_000,
    ) {
        let ring = ring_of(nodes);
        for (tenant, machine) in &keys_of(50, salt) {
            let owner = ring.node_for(tenant, machine).expect("owner");
            let successors = ring.successors(tenant, machine, nodes);
            prop_assert_eq!(successors.len(), nodes - 1);
            prop_assert!(!successors.contains(&owner));
            let mut all: Vec<&str> = successors.clone();
            all.push(owner);
            all.sort_unstable();
            all.dedup();
            prop_assert_eq!(all.len(), nodes);
        }
    }
}
