//! Readiness-loop concurrency properties: arbitrary fragmentation of
//! request bytes — 1-byte writes, split lines, interleaved partial
//! commands across several concurrent sockets — must never wedge the
//! event loop, mis-frame a command, or leak bytes between connections.
//!
//! The oracle is [`execute_line`] itself: each connection's transcript
//! over the socket must be byte-identical to running the same command
//! script through a fresh in-process session, regardless of how the
//! bytes were chopped on the wire. A second property feeds the binary
//! `binstack` frame back through [`read_frame`] from a reader that
//! yields arbitrarily small chunks.

use memodel::service::proto::{self, decode_stack_frame, read_frame, SessionSpec, TcpServerConfig};
use memodel::service::{CpiService, ModelKey, ServiceConfig};
use memodel::FitOptions;
use oosim::machine::MachineConfig;
use pmu::{MachineId, RunRecord, Suite};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

const BANNER: &str = "event-loop property front";

/// Read-only or deterministically-failing commands — safe to interleave
/// across concurrent sessions in any order without changing any later
/// response. (Mutating commands like `machine`/`ingest` would make the
/// oracle order-dependent.)
const POOL: &[&str] = &[
    "help",
    "stack core2 cpu2000",
    "binstack core2 cpu2000",
    "predict core2 cpu2000",
    "stack pentium4 cpu2000",
    "stack core2 nope",
    "not-a-command at all",
];

/// One warm service + one readiness-engine TCP front shared by every
/// case; the model is pre-fitted so scripts are pure cache hits and the
/// loop (not the regression) is what the cases exercise.
fn shared() -> &'static (CpiService, SessionSpec, SocketAddr, proto::TcpServer) {
    static SHARED: OnceLock<(CpiService, SessionSpec, SocketAddr, proto::TcpServer)> =
        OnceLock::new();
    SHARED.get_or_init(|| {
        let machine = MachineConfig::core2();
        let records: Vec<RunRecord> = memodel::workbench::SimSource::new()
            .suite(specgen::suites::cpu2000().into_iter().take(12).collect())
            .uops(3_000)
            .seed(42)
            .collect_config(&machine);
        let service = CpiService::start(ServiceConfig::new().with_workers(2));
        let client = service.client();
        client.register((&machine).into()).expect("register");
        client.ingest(records).expect("ingest");
        let options = FitOptions::quick();
        client
            .fit(ModelKey::new(
                MachineId::Core2,
                Some(Suite::Cpu2000),
                options.clone(),
            ))
            .expect("warm fit");
        let spec = SessionSpec::open(client, options);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let server = proto::serve_tcp(
            listener,
            spec.clone(),
            TcpServerConfig::new(BANNER)
                .with_poll_interval(Duration::from_millis(2))
                .with_max_connections(64),
        )
        .expect("event front starts");
        let addr = server.local_addr();
        (service, spec, addr, server)
    })
}

/// The oracle: the exact bytes the server must produce for `script` —
/// banner, then each command's in-band output via [`proto::execute_line`]
/// on a fresh session, then the `quit` acknowledgement.
fn expected_transcript(spec: &SessionSpec, script: &[&str]) -> Vec<u8> {
    let mut session = spec.session();
    let mut out = format!("{BANNER}\n").into_bytes();
    for line in script {
        proto::execute_line(&mut session, line, &mut out).expect("Vec sink never errors");
    }
    proto::execute_line(&mut session, "quit", &mut out).expect("quit acks");
    out
}

/// Sends `bytes` over `stream` chopped into the fragment sizes the case
/// chose (cycled, clamped to what's left), yielding between writes so
/// fragments actually hit the wire as separate segments often enough to
/// matter.
fn send_fragmented(stream: &mut TcpStream, bytes: &[u8], fragments: &[usize]) {
    let mut at = 0;
    let mut pick = 0;
    while at < bytes.len() {
        let n = fragments[pick % fragments.len()].clamp(1, bytes.len() - at);
        pick += 1;
        stream
            .write_all(&bytes[at..at + n])
            .expect("fragment write");
        at += n;
        std::thread::yield_now();
    }
}

/// A reader that returns at most `chunk` bytes per `read` call — the
/// client-side mirror of wire fragmentation, aimed at [`read_frame`].
struct ChunkedReader<'a> {
    bytes: &'a [u8],
    chunk: usize,
}

impl Read for ChunkedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.bytes.len());
        buf[..n].copy_from_slice(&self.bytes[..n]);
        self.bytes = &self.bytes[n..];
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// N concurrent sockets, each sending a random command script chopped
    /// into random fragments (down to single bytes): every socket's full
    /// transcript equals its own `execute_line` oracle byte-for-byte —
    /// no wedging, no mis-framed commands, no cross-connection bytes.
    #[test]
    fn fragmented_concurrent_scripts_match_the_sequential_oracle(
        scripts in prop::collection::vec(
            prop::collection::vec(0usize..POOL.len(), 1..6),
            2..6,
        ),
        fragments in prop::collection::vec(1usize..17, 1..8),
    ) {
        let (_, spec, addr, _) = shared();
        let results: Vec<(Vec<u8>, Vec<u8>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = scripts
                .iter()
                .enumerate()
                .map(|(i, picks)| {
                    let fragments = &fragments;
                    let script: Vec<&str> = picks.iter().map(|p| POOL[*p]).collect();
                    scope.spawn(move || {
                        let expected = expected_transcript(spec, &script);
                        let mut wire: Vec<u8> =
                            script.iter().flat_map(|c| format!("{c}\n").into_bytes()).collect();
                        wire.extend_from_slice(b"quit\n");
                        let mut stream = TcpStream::connect(*addr).expect("connect");
                        stream.set_nodelay(true).expect("nodelay");
                        // Offset each connection's fragment schedule so
                        // the sockets interleave differently.
                        let rotated: Vec<usize> = fragments
                            .iter()
                            .cycle()
                            .skip(i % fragments.len())
                            .take(fragments.len())
                            .copied()
                            .collect();
                        send_fragmented(&mut stream, &wire, &rotated);
                        let mut transcript = Vec::new();
                        stream.read_to_end(&mut transcript).expect("read transcript");
                        (transcript, expected)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (transcript, expected) in &results {
            // A divergence here means the loop mis-framed, wedged, or
            // cross-talked a connection's bytes.
            prop_assert_eq!(transcript, expected);
        }
    }

    /// The server's `binstack` frame, read back through arbitrarily small
    /// client-side chunks: `read_frame` reassembles and validates it, and
    /// the decoded stacks equal a contiguous read's.
    #[test]
    fn chunked_frame_reads_reassemble_byte_identically(chunk in 1usize..9) {
        let (_, spec, addr, _) = shared();
        let _ = spec;
        let mut stream = TcpStream::connect(*addr).expect("connect");
        stream
            .write_all(b"binstack core2 cpu2000\nquit\n")
            .expect("send script");
        let mut transcript = Vec::new();
        stream.read_to_end(&mut transcript).expect("read transcript");
        let marker = b"frame stacks ";
        let pos = transcript
            .windows(marker.len())
            .position(|w| w == marker)
            .expect("frame announcement");
        let line_end = pos + transcript[pos..].iter().position(|b| *b == b'\n').unwrap();
        let announced: usize = std::str::from_utf8(&transcript[pos + marker.len()..line_end])
            .unwrap()
            .parse()
            .expect("announced length");
        let frame = &transcript[line_end + 1..line_end + 1 + announced];
        let (_, contiguous) = read_frame(&mut &frame[..]).expect("contiguous read");
        let (_, chunked) = read_frame(&mut ChunkedReader { bytes: frame, chunk })
            .expect("chunked read reassembles");
        prop_assert_eq!(&chunked, &contiguous);
        // 12 benchmarks in the fixed-seed campaign.
        prop_assert_eq!(decode_stack_frame(&chunked).expect("decodes").len(), 12);
    }
}
