//! Property tests for the streaming refit path — the three invariants
//! the continuous-modeling pipeline rests on:
//!
//! 1. **Stationary streams polish safely**: on a jittered but stationary
//!    workload the drift guard serves warm-start incremental refits, and
//!    the polished model's normalised objective stays within the drift
//!    bound of a full multi-start fan-out over the same final records.
//! 2. **Workload shifts always fall back**: a batch that changes the
//!    benchmark population is never served by the polish — the digest
//!    check forces the full fan-out, whatever the seeds.
//! 3. **Batch-split determinism**: the same record stream chopped at
//!    different batch boundaries converges to bit-identical final
//!    parameters once the stream closes (upsert semantics + the closing
//!    reconciliation make the result a pure function of the final
//!    record set).

use memodel::service::{stream, CpiService, ModelKey, RefitMode, ServiceConfig};
use memodel::workbench::{MachineSpec, SimSource};
use memodel::FitOptions;
use oosim::machine::MachineConfig;
use pmu::live::ReplaySource;
use pmu::{MachineId, RunRecord, Suite};
use proptest::prelude::*;

/// 12 CPU2000 benchmarks on the Core 2 preset — enough records for the
/// 10-parameter regression, cheap enough for many proptest cases.
fn base_records(seed: u64) -> Vec<RunRecord> {
    SimSource::new()
        .suite(specgen::suites::cpu2000().into_iter().take(12).collect())
        .uops(3_000)
        .seed(seed)
        .collect_config(&MachineConfig::core2())
}

/// A different slice of the benchmark population: same machine, same
/// suite key, disjoint benchmark names — a genuine workload shift.
fn shifted_records(seed: u64) -> Vec<RunRecord> {
    SimSource::new()
        .suite(
            specgen::suites::cpu2000()
                .into_iter()
                .skip(12)
                .take(12)
                .collect(),
        )
        .uops(3_000)
        .seed(seed)
        .collect_config(&MachineConfig::core2())
}

fn model_key() -> ModelKey {
    ModelKey::new(MachineId::Core2, Some(Suite::Cpu2000), FitOptions::quick())
}

/// A fresh two-worker service with the Core 2 machine registered.
fn warm_service() -> CpiService {
    let service = CpiService::start(ServiceConfig::new().with_workers(2));
    service
        .client()
        .register(MachineSpec::from(MachineConfig::core2()))
        .expect("register core2");
    service
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Stationary jittered streams are served by the incremental polish,
    /// and the polish never drifts: its normalised objective stays within
    /// a small factor of the full fan-out over the same final records.
    /// (The guard enforces 1.5× against its *anchor* baseline; the 2×
    /// bound here adds slack for the ±1% counter jitter between the
    /// anchor's records and the final round's.)
    #[test]
    fn stationary_streams_polish_within_the_drift_bound(
        seed in 1u64..1_000,
        jitter in 1u64..1_000,
    ) {
        let service = warm_service();
        let client = service.client();
        let records = base_records(seed);
        let batch = records.len();
        let mut source = ReplaySource::new(records)
            .batch_size(batch)
            .rounds(3)
            .jitter(jitter);
        // Reconciliation off: the summary's final model must be the
        // incremental one, so the bound is checked against the polish.
        let opts = stream::PumpOptions::default().with_reconcile(false);
        let summary = stream::pump(&client, &model_key(), &mut source, &opts, |_, _| {})
            .expect("pump");
        prop_assert_eq!(summary.full_refits, 1); // round 0 anchors
        prop_assert!(summary.incremental_refits >= 1, "stationary rounds polish");
        let polished = summary.report.expect("final model");
        let count = polished.records as f64;

        let (full, mode) = client.refit(model_key(), true).expect("full reconcile");
        prop_assert_eq!(mode, RefitMode::Full);
        let full_norm = full.model.objective() / count;
        let polished_norm = polished.model.objective() / count;
        prop_assert!(
            polished_norm <= full_norm * 2.0 + 1e-12,
            "polish drifted: {} vs full {}",
            polished_norm,
            full_norm
        );
        service.shutdown();
    }

    /// A mid-stream workload shift (different benchmark population under
    /// the same model key) always forces the full multi-start fan-out —
    /// the digest guard never lets the polish paper over a new workload.
    #[test]
    fn workload_shift_always_falls_back(seed in 1u64..1_000, jitter in 1u64..1_000) {
        let service = warm_service();
        let client = service.client();
        let key = model_key();

        // Anchor, then one stationary polish so the warm path is live.
        let records = base_records(seed);
        let batch = records.len();
        let mut source = ReplaySource::new(records)
            .batch_size(batch)
            .rounds(2)
            .jitter(jitter);
        let opts = stream::PumpOptions::default().with_reconcile(false);
        let summary = stream::pump(&client, &key, &mut source, &opts, |_, _| {})
            .expect("stationary pump");
        prop_assert_eq!(summary.incremental_refits, 1); // warm path is live

        // Shift the workload: disjoint benchmarks stream in.
        client
            .stream_batch(MachineId::Core2, shifted_records(seed))
            .expect("shifted batch lands");
        let (report, mode) = client.refit(key, false).expect("refit after shift");
        prop_assert_eq!(mode, RefitMode::Full); // digest change forces the fan-out
        prop_assert_eq!(report.records, 24); // both populations are in the store
        let stats = service.shutdown();
        prop_assert_eq!(stats.cache.incremental_refits, 1);
        prop_assert_eq!(stats.cache.full_refits, 2); // anchor + fallback
    }

    /// Chopping the same stream at different batch boundaries cannot
    /// change the final model: once the stream closes (reconciliation
    /// on), the parameters are bit-identical to the single-batch run.
    #[test]
    fn batch_boundaries_do_not_change_the_final_params(
        seed in 1u64..1_000,
        jitter in 1u64..1_000,
        split in 1usize..12,
    ) {
        let mut params = Vec::new();
        for batch_size in [split, 12] {
            let service = warm_service();
            let client = service.client();
            let mut source = ReplaySource::new(base_records(seed))
                .batch_size(batch_size)
                .rounds(2)
                .jitter(jitter);
            let summary = stream::pump(
                &client,
                &model_key(),
                &mut source,
                &stream::PumpOptions::default(),
                |_, _| {},
            )
            .expect("pump");
            let report = summary.report.expect("final model");
            prop_assert_eq!(report.records, 12); // upserts bound the store
            params.push(report.model.params().b.map(f64::to_bits));
            service.shutdown();
        }
        // Equal params prove batch boundaries never leak into the model.
        prop_assert_eq!(params[0], params[1]);
    }
}
