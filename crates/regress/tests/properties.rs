//! Property-based tests for the numerics kernel.

use proptest::prelude::*;
use regress::matrix::Matrix;
use regress::metrics::{error_cdf, ErrorSummary};
use regress::nelder_mead::{minimize_bounded, Options};

proptest! {
    /// Solving a diagonally-dominant system recovers the planted solution.
    #[test]
    fn solve_recovers_planted_solution(
        truth in prop::collection::vec(-100.0f64..100.0, 2..8),
        offdiag in prop::collection::vec(-0.9f64..0.9, 64),
    ) {
        let n = truth.len();
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = if i == j {
                    n as f64 + 1.0
                } else {
                    offdiag[(i * n + j) % offdiag.len()]
                };
            }
        }
        let b = m.matvec(&truth);
        let x = m.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&truth) {
            prop_assert!((xi - ti).abs() < 1e-6, "{xi} vs {ti}");
        }
    }

    /// Transposing twice is the identity.
    #[test]
    fn transpose_is_involutive(
        rows in 1usize..6,
        cols in 1usize..6,
        data in prop::collection::vec(-1e6f64..1e6, 36),
    ) {
        let m = Matrix::from_rows(rows, cols, &data[..rows * cols]);
        prop_assert_eq!(m.transposed().transposed(), m);
    }

    /// Error summaries are internally consistent for any error set.
    #[test]
    fn summary_orderings_hold(errors in prop::collection::vec(0.0f64..10.0, 1..64)) {
        let s = ErrorSummary::from_errors(&errors);
        prop_assert!(s.median <= s.max + 1e-12);
        prop_assert!(s.p90 <= s.max + 1e-12);
        prop_assert!(s.median <= s.p90 + 1e-12);
        prop_assert!(s.mean <= s.max + 1e-12);
        prop_assert_eq!(s.count, errors.len());
    }

    /// CDFs are monotone in both coordinates and end at fraction 1.
    #[test]
    fn cdf_is_monotone(errors in prop::collection::vec(0.0f64..5.0, 1..64)) {
        let cdf = error_cdf(&errors);
        prop_assert_eq!(cdf.len(), errors.len());
        prop_assert!((cdf.last().unwrap().0 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    /// Nelder–Mead never reports a point outside its box.
    #[test]
    fn nelder_mead_respects_bounds(
        lo in -10.0f64..0.0,
        span in 0.1f64..10.0,
        x0 in -20.0f64..20.0,
        target in -30.0f64..30.0,
    ) {
        let hi = lo + span;
        let m = minimize_bounded(
            |p| (p[0] - target).powi(2),
            &[x0],
            &[(lo, hi)],
            &Options { max_evals: 2_000, ..Options::default() },
        );
        prop_assert!(m.params[0] >= lo - 1e-12 && m.params[0] <= hi + 1e-12);
        // And it finds the constrained optimum.
        let best = target.clamp(lo, hi);
        prop_assert!((m.params[0] - best).abs() < 1e-3,
            "got {}, expected {best}", m.params[0]);
    }
}
