//! Deterministic parallel reduction for regression objectives.
//!
//! A least-squares objective is a sum of independent per-point terms, so
//! the natural way to parallelise *one* objective evaluation is to fan the
//! terms across threads. Naively summing per-thread partials breaks
//! bit-identity: floating-point addition is not associative, and the
//! grouping would depend on the thread count. [`sum_ordered`] avoids that
//! by separating computation from reduction — every term lands in an
//! index-ordered buffer (any schedule, any thread count), and the fold is
//! a single sequential left-to-right pass over that buffer, associating
//! exactly like the serial `  (0..n).map(term).sum()` loop. The result is
//! bit-identical at every thread count, 1 included.

/// Sums `term(0) + term(1) + … + term(n-1)` left-to-right, computing the
/// terms on up to `threads` scoped workers.
///
/// `threads <= 1` (or `n <= 1`) runs the plain serial loop. The parallel
/// path buffers every term at its own index and then folds the buffer
/// sequentially, so the returned bits never depend on the thread count —
/// only the wall-clock does. Worth it only when `n × cost(term)` clearly
/// exceeds the cost of spawning scoped threads (tens of microseconds);
/// callers with small `n` should pass `threads = 1`.
///
/// # Examples
///
/// ```
/// use regress::par::sum_ordered;
///
/// let term = |i: usize| 1.0 / (1.0 + i as f64);
/// let serial: f64 = (0..1000).map(term).sum();
/// for threads in [1, 2, 3, 8] {
///     let parallel = sum_ordered(1000, threads, term);
///     assert_eq!(parallel.to_bits(), serial.to_bits());
/// }
/// ```
pub fn sum_ordered<F: Fn(usize) -> f64 + Sync>(n: usize, threads: usize, term: F) -> f64 {
    let workers = threads.clamp(1, n.max(1));
    if workers == 1 {
        return (0..n).map(term).sum();
    }
    let mut terms = vec![0.0f64; n];
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        // Contiguous chunks, one worker each: term cost is uniform in the
        // regression setting, so a static split balances fine and keeps
        // the buffer writes disjoint without any synchronisation.
        for (w, out) in terms.chunks_mut(chunk).enumerate() {
            let term = &term;
            scope.spawn(move || {
                let base = w * chunk;
                for (j, slot) in out.iter_mut().enumerate() {
                    *slot = term(base + j);
                }
            });
        }
    });
    terms.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_bits_at_any_thread_count() {
        // Terms with wildly different magnitudes make the sum genuinely
        // order-sensitive: any reassociation would change the bits.
        let term = |i: usize| {
            let x = (i as f64).sin() * 1e6 + 1e-7 / (1.0 + i as f64);
            x * x / (1.0 + (i % 13) as f64)
        };
        let serial: f64 = (0..10_007).map(term).sum();
        for threads in [1, 2, 3, 4, 7, 16, 64] {
            let parallel = sum_ordered(10_007, threads, term);
            assert_eq!(
                parallel.to_bits(),
                serial.to_bits(),
                "threads={threads}: {parallel:e} vs {serial:e}"
            );
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(sum_ordered(0, 4, |_| 1.0), 0.0);
        assert_eq!(sum_ordered(1, 4, |i| i as f64 + 2.0), 2.0);
        // More threads than terms clamps to one worker per term.
        assert_eq!(sum_ordered(3, 64, |i| i as f64), 3.0);
    }
}
