//! Numerics for gray-box performance modeling.
//!
//! The ISPASS 2011 paper infers its ten unknown model parameters with
//! nonlinear regression (the authors used SPSS), and compares the resulting
//! gray-box model against two purely empirical baselines: linear regression
//! and a one-hidden-layer artificial neural network (paper §4–5). This crate
//! provides all three fitting engines plus the shared error metrics:
//!
//! * [`nelder_mead`] — bounded derivative-free simplex minimisation with
//!   deterministic multi-start, used to fit the mechanistic-empirical model
//!   under the paper's relative-squared-error criterion (Tofallis),
//! * [`linear`] — ordinary least squares (optionally ridge-stabilised),
//! * [`ann`] — a multi-layer perceptron with one tanh hidden layer trained
//!   with Adam, matching the paper's ANN description (§4),
//! * [`metrics`] — mean/max absolute relative error, error quantiles and
//!   sorted error CDFs (the units of Figures 2–4),
//! * [`matrix`] — the small dense linear-algebra kernel backing OLS,
//! * [`par`] — deterministic parallel reduction (index-ordered term buffer,
//!   sequential fold) for fanning a single objective evaluation across
//!   threads without changing one bit of the sum.
//!
//! Everything is deterministic: stochastic components (ANN initialisation,
//! multi-start jitter) take explicit seeds.
//!
//! # Examples
//!
//! Fit a 1-D quadratic with Nelder–Mead:
//!
//! ```
//! use regress::nelder_mead::{minimize, Options};
//!
//! let objective = |p: &[f64]| (p[0] - 3.0).powi(2) + 1.0;
//! let result = minimize(objective, &[0.0], &Options::default());
//! assert!((result.params[0] - 3.0).abs() < 1e-6);
//! assert!((result.value - 1.0).abs() < 1e-10);
//! ```

pub mod ann;
pub mod bootstrap;
pub mod linear;
pub mod lm;
pub mod matrix;
pub mod metrics;
pub mod nelder_mead;
pub mod par;

pub use ann::{AnnModel, AnnOptions};
pub use bootstrap::{bootstrap_params, r_squared, ParamSpread};
pub use linear::LinearModel;
pub use lm::{levenberg_marquardt, LmOptions, LmResult};
pub use metrics::ErrorSummary;
pub use nelder_mead::{minimize, minimize_bounded, MultiStart, MultiStartProfile, Options};
