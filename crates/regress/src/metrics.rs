//! Prediction-error metrics used throughout the paper's evaluation.
//!
//! The paper reports: the *average absolute relative error* (Fig. 2 and 4),
//! the maximum error, the fraction of benchmarks under a threshold ("90% of
//! all benchmarks have a prediction error below 20%"), and sorted error
//! CDFs (Fig. 3). The regression objective itself is the sum of relative
//! squared errors following Tofallis — [`relative_squared_error_sum`].

use std::fmt;

/// Absolute relative error `|pred - meas| / meas` of one prediction.
///
/// # Panics
///
/// Panics if `measured` is zero (a benchmark cannot have measured CPI 0).
#[inline]
pub fn relative_error(predicted: f64, measured: f64) -> f64 {
    assert!(measured != 0.0, "measured value must be nonzero");
    ((predicted - measured) / measured).abs()
}

/// The paper's regression criterion: `Σ (ŷᵢ − yᵢ)² / yᵢ` (sum of squared
/// errors, each normalised by the measured value), which "minimizes the
/// average absolute value of the relative error, as suggested by Tofallis"
/// (paper §4).
///
/// # Panics
///
/// Panics if the slices differ in length or any measured value is zero.
pub fn relative_squared_error_sum(predicted: &[f64], measured: &[f64]) -> f64 {
    assert_eq!(predicted.len(), measured.len(), "length mismatch");
    predicted
        .iter()
        .zip(measured)
        .map(|(&p, &m)| {
            assert!(m != 0.0, "measured value must be nonzero");
            (p - m) * (p - m) / m
        })
        .sum()
}

/// Summary statistics over a set of per-benchmark relative errors.
///
/// # Examples
///
/// ```
/// use regress::ErrorSummary;
///
/// let s = ErrorSummary::from_predictions(&[1.1, 2.0, 2.7], &[1.0, 2.0, 3.0]);
/// assert!((s.mean - 0.0667).abs() < 1e-3);
/// assert!((s.max - 0.1).abs() < 1e-12);
/// assert_eq!(s.count, 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorSummary {
    /// Mean absolute relative error.
    pub mean: f64,
    /// Maximum absolute relative error.
    pub max: f64,
    /// Median absolute relative error.
    pub median: f64,
    /// 90th-percentile absolute relative error.
    pub p90: f64,
    /// Number of predictions summarised.
    pub count: usize,
}

impl ErrorSummary {
    /// Builds a summary from raw per-benchmark relative errors.
    ///
    /// # Panics
    ///
    /// Panics if `errors` is empty or contains non-finite values.
    pub fn from_errors(errors: &[f64]) -> Self {
        assert!(!errors.is_empty(), "need at least one error value");
        assert!(
            errors.iter().all(|e| e.is_finite()),
            "errors must be finite"
        );
        let mut sorted = errors.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Self {
            mean,
            max: *sorted.last().expect("non-empty"),
            median: quantile_sorted(&sorted, 0.5),
            p90: quantile_sorted(&sorted, 0.9),
            count: sorted.len(),
        }
    }

    /// Builds a summary directly from prediction/measurement pairs.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`relative_error`] and
    /// [`ErrorSummary::from_errors`].
    pub fn from_predictions(predicted: &[f64], measured: &[f64]) -> Self {
        assert_eq!(predicted.len(), measured.len(), "length mismatch");
        let errors: Vec<f64> = predicted
            .iter()
            .zip(measured)
            .map(|(&p, &m)| relative_error(p, m))
            .collect();
        Self::from_errors(&errors)
    }

    /// Fraction of benchmarks with error strictly below `threshold` — the
    /// paper's "90% of all benchmarks have a prediction error below 20%".
    pub fn fraction_below(errors: &[f64], threshold: f64) -> f64 {
        if errors.is_empty() {
            return f64::NAN;
        }
        errors.iter().filter(|&&e| e < threshold).count() as f64 / errors.len() as f64
    }
}

impl fmt::Display for ErrorSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.1}%, median {:.1}%, p90 {:.1}%, max {:.1}% over {} benchmarks",
            self.mean * 100.0,
            self.median * 100.0,
            self.p90 * 100.0,
            self.max * 100.0,
            self.count
        )
    }
}

/// Sorted error curve for CDF plots: returns `(fraction, error)` points,
/// errors ascending — exactly the axes of Fig. 3 ("a point (x, y) says that
/// x% of the benchmarks have a prediction error below y%").
pub fn error_cdf(errors: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = errors.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, e)| ((i + 1) as f64 / n as f64, e))
        .collect()
}

/// Linear-interpolated quantile of an ascending-sorted slice.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert!((relative_error(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(0.9, 1.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(2.0, 2.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn relative_error_rejects_zero_measured() {
        let _ = relative_error(1.0, 0.0);
    }

    #[test]
    fn tofallis_criterion() {
        // (1.5-1)^2/1 + (3-4)^2/4 = 0.25 + 0.25
        let s = relative_squared_error_sum(&[1.5, 3.0], &[1.0, 4.0]);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_statistics() {
        let errors = [0.05, 0.10, 0.20, 0.01, 0.30];
        let s = ErrorSummary::from_errors(&errors);
        assert!((s.mean - 0.132).abs() < 1e-12);
        assert!((s.max - 0.30).abs() < 1e-12);
        assert!((s.median - 0.10).abs() < 1e-12);
        assert_eq!(s.count, 5);
        assert!(s.p90 > 0.2 && s.p90 <= 0.3);
    }

    #[test]
    fn fraction_below_threshold() {
        let errors = [0.05, 0.15, 0.25, 0.35];
        assert!((ErrorSummary::fraction_below(&errors, 0.20) - 0.5).abs() < 1e-12);
        assert_eq!(ErrorSummary::fraction_below(&errors, 1.0), 1.0);
        assert!(ErrorSummary::fraction_below(&[], 0.2).is_nan());
    }

    #[test]
    fn cdf_is_sorted_and_complete() {
        let cdf = error_cdf(&[0.3, 0.1, 0.2]);
        assert_eq!(cdf.len(), 3);
        assert!((cdf[0].1 - 0.1).abs() < 1e-12);
        assert!((cdf[2].1 - 0.3).abs() < 1e-12);
        assert!((cdf[2].0 - 1.0).abs() < 1e-12);
        for pair in cdf.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [0.0, 1.0];
        assert!((quantile_sorted(&sorted, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(quantile_sorted(&[7.0], 0.9), 7.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_summary_panics() {
        let _ = ErrorSummary::from_errors(&[]);
    }

    #[test]
    fn display_is_percent_formatted() {
        let s = ErrorSummary::from_errors(&[0.097]);
        let text = s.to_string();
        assert!(text.contains("9.7%"), "{text}");
    }
}
