//! Ordinary least squares — the paper's first purely empirical baseline.
//!
//! The baseline regresses CPI on the same counter-derived rates the gray-box
//! model consumes (paper §4: "Both linear regression and ANNs use the exact
//! same input as mechanistic-empirical modeling"). Features are standardised
//! to zero mean / unit variance before solving the normal equations, and a
//! small ridge term keeps the solve well-posed when two rates are nearly
//! collinear across a suite (common: L2 and L3 miss rates track each other).

use crate::matrix::Matrix;
use std::fmt;

/// A fitted linear model `y ≈ w·standardize(x) + b`.
///
/// # Examples
///
/// ```
/// use regress::LinearModel;
///
/// // y = 2*x0 + 1 exactly.
/// let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
/// let ys = vec![1.0, 3.0, 5.0, 7.0];
/// let model = LinearModel::fit(&xs, &ys, 0.0).unwrap();
/// assert!((model.predict(&[10.0]) - 21.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    weights: Vec<f64>,
    intercept: f64,
    feature_means: Vec<f64>,
    feature_scales: Vec<f64>,
}

/// Error returned by [`LinearModel::fit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// No training rows were supplied.
    Empty,
    /// Rows have inconsistent feature counts.
    RaggedRows,
    /// Number of targets differs from number of rows.
    TargetMismatch,
    /// The (ridge-damped) normal equations were still singular.
    Singular,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::Empty => f.write_str("no training data"),
            FitError::RaggedRows => f.write_str("feature rows have inconsistent lengths"),
            FitError::TargetMismatch => f.write_str("target count differs from row count"),
            FitError::Singular => f.write_str("normal equations are singular"),
        }
    }
}

impl std::error::Error for FitError {}

impl LinearModel {
    /// Fits by least squares with ridge damping `ridge >= 0` on the
    /// standardised features (the intercept is never penalised).
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] when the data is empty, ragged, mismatched with
    /// the targets, or (for `ridge == 0`) exactly collinear.
    pub fn fit(features: &[Vec<f64>], targets: &[f64], ridge: f64) -> Result<Self, FitError> {
        if features.is_empty() {
            return Err(FitError::Empty);
        }
        if targets.len() != features.len() {
            return Err(FitError::TargetMismatch);
        }
        let dim = features[0].len();
        if features.iter().any(|row| row.len() != dim) {
            return Err(FitError::RaggedRows);
        }
        let rows = features.len();

        // Standardise features; constant columns get scale 1 (their weight
        // is then absorbed by the intercept).
        let mut means = vec![0.0; dim];
        for row in features {
            for (m, x) in means.iter_mut().zip(row) {
                *m += x / rows as f64;
            }
        }
        let mut scales = vec![0.0; dim];
        for row in features {
            for ((s, x), m) in scales.iter_mut().zip(row).zip(&means) {
                *s += (x - m) * (x - m) / rows as f64;
            }
        }
        for s in &mut scales {
            *s = s.sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }

        // Design matrix with a trailing intercept column of ones.
        let mut design = Matrix::zeros(rows, dim + 1);
        for (r, row) in features.iter().enumerate() {
            for c in 0..dim {
                design[(r, c)] = (row[c] - means[c]) / scales[c];
            }
            design[(r, dim)] = 1.0;
        }
        let dt = design.transposed();
        let mut normal = dt.matmul(&design);
        for c in 0..dim {
            normal[(c, c)] += ridge;
        }
        let rhs = dt.matvec(targets);
        let solution = normal.solve(&rhs).map_err(|_| FitError::Singular)?;

        Ok(Self {
            weights: solution[..dim].to_vec(),
            intercept: solution[dim],
            feature_means: means,
            feature_scales: scales,
        })
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted dimensionality.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.weights.len(),
            "feature dimensionality mismatch"
        );
        let mut y = self.intercept;
        for ((w, x), (m, s)) in self
            .weights
            .iter()
            .zip(x)
            .zip(self.feature_means.iter().zip(&self.feature_scales))
        {
            y += w * (x - m) / s;
        }
        y
    }

    /// Predicts every row of `xs`.
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Weights on the standardised features (useful for significance
    /// eyeballing, as the paper does when discussing which rates matter).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_function() {
        // y = 3*x0 - 2*x1 + 5
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] - 2.0 * x[1] + 5.0).collect();
        let model = LinearModel::fit(&xs, &ys, 0.0).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((model.predict(x) - y).abs() < 1e-8);
        }
        assert!((model.predict(&[100.0, 3.0]) - 299.0).abs() < 1e-6);
    }

    #[test]
    fn constant_feature_is_tolerated() {
        let xs = vec![vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]];
        let ys = vec![2.0, 4.0, 6.0];
        let model = LinearModel::fit(&xs, &ys, 1e-9).unwrap();
        assert!((model.predict(&[4.0, 5.0]) - 8.0).abs() < 1e-6);
    }

    #[test]
    fn ridge_handles_collinearity() {
        // Second feature is an exact copy of the first.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        assert_eq!(LinearModel::fit(&xs, &ys, 0.0), Err(FitError::Singular));
        let model = LinearModel::fit(&xs, &ys, 1e-6).unwrap();
        assert!((model.predict(&[5.0, 5.0]) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn input_validation() {
        assert_eq!(LinearModel::fit(&[], &[], 0.0), Err(FitError::Empty));
        assert_eq!(
            LinearModel::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0], 0.0),
            Err(FitError::RaggedRows)
        );
        assert_eq!(
            LinearModel::fit(&[vec![1.0]], &[1.0, 2.0], 0.0),
            Err(FitError::TargetMismatch)
        );
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn predict_rejects_wrong_arity() {
        let model = LinearModel::fit(&[vec![1.0], vec![2.0]], &[1.0, 2.0], 0.0).unwrap();
        let _ = model.predict(&[1.0, 2.0]);
    }

    #[test]
    fn predict_all_matches_predict() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ys = vec![1.0, 2.0, 3.0];
        let model = LinearModel::fit(&xs, &ys, 0.0).unwrap();
        let all = model.predict_all(&xs);
        for (row, y) in xs.iter().zip(all) {
            assert_eq!(model.predict(row), y);
        }
    }
}
