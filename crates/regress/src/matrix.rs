//! A small dense matrix kernel: just enough linear algebra for ordinary
//! least squares on a handful of features.
//!
//! The empirical baselines in the paper regress CPI on roughly a dozen
//! counter-derived rates over at most 55 benchmarks; a naive `Vec<f64>`
//! row-major matrix with partial-pivoting Gaussian elimination is simple,
//! dependency-free and numerically adequate at that scale (we additionally
//! standardise features and offer ridge damping in [`crate::linear`]).

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// # Examples
///
/// ```
/// use regress::matrix::Matrix;
///
/// let mut m = Matrix::zeros(2, 2);
/// m[(0, 0)] = 2.0;
/// m[(1, 1)] = 4.0;
/// let x = m.solve(&[6.0, 8.0]).unwrap();
/// assert!((x[0] - 3.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Error returned by [`Matrix::solve`] when the system is singular (or so
/// ill-conditioned that a pivot underflows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError;

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrixError {}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        assert_eq!(data.len(), rows * cols, "data length must match dimensions");
        Self {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must match columns");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self[(r, c)] * v[c]).sum())
            .collect()
    }

    /// Solves the square system `self * x = b` by Gaussian elimination with
    /// partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if no usable pivot is found.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != rows`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length must match rows");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivoting: bring the largest remaining entry into place.
            let pivot_row = (col..n)
                .max_by(|&i, &j| a[i * n + col].abs().total_cmp(&a[j * n + col].abs()))
                .expect("non-empty range");
            let pivot = a[pivot_row * n + col];
            if pivot.abs() < 1e-300 || !pivot.is_finite() {
                return Err(SingularMatrixError);
            }
            if pivot_row != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot_row * n + k);
                }
                x.swap(col, pivot_row);
            }
            for row in (col + 1)..n {
                let factor = a[row * n + col] / a[col * n + col];
                if factor == 0.0 {
                    continue;
                }
                a[row * n + col] = 0.0;
                for k in (col + 1)..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for k in (col + 1)..n {
                acc -= a[col * n + k] * x[k];
            }
            let pivot = a[col * n + col];
            if pivot.abs() < 1e-300 || !pivot.is_finite() {
                return Err(SingularMatrixError);
            }
            x[col] = acc / pivot;
        }
        Ok(x)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.5e}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_to_rhs() {
        let m = Matrix::identity(3);
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5 ; x + 3y = 10  => x = 1, y = 3
        let m = Matrix::from_rows(2, 2, &[2.0, 1.0, 1.0, 3.0]);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let m = Matrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_is_reported() {
        let m = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(m.solve(&[1.0, 2.0]), Err(SingularMatrixError));
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = a.transposed();
        assert_eq!(at.rows(), 3);
        assert_eq!(at.cols(), 2);
        let ata = at.matmul(&a);
        assert_eq!(ata.rows(), 3);
        assert!((ata[(0, 0)] - 17.0).abs() < 1e-12); // 1 + 16
        assert!((ata[(2, 2)] - 45.0).abs() < 1e-12); // 9 + 36
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn solve_rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        let _ = a.solve(&[0.0, 0.0]);
    }

    #[test]
    fn solve_large_well_conditioned() {
        // Diagonally dominant 20x20 system: solution recovered accurately.
        let n = 20;
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = if i == j {
                    10.0
                } else {
                    1.0 / (1.0 + (i + j) as f64)
                };
            }
        }
        let truth: Vec<f64> = (0..n).map(|i| (i as f64) - 7.5).collect();
        let b = m.matvec(&truth);
        let x = m.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&truth) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }
}
