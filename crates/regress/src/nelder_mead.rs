//! Bounded, derivative-free Nelder–Mead simplex minimisation with
//! deterministic (optionally parallel) multi-start.
//!
//! The paper fits the ten `b`-parameters of Eq. 2–6 with SPSS's nonlinear
//! regression under the sum-of-relative-squared-errors criterion. The
//! objective is smooth but non-convex (power laws, products, a `max`), has
//! few parameters and cheap evaluations — exactly the regime where a simplex
//! method with restarts is a dependable replacement for a commercial solver.
//!
//! Box bounds are enforced by clamping trial points; multi-start jitters the
//! initial simplex deterministically from a caller-supplied seed so fits are
//! reproducible. Because every start is an independent deterministic
//! minimisation, [`MultiStart`] can fan the starts across scoped threads and
//! still return **bit-identical** results to the sequential path: the winner
//! is the start with the lowest objective value, ties broken by lowest start
//! index — exactly the start a strictly-improving sequential fold would have
//! kept.

/// Options controlling a Nelder–Mead run.
///
/// The defaults follow the standard Nelder–Mead coefficients
/// (reflection 1, expansion 2, contraction ½, shrink ½).
#[derive(Debug, Clone)]
pub struct Options {
    /// Maximum number of objective evaluations per start.
    pub max_evals: usize,
    /// Convergence: stop when the simplex's value spread falls below this.
    pub value_tolerance: f64,
    /// Convergence: stop when the simplex's parameter spread falls below this.
    pub param_tolerance: f64,
    /// Initial simplex step, as a fraction of each parameter's magnitude
    /// (or absolute, for parameters at zero).
    pub initial_step: f64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            max_evals: 20_000,
            value_tolerance: 1e-12,
            param_tolerance: 1e-10,
            initial_step: 0.25,
        }
    }
}

/// Result of a minimisation: best parameters, objective value, and effort.
#[derive(Debug, Clone, PartialEq)]
pub struct Minimum {
    /// Best parameter vector found.
    pub params: Vec<f64>,
    /// Objective value at [`Minimum::params`].
    pub value: f64,
    /// Number of objective evaluations spent.
    pub evals: usize,
}

/// Effort accounting for one [`MultiStart::run_profiled`] call — the whole
/// fan-out, not just the winning start (a [`Minimum`]'s `evals` field only
/// counts the winner's own budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MultiStartProfile {
    /// Starts actually minimised, after clamped-duplicate dedupe.
    pub starts: u64,
    /// Objective evaluations summed across every start.
    pub evals: u64,
}

/// Minimises `f` starting from `x0`, unconstrained.
///
/// Convenience wrapper over [`minimize_bounded`] with infinite bounds.
///
/// # Examples
///
/// ```
/// use regress::nelder_mead::{minimize, Options};
///
/// // Rosenbrock's banana function.
/// let f = |p: &[f64]| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2);
/// let m = minimize(f, &[-1.2, 1.0], &Options { max_evals: 50_000, ..Options::default() });
/// assert!((m.params[0] - 1.0).abs() < 1e-4);
/// assert!((m.params[1] - 1.0).abs() < 1e-4);
/// ```
pub fn minimize<F: FnMut(&[f64]) -> f64>(f: F, x0: &[f64], opts: &Options) -> Minimum {
    let bounds: Vec<(f64, f64)> = x0
        .iter()
        .map(|_| (f64::NEG_INFINITY, f64::INFINITY))
        .collect();
    minimize_bounded(f, x0, &bounds, opts)
}

/// Clamps `x` into the box in place.
fn clamp_into(x: &mut [f64], bounds: &[(f64, f64)]) {
    for (xi, &(lo, hi)) in x.iter_mut().zip(bounds) {
        *xi = xi.clamp(lo, hi);
    }
}

/// Minimises `f` subject to per-parameter box bounds `lo <= x[i] <= hi`.
///
/// Trial points are clamped into the box before evaluation, which keeps the
/// simplex inside the feasible region (the fitted model's exponents and
/// scale factors all have natural sign/range constraints).
///
/// The inner loop is allocation-free: the simplex, the two trial points,
/// the centroid and the ordering scratch are all allocated once per run and
/// reused across iterations, so a 20 000-evaluation fit makes a dozen
/// allocations instead of tens of thousands. The arithmetic (and therefore
/// every result bit) is unchanged from the allocating formulation.
///
/// # Panics
///
/// Panics if `x0` is empty, `bounds.len() != x0.len()`, or any bound pair is
/// inverted.
pub fn minimize_bounded<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    bounds: &[(f64, f64)],
    opts: &Options,
) -> Minimum {
    assert!(!x0.is_empty(), "need at least one parameter");
    assert_eq!(bounds.len(), x0.len(), "one bound pair per parameter");
    for &(lo, hi) in bounds {
        assert!(lo <= hi, "inverted bound: {lo} > {hi}");
    }
    let n = x0.len();

    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    // Initial simplex: x0 plus one vertex per axis.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    let mut start = x0.to_vec();
    clamp_into(&mut start, bounds);
    simplex.push(start.clone());
    for i in 0..n {
        let mut v = start.clone();
        let step = if v[i] != 0.0 {
            v[i].abs() * opts.initial_step
        } else {
            opts.initial_step
        };
        v[i] += step;
        clamp_into(&mut v, bounds);
        if v == simplex[0] {
            // Clamping collapsed the vertex onto the start; step inward.
            v[i] -= 2.0 * step;
            clamp_into(&mut v, bounds);
        }
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|v| eval(v, &mut evals)).collect();

    // Per-run scratch, reused every iteration.
    let mut order: Vec<usize> = (0..=n).collect();
    let mut centroid = vec![0.0f64; n];
    let mut trial = vec![0.0f64; n]; // reflected point
    let mut trial2 = vec![0.0f64; n]; // expanded / contracted point

    // Writes `centroid + alpha * (centroid - worst)` clamped into `out`.
    let blend = |alpha: f64, centroid: &[f64], worst: &[f64], out: &mut [f64]| {
        for ((o, c), w) in out.iter_mut().zip(centroid).zip(worst) {
            *o = c + alpha * (c - w);
        }
        clamp_into(out, bounds);
    };

    while evals < opts.max_evals {
        // Order the simplex: best first.
        for (slot, i) in order.iter_mut().zip(0..=n) {
            *slot = i;
        }
        order.sort_by(|&i, &j| values[i].total_cmp(&values[j]));
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        let spread = values[worst] - values[best];
        let param_spread = simplex
            .iter()
            .flat_map(|v| v.iter().zip(&simplex[best]).map(|(a, b)| (a - b).abs()))
            .fold(0.0f64, f64::max);
        if spread.abs() < opts.value_tolerance && param_spread < opts.param_tolerance {
            break;
        }

        // Centroid of all but the worst vertex.
        centroid.fill(0.0);
        for (i, v) in simplex.iter().enumerate() {
            if i == worst {
                continue;
            }
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += x / n as f64;
            }
        }

        // Reflect.
        blend(1.0, &centroid, &simplex[worst], &mut trial);
        let reflected_value = eval(&trial, &mut evals);
        if reflected_value < values[best] {
            // Try to expand further in the same direction.
            blend(2.0, &centroid, &simplex[worst], &mut trial2);
            let expanded_value = eval(&trial2, &mut evals);
            if expanded_value < reflected_value {
                simplex[worst].copy_from_slice(&trial2);
                values[worst] = expanded_value;
            } else {
                simplex[worst].copy_from_slice(&trial);
                values[worst] = reflected_value;
            }
            continue;
        }
        if reflected_value < values[second_worst] {
            simplex[worst].copy_from_slice(&trial);
            values[worst] = reflected_value;
            continue;
        }
        // Contract (outside if the reflection helped at all, inside otherwise).
        let alpha = if reflected_value < values[worst] {
            0.5
        } else {
            -0.5
        };
        blend(alpha, &centroid, &simplex[worst], &mut trial2);
        let contracted_value = eval(&trial2, &mut evals);
        if contracted_value < values[worst].min(reflected_value) {
            simplex[worst].copy_from_slice(&trial2);
            values[worst] = contracted_value;
            continue;
        }
        // Shrink every vertex toward the best. `trial` doubles as the
        // anchor copy (the reflected point in it is dead at this point).
        trial.copy_from_slice(&simplex[best]);
        for (i, v) in simplex.iter_mut().enumerate() {
            if i == best {
                continue;
            }
            for (x, a) in v.iter_mut().zip(&trial) {
                *x = a + 0.5 * (*x - a);
            }
            clamp_into(v, bounds);
            values[i] = eval(v, &mut evals);
        }
    }

    let best = (0..=n)
        .min_by(|&i, &j| values[i].total_cmp(&values[j]))
        .expect("simplex is non-empty");
    Minimum {
        params: simplex.swap_remove(best),
        value: values[best],
        evals,
    }
}

/// Warm-start refinement: a single bounded simplex run seeded *at* `x0` with
/// a deliberately small initial step and a caller-capped evaluation budget.
///
/// This is the incremental-refit primitive: when new counter batches arrive
/// for a workload that has not drifted, the previous fit's parameters are
/// already inside the right basin, so a tight local polish replaces the full
/// [`MultiStart`] fan-out (13 starts × 30 000 evaluations in the default
/// campaign configuration). Callers remain responsible for detecting drift
/// and falling back to the full fan-out when the basin may have moved.
///
/// Deterministic: same inputs, same minimum, bit for bit.
///
/// # Examples
///
/// ```
/// use regress::nelder_mead::refine;
///
/// let f = |p: &[f64]| (p[0] - 3.0).powi(2);
/// // Start near the optimum, polish with a small budget.
/// let m = refine(f, &[2.9], &[(0.0, 10.0)], 500);
/// assert!((m.params[0] - 3.0).abs() < 1e-6);
/// assert!(m.evals <= 500);
/// ```
///
/// # Panics
///
/// Panics on the same degenerate inputs as [`minimize_bounded`].
pub fn refine<F: FnMut(&[f64]) -> f64>(
    f: F,
    x0: &[f64],
    bounds: &[(f64, f64)],
    max_evals: usize,
) -> Minimum {
    let opts = Options {
        max_evals: max_evals.max(1),
        // A small step keeps the polish local: the warm start is trusted to
        // sit in the right basin, so the simplex should not leap out of it.
        initial_step: 0.05,
        ..Options::default()
    };
    minimize_bounded(f, x0, bounds, &opts)
}

/// Deterministic multi-start driver around [`minimize_bounded`].
///
/// Runs one simplex from the caller's initial guess plus `extra_starts`
/// jittered starts generated from `seed` by a small xorshift stream, and
/// keeps the best minimum. This recovers the global basin for the paper's
/// mildly multi-modal objective without any dependence on system entropy.
///
/// Two performance levers, both result-preserving:
///
/// * **Dedupe** — jittered start points that clamp onto an
///   already-scheduled simplex origin are skipped before any objective
///   evaluation. A duplicated origin reruns the *identical* deterministic
///   minimisation (same simplex, same trajectory, same minimum), so
///   skipping it saves a whole `max_evals` budget without changing the
///   winner. This matters when bounds pin axes (degenerate boxes collapse
///   every start onto one point).
/// * **Threads** — with [`MultiStart::threads`] above 1, the surviving
///   starts fan out across [`std::thread::scope`] workers. Each start is
///   independent and deterministic, and the winner rule (lowest objective
///   value, ties broken by lowest start index) picks exactly the start a
///   strictly-improving sequential fold would have kept — so any thread
///   count, 1 included, returns bit-identical parameters and value.
///
/// # Examples
///
/// ```
/// use regress::nelder_mead::{MultiStart, Options};
///
/// // A bimodal objective; multi-start finds the deeper well at x = 4.
/// let f = |p: &[f64]| {
///     let x = p[0];
///     ((x + 2.0).powi(2) - 1.0).min((x - 4.0).powi(2) - 5.0)
/// };
/// let ms = MultiStart::new(12, 0xC0FFEE);
/// let m = ms.run(f, &[-2.0], &[(-10.0, 10.0)], &Options::default());
/// assert!((m.params[0] - 4.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct MultiStart {
    extra_starts: usize,
    seed: u64,
    threads: usize,
}

impl MultiStart {
    /// Creates a driver that adds `extra_starts` jittered restarts derived
    /// from `seed`. Starts run sequentially until a thread budget is set
    /// with [`MultiStart::threads`].
    pub fn new(extra_starts: usize, seed: u64) -> Self {
        Self {
            extra_starts,
            seed,
            threads: 1,
        }
    }

    /// Sets the worker-thread budget for [`MultiStart::run`] (minimum 1).
    /// Purely a scheduling knob: the result is bit-identical for every
    /// value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The start points this driver would minimise from, in start order,
    /// with clamped duplicates removed: the caller's guess first, then the
    /// surviving jittered starts. Exposed for effort accounting and tests.
    pub fn start_points(&self, x0: &[f64], bounds: &[(f64, f64)]) -> Vec<Vec<f64>> {
        let mut state = self.seed | 1;
        let mut next_unit = move || -> f64 {
            // xorshift64*: cheap, deterministic, good enough for jitter.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bits = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (bits >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut starts: Vec<Vec<f64>> = Vec::with_capacity(1 + self.extra_starts);
        let mut first = x0.to_vec();
        clamp_into(&mut first, bounds);
        starts.push(first);
        for _ in 0..self.extra_starts {
            // The jitter stream is consumed for every candidate — deduping
            // must never shift later starts' coordinates.
            let mut jittered: Vec<f64> = x0
                .iter()
                .zip(bounds)
                .map(|(&x, &(lo, hi))| {
                    let u = next_unit();
                    if lo.is_finite() && hi.is_finite() {
                        lo + u * (hi - lo)
                    } else {
                        // Scale-jitter around the guess for unbounded axes.
                        let scale = if x != 0.0 { x.abs() } else { 1.0 };
                        x + (u - 0.5) * 4.0 * scale
                    }
                })
                .collect();
            clamp_into(&mut jittered, bounds);
            // A start that clamps onto an already-scheduled origin would
            // rerun the identical minimisation: the simplex construction,
            // trajectory and minimum are all functions of the clamped
            // origin alone. Equal value can never beat an earlier index
            // under the strict winner rule, so the duplicate is pure waste.
            if !starts.contains(&jittered) {
                starts.push(jittered);
            }
        }
        starts
    }

    /// Runs the multi-start minimisation. See [`minimize_bounded`] for the
    /// meaning of `bounds`; panics under the same conditions.
    ///
    /// `f` is shared by reference across worker threads, hence the
    /// `Fn + Sync` bound (an objective capturing only shared read-only
    /// state, as regression objectives do, satisfies it for free).
    pub fn run<F: Fn(&[f64]) -> f64 + Sync>(
        &self,
        f: F,
        x0: &[f64],
        bounds: &[(f64, f64)],
        opts: &Options,
    ) -> Minimum {
        self.run_profiled(f, x0, bounds, opts).0
    }

    /// [`MultiStart::run`] plus effort accounting: the minimum and a
    /// [`MultiStartProfile`] totalling the evaluations every start spent.
    /// The minimum is bit-identical to [`MultiStart::run`]'s, and the
    /// profile is schedule-independent (each start's evaluation count is a
    /// function of its origin alone, and the totals sum over all of them).
    pub fn run_profiled<F: Fn(&[f64]) -> f64 + Sync>(
        &self,
        f: F,
        x0: &[f64],
        bounds: &[(f64, f64)],
        opts: &Options,
    ) -> (Minimum, MultiStartProfile) {
        let starts = self.start_points(x0, bounds);
        let minima = run_starts(&f, &starts, bounds, opts, self.threads);
        let profile = MultiStartProfile {
            starts: minima.len() as u64,
            evals: minima.iter().map(|m| m.evals as u64).sum(),
        };
        // Winner: lowest value, ties to the lowest start index — the same
        // start a sequential `candidate.value < best.value` fold keeps.
        let best = minima
            .into_iter()
            .reduce(|best, candidate| {
                if candidate.value < best.value {
                    candidate
                } else {
                    best
                }
            })
            .expect("at least one start");
        (best, profile)
    }
}

/// Minimises from every start, fanning across at most `threads` scoped
/// workers. Results come back in start order regardless of schedule.
fn run_starts<F: Fn(&[f64]) -> f64 + Sync>(
    f: &F,
    starts: &[Vec<f64>],
    bounds: &[(f64, f64)],
    opts: &Options,
    threads: usize,
) -> Vec<Minimum> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let workers = threads.clamp(1, starts.len().max(1));
    if workers == 1 {
        return starts
            .iter()
            .map(|s| minimize_bounded(f, s, bounds, opts))
            .collect();
    }
    let mut slots: Vec<Option<Minimum>> = vec![None; starts.len()];
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        // Work-stealing schedule: each worker pulls the next unclaimed
        // start index off a shared counter, so a worker whose starts
        // converge early moves on to the stragglers instead of idling out
        // a static stride (starts differ wildly in evaluations spent).
        // Which worker runs which start never matters — every slot is
        // written exactly once with a deterministic result.
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || -> Vec<(usize, Minimum)> {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(start) = starts.get(i) else {
                            return done;
                        };
                        done.push((i, minimize_bounded(f, start, bounds, opts)));
                    }
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(results) => {
                    for (i, m) in results {
                        slots[i] = Some(m);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|m| m.expect("every start was minimised"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sphere_converges() {
        let m = minimize(
            |p| p.iter().map(|x| x * x).sum(),
            &[3.0, -4.0, 5.0],
            &Options::default(),
        );
        for x in &m.params {
            assert!(x.abs() < 1e-5, "{x}");
        }
        assert!(m.value < 1e-9);
    }

    #[test]
    fn respects_bounds() {
        // Unconstrained minimum at x = -3, but box is [0, 10].
        let m = minimize_bounded(
            |p| (p[0] + 3.0).powi(2),
            &[5.0],
            &[(0.0, 10.0)],
            &Options::default(),
        );
        assert!(m.params[0] >= 0.0);
        assert!(m.params[0] < 1e-6);
    }

    #[test]
    fn nan_objective_is_treated_as_infinite() {
        // sqrt goes NaN for negative x; optimizer must still find x=1.
        let m = minimize_bounded(
            |p| (p[0].sqrt() - 1.0).powi(2),
            &[4.0],
            &[(f64::NEG_INFINITY, f64::INFINITY)],
            &Options::default(),
        );
        assert!((m.params[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn refine_polishes_cheaply_and_deterministically() {
        let f = |p: &[f64]| (p[0] - 1.5).powi(2) + (p[1] + 0.5).powi(2);
        let a = refine(f, &[1.45, -0.55], &[(0.0, 2.0), (-2.0, 0.0)], 1_000);
        let b = refine(f, &[1.45, -0.55], &[(0.0, 2.0), (-2.0, 0.0)], 1_000);
        assert_eq!(a.params, b.params);
        assert_eq!(a.value, b.value);
        assert!((a.params[0] - 1.5).abs() < 1e-6 && (a.params[1] + 0.5).abs() < 1e-6);
        assert!(a.evals <= 1_000);
    }

    #[test]
    fn refine_stays_local() {
        // Shallow well at x=-2, deep well at x=4: a warm start in the shallow
        // well must polish locally rather than jump basins.
        let f = |p: &[f64]| ((p[0] + 2.0).powi(2) - 1.0).min((p[0] - 4.0).powi(2) - 5.0);
        let m = refine(f, &[-2.05], &[(-10.0, 10.0)], 2_000);
        assert!(
            (m.params[0] + 2.0).abs() < 1e-3,
            "left the basin: {:?}",
            m.params
        );
    }

    #[test]
    fn refine_respects_eval_budget() {
        let f = |p: &[f64]| (p[0].sin() * 5.0) + 0.1 * p[0] * p[0];
        let m = refine(f, &[9.0], &[(-20.0, 20.0)], 25);
        // Budget is a cap per iteration check; a full iteration may overshoot
        // by the few evaluations it was already committed to.
        assert!(m.evals <= 40, "spent {} evals", m.evals);
    }

    #[test]
    fn multistart_is_deterministic() {
        let f = |p: &[f64]| (p[0].sin() * 5.0) + 0.1 * p[0] * p[0];
        let ms = MultiStart::new(8, 42);
        let a = ms.run(f, &[9.0], &[(-20.0, 20.0)], &Options::default());
        let b = ms.run(f, &[9.0], &[(-20.0, 20.0)], &Options::default());
        assert_eq!(a.params, b.params);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn multistart_escapes_local_minimum() {
        // Start in the shallow well at x=-2; deep well at x=4.
        let f = |p: &[f64]| ((p[0] + 2.0).powi(2) - 1.0).min((p[0] - 4.0).powi(2) - 5.0);
        let single = minimize_bounded(f, &[-2.0], &[(-10.0, 10.0)], &Options::default());
        assert!(
            (single.params[0] + 2.0).abs() < 1e-3,
            "single start stays local"
        );
        let multi = MultiStart::new(10, 7).run(f, &[-2.0], &[(-10.0, 10.0)], &Options::default());
        assert!(
            (multi.params[0] - 4.0).abs() < 1e-3,
            "multi start goes global"
        );
    }

    #[test]
    fn parallel_multistart_is_bit_identical_to_sequential() {
        // The tentpole invariant: any thread budget returns the exact bits
        // the sequential path returns — on a rugged multi-well objective
        // where start choice genuinely decides the winner.
        let f = |p: &[f64]| {
            (p[0].sin() * 5.0) + 0.1 * p[0] * p[0] + (p[1] * 3.0).cos() + 0.05 * p[1] * p[1]
        };
        let bounds = [(-20.0, 20.0), (-15.0, 15.0)];
        let sequential = MultiStart::new(12, 99).run(f, &[9.0, -7.0], &bounds, &Options::default());
        for threads in [2, 3, 8, 32] {
            let parallel = MultiStart::new(12, 99).threads(threads).run(
                f,
                &[9.0, -7.0],
                &bounds,
                &Options::default(),
            );
            assert_eq!(parallel.params, sequential.params, "threads={threads}");
            assert_eq!(
                parallel.value.to_bits(),
                sequential.value.to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn run_profiled_totals_every_start_and_is_schedule_independent() {
        let f = |p: &[f64]| (p[0].sin() * 5.0) + 0.1 * p[0] * p[0];
        let bounds = [(-20.0, 20.0)];
        let ms = MultiStart::new(8, 42);
        let (m, profile) = ms.run_profiled(f, &[9.0], &bounds, &Options::default());
        let plain = ms.run(f, &[9.0], &bounds, &Options::default());
        assert_eq!(m.params, plain.params);
        assert_eq!(m.value.to_bits(), plain.value.to_bits());
        assert_eq!(
            profile.starts,
            ms.start_points(&[9.0], &bounds).len() as u64,
            "every surviving start is counted"
        );
        assert!(
            profile.evals >= m.evals as u64,
            "fan-out total at least the winner's own budget"
        );
        // Evaluation totals are a function of the starts, not the schedule.
        for threads in [2, 3, 8] {
            let (tm, tp) = MultiStart::new(8, 42).threads(threads).run_profiled(
                f,
                &[9.0],
                &bounds,
                &Options::default(),
            );
            assert_eq!(tm.params, m.params, "threads={threads}");
            assert_eq!(tp, profile, "threads={threads}");
        }
    }

    #[test]
    fn duplicate_clamped_starts_are_skipped() {
        // Every axis pinned: all 9 jittered candidates clamp onto the
        // caller's (clamped) origin, so exactly one minimisation runs.
        let evals = AtomicUsize::new(0);
        let f = |p: &[f64]| {
            evals.fetch_add(1, Ordering::Relaxed);
            (p[0] - 2.0).powi(2)
        };
        let opts = Options {
            max_evals: 500,
            ..Options::default()
        };
        let ms = MultiStart::new(9, 0xD0D0);
        let starts = ms.start_points(&[5.0], &[(2.0, 2.0)]);
        assert_eq!(starts, vec![vec![2.0]], "all starts collapse onto x=2");
        let m = ms.run(f, &[5.0], &[(2.0, 2.0)], &opts);
        assert_eq!(m.params, vec![2.0]);
        let spent = evals.load(Ordering::Relaxed);
        assert!(
            spent <= opts.max_evals,
            "one run's budget, not ten: {spent} evals"
        );
        // A deduped run must still agree with what ten duplicate runs
        // would have returned (they are the same minimisation).
        let lone = minimize_bounded(
            |p: &[f64]| (p[0] - 2.0).powi(2),
            &[5.0],
            &[(2.0, 2.0)],
            &opts,
        );
        assert_eq!(m.params, lone.params);
        assert_eq!(m.value.to_bits(), lone.value.to_bits());
    }

    #[test]
    fn partially_pinned_bounds_keep_distinct_starts() {
        // One pinned axis, one free: starts still differ on the free axis
        // and none may be deduped away.
        let ms = MultiStart::new(6, 7);
        let starts = ms.start_points(&[0.0, 0.0], &[(1.0, 1.0), (-4.0, 4.0)]);
        assert_eq!(starts.len(), 7, "no false dedupe: {starts:?}");
        for s in &starts {
            assert_eq!(s[0], 1.0, "pinned axis clamps everywhere");
        }
    }

    #[test]
    fn eval_budget_is_respected() {
        let opts = Options {
            max_evals: 100,
            ..Options::default()
        };
        let m = minimize(|p| p[0] * p[0], &[100.0], &opts);
        assert!(m.evals <= 100 + 2); // initial simplex may finish a step
    }

    #[test]
    #[should_panic(expected = "at least one parameter")]
    fn empty_start_panics() {
        let _ = minimize(|_| 0.0, &[], &Options::default());
    }

    #[test]
    #[should_panic(expected = "inverted bound")]
    fn inverted_bounds_panic() {
        let _ = minimize_bounded(|p| p[0], &[0.0], &[(1.0, -1.0)], &Options::default());
    }

    #[test]
    fn start_on_upper_bound_still_moves() {
        let m = minimize_bounded(
            |p| (p[0] - 2.0).powi(2),
            &[10.0],
            &[(0.0, 10.0)],
            &Options::default(),
        );
        assert!((m.params[0] - 2.0).abs() < 1e-5);
    }
}
