//! Bounded, derivative-free Nelder–Mead simplex minimisation with
//! deterministic multi-start.
//!
//! The paper fits the ten `b`-parameters of Eq. 2–6 with SPSS's nonlinear
//! regression under the sum-of-relative-squared-errors criterion. The
//! objective is smooth but non-convex (power laws, products, a `max`), has
//! few parameters and cheap evaluations — exactly the regime where a simplex
//! method with restarts is a dependable replacement for a commercial solver.
//!
//! Box bounds are enforced by clamping trial points; multi-start jitters the
//! initial simplex deterministically from a caller-supplied seed so fits are
//! reproducible.

/// Options controlling a Nelder–Mead run.
///
/// The defaults follow the standard Nelder–Mead coefficients
/// (reflection 1, expansion 2, contraction ½, shrink ½).
#[derive(Debug, Clone)]
pub struct Options {
    /// Maximum number of objective evaluations per start.
    pub max_evals: usize,
    /// Convergence: stop when the simplex's value spread falls below this.
    pub value_tolerance: f64,
    /// Convergence: stop when the simplex's parameter spread falls below this.
    pub param_tolerance: f64,
    /// Initial simplex step, as a fraction of each parameter's magnitude
    /// (or absolute, for parameters at zero).
    pub initial_step: f64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            max_evals: 20_000,
            value_tolerance: 1e-12,
            param_tolerance: 1e-10,
            initial_step: 0.25,
        }
    }
}

/// Result of a minimisation: best parameters, objective value, and effort.
#[derive(Debug, Clone, PartialEq)]
pub struct Minimum {
    /// Best parameter vector found.
    pub params: Vec<f64>,
    /// Objective value at [`Minimum::params`].
    pub value: f64,
    /// Number of objective evaluations spent.
    pub evals: usize,
}

/// Minimises `f` starting from `x0`, unconstrained.
///
/// Convenience wrapper over [`minimize_bounded`] with infinite bounds.
///
/// # Examples
///
/// ```
/// use regress::nelder_mead::{minimize, Options};
///
/// // Rosenbrock's banana function.
/// let f = |p: &[f64]| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2);
/// let m = minimize(f, &[-1.2, 1.0], &Options { max_evals: 50_000, ..Options::default() });
/// assert!((m.params[0] - 1.0).abs() < 1e-4);
/// assert!((m.params[1] - 1.0).abs() < 1e-4);
/// ```
pub fn minimize<F: FnMut(&[f64]) -> f64>(f: F, x0: &[f64], opts: &Options) -> Minimum {
    let bounds: Vec<(f64, f64)> = x0
        .iter()
        .map(|_| (f64::NEG_INFINITY, f64::INFINITY))
        .collect();
    minimize_bounded(f, x0, &bounds, opts)
}

/// Minimises `f` subject to per-parameter box bounds `lo <= x[i] <= hi`.
///
/// Trial points are clamped into the box before evaluation, which keeps the
/// simplex inside the feasible region (the fitted model's exponents and
/// scale factors all have natural sign/range constraints).
///
/// # Panics
///
/// Panics if `x0` is empty, `bounds.len() != x0.len()`, or any bound pair is
/// inverted.
pub fn minimize_bounded<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    bounds: &[(f64, f64)],
    opts: &Options,
) -> Minimum {
    assert!(!x0.is_empty(), "need at least one parameter");
    assert_eq!(bounds.len(), x0.len(), "one bound pair per parameter");
    for &(lo, hi) in bounds {
        assert!(lo <= hi, "inverted bound: {lo} > {hi}");
    }
    let n = x0.len();
    let clamp = |x: &mut [f64]| {
        for (xi, &(lo, hi)) in x.iter_mut().zip(bounds) {
            *xi = xi.clamp(lo, hi);
        }
    };

    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    // Initial simplex: x0 plus one vertex per axis.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    let mut start = x0.to_vec();
    clamp(&mut start);
    simplex.push(start.clone());
    for i in 0..n {
        let mut v = start.clone();
        let step = if v[i] != 0.0 {
            v[i].abs() * opts.initial_step
        } else {
            opts.initial_step
        };
        v[i] += step;
        clamp(&mut v);
        if v == simplex[0] {
            // Clamping collapsed the vertex onto the start; step inward.
            v[i] -= 2.0 * step;
            clamp(&mut v);
        }
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|v| eval(v, &mut evals)).collect();

    while evals < opts.max_evals {
        // Order the simplex: best first.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&i, &j| values[i].total_cmp(&values[j]));
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        let spread = values[worst] - values[best];
        let param_spread = simplex
            .iter()
            .flat_map(|v| v.iter().zip(&simplex[best]).map(|(a, b)| (a - b).abs()))
            .fold(0.0f64, f64::max);
        if spread.abs() < opts.value_tolerance && param_spread < opts.param_tolerance {
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for (i, v) in simplex.iter().enumerate() {
            if i == worst {
                continue;
            }
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += x / n as f64;
            }
        }

        let blend = |alpha: f64| -> Vec<f64> {
            let mut p: Vec<f64> = centroid
                .iter()
                .zip(&simplex[worst])
                .map(|(c, w)| c + alpha * (c - w))
                .collect();
            clamp(&mut p);
            p
        };

        // Reflect.
        let reflected = blend(1.0);
        let reflected_value = eval(&reflected, &mut evals);
        if reflected_value < values[best] {
            // Try to expand further in the same direction.
            let expanded = blend(2.0);
            let expanded_value = eval(&expanded, &mut evals);
            if expanded_value < reflected_value {
                simplex[worst] = expanded;
                values[worst] = expanded_value;
            } else {
                simplex[worst] = reflected;
                values[worst] = reflected_value;
            }
            continue;
        }
        if reflected_value < values[second_worst] {
            simplex[worst] = reflected;
            values[worst] = reflected_value;
            continue;
        }
        // Contract (outside if the reflection helped at all, inside otherwise).
        let contracted = if reflected_value < values[worst] {
            blend(0.5)
        } else {
            blend(-0.5)
        };
        let contracted_value = eval(&contracted, &mut evals);
        if contracted_value < values[worst].min(reflected_value) {
            simplex[worst] = contracted;
            values[worst] = contracted_value;
            continue;
        }
        // Shrink every vertex toward the best.
        let anchor = simplex[best].clone();
        for (i, v) in simplex.iter_mut().enumerate() {
            if i == best {
                continue;
            }
            for (x, a) in v.iter_mut().zip(&anchor) {
                *x = a + 0.5 * (*x - a);
            }
            clamp(v);
            values[i] = eval(v, &mut evals);
        }
    }

    let best = (0..=n)
        .min_by(|&i, &j| values[i].total_cmp(&values[j]))
        .expect("simplex is non-empty");
    Minimum {
        params: simplex[best].clone(),
        value: values[best],
        evals,
    }
}

/// Deterministic multi-start driver around [`minimize_bounded`].
///
/// Runs one simplex from the caller's initial guess plus `extra_starts`
/// jittered starts generated from `seed` by a small xorshift stream, and
/// keeps the best minimum. This recovers the global basin for the paper's
/// mildly multi-modal objective without any dependence on system entropy.
///
/// # Examples
///
/// ```
/// use regress::nelder_mead::{MultiStart, Options};
///
/// // A bimodal objective; multi-start finds the deeper well at x = 4.
/// let f = |p: &[f64]| {
///     let x = p[0];
///     ((x + 2.0).powi(2) - 1.0).min((x - 4.0).powi(2) - 5.0)
/// };
/// let ms = MultiStart::new(12, 0xC0FFEE);
/// let m = ms.run(f, &[-2.0], &[(-10.0, 10.0)], &Options::default());
/// assert!((m.params[0] - 4.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct MultiStart {
    extra_starts: usize,
    seed: u64,
}

impl MultiStart {
    /// Creates a driver that adds `extra_starts` jittered restarts derived
    /// from `seed`.
    pub fn new(extra_starts: usize, seed: u64) -> Self {
        Self { extra_starts, seed }
    }

    /// Runs the multi-start minimisation. See [`minimize_bounded`] for the
    /// meaning of `bounds`; panics under the same conditions.
    pub fn run<F: FnMut(&[f64]) -> f64>(
        &self,
        mut f: F,
        x0: &[f64],
        bounds: &[(f64, f64)],
        opts: &Options,
    ) -> Minimum {
        let mut best = minimize_bounded(&mut f, x0, bounds, opts);
        let mut state = self.seed | 1;
        let mut next_unit = move || -> f64 {
            // xorshift64*: cheap, deterministic, good enough for jitter.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bits = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (bits >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..self.extra_starts {
            let jittered: Vec<f64> = x0
                .iter()
                .zip(bounds)
                .map(|(&x, &(lo, hi))| {
                    let u = next_unit();
                    if lo.is_finite() && hi.is_finite() {
                        lo + u * (hi - lo)
                    } else {
                        // Scale-jitter around the guess for unbounded axes.
                        let scale = if x != 0.0 { x.abs() } else { 1.0 };
                        x + (u - 0.5) * 4.0 * scale
                    }
                })
                .collect();
            let candidate = minimize_bounded(&mut f, &jittered, bounds, opts);
            if candidate.value < best.value {
                best = candidate;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_converges() {
        let m = minimize(
            |p| p.iter().map(|x| x * x).sum(),
            &[3.0, -4.0, 5.0],
            &Options::default(),
        );
        for x in &m.params {
            assert!(x.abs() < 1e-5, "{x}");
        }
        assert!(m.value < 1e-9);
    }

    #[test]
    fn respects_bounds() {
        // Unconstrained minimum at x = -3, but box is [0, 10].
        let m = minimize_bounded(
            |p| (p[0] + 3.0).powi(2),
            &[5.0],
            &[(0.0, 10.0)],
            &Options::default(),
        );
        assert!(m.params[0] >= 0.0);
        assert!(m.params[0] < 1e-6);
    }

    #[test]
    fn nan_objective_is_treated_as_infinite() {
        // sqrt goes NaN for negative x; optimizer must still find x=1.
        let m = minimize_bounded(
            |p| (p[0].sqrt() - 1.0).powi(2),
            &[4.0],
            &[(f64::NEG_INFINITY, f64::INFINITY)],
            &Options::default(),
        );
        assert!((m.params[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn multistart_is_deterministic() {
        let f = |p: &[f64]| (p[0].sin() * 5.0) + 0.1 * p[0] * p[0];
        let ms = MultiStart::new(8, 42);
        let a = ms.run(f, &[9.0], &[(-20.0, 20.0)], &Options::default());
        let b = ms.run(f, &[9.0], &[(-20.0, 20.0)], &Options::default());
        assert_eq!(a.params, b.params);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn multistart_escapes_local_minimum() {
        // Start in the shallow well at x=-2; deep well at x=4.
        let f = |p: &[f64]| ((p[0] + 2.0).powi(2) - 1.0).min((p[0] - 4.0).powi(2) - 5.0);
        let single = minimize_bounded(f, &[-2.0], &[(-10.0, 10.0)], &Options::default());
        assert!(
            (single.params[0] + 2.0).abs() < 1e-3,
            "single start stays local"
        );
        let multi = MultiStart::new(10, 7).run(f, &[-2.0], &[(-10.0, 10.0)], &Options::default());
        assert!(
            (multi.params[0] - 4.0).abs() < 1e-3,
            "multi start goes global"
        );
    }

    #[test]
    fn eval_budget_is_respected() {
        let opts = Options {
            max_evals: 100,
            ..Options::default()
        };
        let m = minimize(|p| p[0] * p[0], &[100.0], &opts);
        assert!(m.evals <= 100 + 2); // initial simplex may finish a step
    }

    #[test]
    #[should_panic(expected = "at least one parameter")]
    fn empty_start_panics() {
        let _ = minimize(|_| 0.0, &[], &Options::default());
    }

    #[test]
    #[should_panic(expected = "inverted bound")]
    fn inverted_bounds_panic() {
        let _ = minimize_bounded(|p| p[0], &[0.0], &[(1.0, -1.0)], &Options::default());
    }

    #[test]
    fn start_on_upper_bound_still_moves() {
        let m = minimize_bounded(
            |p| (p[0] - 2.0).powi(2),
            &[10.0],
            &[(0.0, 10.0)],
            &Options::default(),
        );
        assert!((m.params[0] - 2.0).abs() < 1e-5);
    }
}
