//! Levenberg–Marquardt nonlinear least squares.
//!
//! The paper's SPSS nonlinear regression is (per SPSS documentation) a
//! Levenberg–Marquardt solver; our default fitting engine is Nelder–Mead
//! because the model's `max`/clamp kinks make derivatives locally
//! unreliable — but LM converges much faster where the surface is smooth.
//! This module provides LM with finite-difference Jacobians so the two can
//! be compared head-to-head (see the optimizer ablation bench), with the
//! same box-bound handling (clamping) as the simplex path.

/// Options controlling a Levenberg–Marquardt run.
#[derive(Debug, Clone)]
pub struct LmOptions {
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Stop when the relative reduction of the objective falls below this.
    pub tolerance: f64,
    /// Step used for forward-difference Jacobians, relative to parameter
    /// magnitude.
    pub fd_step: f64,
}

impl Default for LmOptions {
    fn default() -> Self {
        Self {
            max_iters: 200,
            initial_lambda: 1e-3,
            tolerance: 1e-12,
            fd_step: 1e-6,
        }
    }
}

/// Result of an LM minimisation.
#[derive(Debug, Clone, PartialEq)]
pub struct LmResult {
    /// Best parameter vector found (inside the bounds).
    pub params: Vec<f64>,
    /// Sum of squared residuals at [`LmResult::params`].
    pub sum_squares: f64,
    /// Outer iterations consumed.
    pub iters: usize,
}

/// Minimises `Σ rᵢ(x)²` over box-bounded parameters, where `residuals`
/// fills `out` with the residual vector at `x`.
///
/// # Panics
///
/// Panics if `x0` is empty, bounds mismatch, or the residual count is zero.
///
/// # Examples
///
/// ```
/// use regress::lm::{levenberg_marquardt, LmOptions};
///
/// // Fit y = a·exp(b·t) to exact data (a=2, b=0.5).
/// let ts: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
/// let ys: Vec<f64> = ts.iter().map(|t| 2.0 * (0.5 * t).exp()).collect();
/// let result = levenberg_marquardt(
///     |p, out| {
///         for ((t, y), r) in ts.iter().zip(&ys).zip(out.iter_mut()) {
///             *r = p[0] * (p[1] * t).exp() - y;
///         }
///     },
///     &[1.0, 0.1],
///     &[(0.0, 10.0), (-2.0, 2.0)],
///     ys.len(),
///     &LmOptions::default(),
/// );
/// assert!((result.params[0] - 2.0).abs() < 1e-6);
/// assert!((result.params[1] - 0.5).abs() < 1e-6);
/// ```
pub fn levenberg_marquardt<F>(
    mut residuals: F,
    x0: &[f64],
    bounds: &[(f64, f64)],
    n_residuals: usize,
    opts: &LmOptions,
) -> LmResult
where
    F: FnMut(&[f64], &mut [f64]),
{
    assert!(!x0.is_empty(), "need at least one parameter");
    assert_eq!(bounds.len(), x0.len(), "one bound pair per parameter");
    assert!(n_residuals > 0, "need at least one residual");
    let n = x0.len();
    let m = n_residuals;

    let clamp = |x: &mut [f64]| {
        for (xi, &(lo, hi)) in x.iter_mut().zip(bounds) {
            *xi = xi.clamp(lo, hi);
        }
    };
    let mut x = x0.to_vec();
    clamp(&mut x);

    let mut r = vec![0.0; m];
    let mut r_trial = vec![0.0; m];
    let mut jac = vec![0.0; m * n]; // row-major m×n
    let mut x_pert = vec![0.0; n];

    let sum_sq = |r: &[f64]| -> f64 { r.iter().map(|v| v * v).sum() };

    residuals(&x, &mut r);
    let mut cost = sum_sq(&r);
    let mut lambda = opts.initial_lambda;
    let mut iters = 0;

    for _ in 0..opts.max_iters {
        iters += 1;
        // Forward-difference Jacobian.
        for j in 0..n {
            x_pert.copy_from_slice(&x);
            let h = (x[j].abs() * opts.fd_step).max(opts.fd_step);
            // Step inward if at the upper bound.
            let h = if x_pert[j] + h > bounds[j].1 { -h } else { h };
            x_pert[j] += h;
            residuals(&x_pert, &mut r_trial);
            for i in 0..m {
                jac[i * n + j] = (r_trial[i] - r[i]) / h;
            }
        }
        // Normal equations: (JᵀJ + λ diag(JᵀJ)) δ = -Jᵀ r.
        let mut jtj = vec![0.0; n * n];
        let mut jtr = vec![0.0; n];
        for i in 0..m {
            for a in 0..n {
                let ja = jac[i * n + a];
                if ja == 0.0 {
                    continue;
                }
                jtr[a] += ja * r[i];
                for b in a..n {
                    jtj[a * n + b] += ja * jac[i * n + b];
                }
            }
        }
        for a in 0..n {
            for b in 0..a {
                jtj[a * n + b] = jtj[b * n + a];
            }
        }
        // Try steps with adaptive damping.
        let mut improved = false;
        for _ in 0..16 {
            let mut damped = jtj.clone();
            for a in 0..n {
                let d = damped[a * n + a];
                damped[a * n + a] = d + lambda * d.max(1e-12);
            }
            let rhs: Vec<f64> = jtr.iter().map(|v| -v).collect();
            let Some(delta) = solve_dense(&damped, &rhs, n) else {
                lambda *= 10.0;
                continue;
            };
            let mut x_new: Vec<f64> = x.iter().zip(&delta).map(|(a, d)| a + d).collect();
            clamp(&mut x_new);
            residuals(&x_new, &mut r_trial);
            let cost_new = sum_sq(&r_trial);
            if cost_new < cost {
                let rel = (cost - cost_new) / cost.max(1e-300);
                x = x_new;
                std::mem::swap(&mut r, &mut r_trial);
                cost = cost_new;
                lambda = (lambda * 0.3).max(1e-12);
                improved = true;
                if rel < opts.tolerance {
                    return LmResult {
                        params: x,
                        sum_squares: cost,
                        iters,
                    };
                }
                break;
            }
            lambda *= 10.0;
            if lambda > 1e12 {
                break;
            }
        }
        if !improved {
            break;
        }
    }
    LmResult {
        params: x,
        sum_squares: cost,
        iters,
    }
}

/// Gaussian elimination with partial pivoting on a flat row-major matrix.
/// Returns `None` when singular.
fn solve_dense(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    let mut m = a.to_vec();
    let mut x = b.to_vec();
    for col in 0..n {
        let pivot_row =
            (col..n).max_by(|&i, &j| m[i * n + col].abs().total_cmp(&m[j * n + col].abs()))?;
        if m[pivot_row * n + col].abs() < 1e-300 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            x.swap(col, pivot_row);
        }
        for row in (col + 1)..n {
            let f = m[row * n + col] / m[col * n + col];
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= f * m[col * n + k];
            }
            x[row] -= f * x[col];
        }
    }
    for col in (0..n).rev() {
        let mut acc = x[col];
        for k in (col + 1)..n {
            acc -= m[col * n + k] * x[k];
        }
        x[col] = acc / m[col * n + col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_linear_model_exactly() {
        // y = 3x + 1; residuals linear in params → one LM step suffices.
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let res = levenberg_marquardt(
            |p, out| {
                for ((x, y), r) in xs.iter().zip(&ys).zip(out.iter_mut()) {
                    *r = p[0] * x + p[1] - y;
                }
            },
            &[0.0, 0.0],
            &[(-10.0, 10.0), (-10.0, 10.0)],
            ys.len(),
            &LmOptions::default(),
        );
        assert!((res.params[0] - 3.0).abs() < 1e-8);
        assert!((res.params[1] - 1.0).abs() < 1e-8);
        assert!(res.sum_squares < 1e-12);
    }

    #[test]
    fn respects_bounds() {
        // Unconstrained best slope is 3, but the box caps it at 2.
        let xs: Vec<f64> = (1..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x).collect();
        let res = levenberg_marquardt(
            |p, out| {
                for ((x, y), r) in xs.iter().zip(&ys).zip(out.iter_mut()) {
                    *r = p[0] * x - y;
                }
            },
            &[1.0],
            &[(0.0, 2.0)],
            ys.len(),
            &LmOptions::default(),
        );
        assert!(res.params[0] <= 2.0 + 1e-12);
        assert!((res.params[0] - 2.0).abs() < 1e-6, "{}", res.params[0]);
    }

    #[test]
    fn converges_on_rosenbrock_residuals() {
        // Rosenbrock as two residuals: (1-x, 10(y-x²)).
        let res = levenberg_marquardt(
            |p, out| {
                out[0] = 1.0 - p[0];
                out[1] = 10.0 * (p[1] - p[0] * p[0]);
            },
            &[-1.2, 1.0],
            &[(-5.0, 5.0), (-5.0, 5.0)],
            2,
            &LmOptions::default(),
        );
        assert!((res.params[0] - 1.0).abs() < 1e-6);
        assert!((res.params[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic() {
        let run = || {
            levenberg_marquardt(
                |p, out| {
                    out[0] = p[0] * p[0] - 2.0;
                },
                &[1.0],
                &[(0.0, 4.0)],
                1,
                &LmOptions::default(),
            )
        };
        assert_eq!(run(), run());
        assert!((run().params[0] - std::f64::consts::SQRT_2).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "at least one parameter")]
    fn rejects_empty_params() {
        let _ = levenberg_marquardt(|_, _| {}, &[], &[], 1, &LmOptions::default());
    }
}
