//! A small multi-layer perceptron — the paper's second empirical baseline.
//!
//! The paper (§4) describes it precisely: "a multi-layer perceptron with a
//! hidden layer that is connected to the input layer and output layer. Each
//! hidden node is connected to each input, and the output node is connected
//! to each hidden node. A hidden node computes the tanh function of the
//! weighted sum of its inputs; the output node computes a weighted sum
//! across the hidden nodes."
//!
//! We train with full-batch Adam on mean squared error over standardised
//! features and targets, from a seeded deterministic initialisation. The
//! point of this baseline in the paper is that it fits the training suite
//! well but *overfits* — transfers poorly to the other suite — which is an
//! emergent property we must not suppress, so no weight decay or early
//! stopping is applied by default.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Training hyper-parameters for [`AnnModel::fit`].
#[derive(Debug, Clone)]
pub struct AnnOptions {
    /// Number of hidden tanh units.
    pub hidden: usize,
    /// Full-batch Adam steps.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 weight decay (0 in the paper-faithful configuration).
    pub weight_decay: f64,
    /// Seed for weight initialisation.
    pub seed: u64,
}

impl Default for AnnOptions {
    /// Paper-faithful configuration: enough capacity relative to a 48–55
    /// benchmark training set to fit it essentially exactly — which is the
    /// point; the paper's ANN baseline overfits, and suppressing that with
    /// regularisation would erase the phenomenon under study.
    fn default() -> Self {
        Self {
            hidden: 16,
            epochs: 8_000,
            learning_rate: 0.02,
            weight_decay: 0.0,
            seed: 0x5EED,
        }
    }
}

/// Error returned by [`AnnModel::fit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnFitError {
    /// No training rows were supplied.
    Empty,
    /// Rows have inconsistent feature counts.
    RaggedRows,
    /// Number of targets differs from number of rows.
    TargetMismatch,
    /// `hidden == 0` or `epochs == 0`.
    BadOptions,
}

impl fmt::Display for AnnFitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnFitError::Empty => f.write_str("no training data"),
            AnnFitError::RaggedRows => f.write_str("feature rows have inconsistent lengths"),
            AnnFitError::TargetMismatch => f.write_str("target count differs from row count"),
            AnnFitError::BadOptions => f.write_str("hidden units and epochs must be nonzero"),
        }
    }
}

impl std::error::Error for AnnFitError {}

/// A fitted one-hidden-layer tanh MLP.
///
/// # Examples
///
/// ```
/// use regress::{AnnModel, AnnOptions};
///
/// // Learn y = x^2 on [-2, 2].
/// let xs: Vec<Vec<f64>> = (-20..=20).map(|i| vec![i as f64 / 10.0]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
/// let model = AnnModel::fit(&xs, &ys, &AnnOptions::default()).unwrap();
/// assert!((model.predict(&[1.5]) - 2.25).abs() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct AnnModel {
    // Layout: hidden weights (hidden × dim), hidden biases, output weights,
    // output bias — all over standardised inputs/targets.
    w1: Vec<f64>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
    dim: usize,
    hidden: usize,
    x_means: Vec<f64>,
    x_scales: Vec<f64>,
    y_mean: f64,
    y_scale: f64,
}

impl AnnModel {
    /// Trains the network. Deterministic for fixed inputs and options.
    ///
    /// # Errors
    ///
    /// Returns [`AnnFitError`] for empty/ragged/mismatched data or zero-sized
    /// options.
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        opts: &AnnOptions,
    ) -> Result<Self, AnnFitError> {
        if features.is_empty() {
            return Err(AnnFitError::Empty);
        }
        if targets.len() != features.len() {
            return Err(AnnFitError::TargetMismatch);
        }
        let dim = features[0].len();
        if features.iter().any(|r| r.len() != dim) {
            return Err(AnnFitError::RaggedRows);
        }
        if opts.hidden == 0 || opts.epochs == 0 {
            return Err(AnnFitError::BadOptions);
        }
        let rows = features.len();
        let hidden = opts.hidden;

        // Standardisation statistics.
        let mut x_means = vec![0.0; dim];
        for row in features {
            for (m, x) in x_means.iter_mut().zip(row) {
                *m += x / rows as f64;
            }
        }
        let mut x_scales = vec![0.0; dim];
        for row in features {
            for ((s, x), m) in x_scales.iter_mut().zip(row).zip(&x_means) {
                *s += (x - m) * (x - m) / rows as f64;
            }
        }
        for s in &mut x_scales {
            *s = s.sqrt().max(1e-12);
        }
        let y_mean = targets.iter().sum::<f64>() / rows as f64;
        let y_scale = (targets
            .iter()
            .map(|y| (y - y_mean) * (y - y_mean))
            .sum::<f64>()
            / rows as f64)
            .sqrt()
            .max(1e-12);

        let xs: Vec<Vec<f64>> = features
            .iter()
            .map(|row| {
                row.iter()
                    .zip(x_means.iter().zip(&x_scales))
                    .map(|(x, (m, s))| (x - m) / s)
                    .collect()
            })
            .collect();
        let ys: Vec<f64> = targets.iter().map(|y| (y - y_mean) / y_scale).collect();

        // Xavier-ish init from the seeded generator.
        let mut rng = SmallRng::seed_from_u64(opts.seed);
        let scale1 = (1.0 / dim as f64).sqrt();
        let scale2 = (1.0 / hidden as f64).sqrt();
        let mut w1: Vec<f64> = (0..hidden * dim)
            .map(|_| rng.gen_range(-scale1..scale1))
            .collect();
        let mut b1 = vec![0.0; hidden];
        let mut w2: Vec<f64> = (0..hidden)
            .map(|_| rng.gen_range(-scale2..scale2))
            .collect();
        let mut b2 = 0.0f64;

        // Adam state.
        let total = hidden * dim + hidden + hidden + 1;
        let mut m = vec![0.0; total];
        let mut v = vec![0.0; total];
        let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);

        let mut grad = vec![0.0; total];
        let mut act = vec![0.0; hidden];
        for epoch in 1..=opts.epochs {
            grad.iter_mut().for_each(|g| *g = 0.0);
            for (x, &y) in xs.iter().zip(&ys) {
                // Forward.
                for h in 0..hidden {
                    let mut z = b1[h];
                    for (wi, xi) in w1[h * dim..(h + 1) * dim].iter().zip(x) {
                        z += wi * xi;
                    }
                    act[h] = z.tanh();
                }
                let mut out = b2;
                for (wo, a) in w2.iter().zip(&act) {
                    out += wo * a;
                }
                // Backward: d(MSE)/d(out).
                let delta = 2.0 * (out - y) / rows as f64;
                let (g_w1, rest) = grad.split_at_mut(hidden * dim);
                let (g_b1, rest) = rest.split_at_mut(hidden);
                let (g_w2, g_b2) = rest.split_at_mut(hidden);
                g_b2[0] += delta;
                for h in 0..hidden {
                    g_w2[h] += delta * act[h];
                    let dh = delta * w2[h] * (1.0 - act[h] * act[h]);
                    g_b1[h] += dh;
                    for (g, xi) in g_w1[h * dim..(h + 1) * dim].iter_mut().zip(x) {
                        *g += dh * xi;
                    }
                }
            }
            // One Adam step over the flat parameter vector.
            let correction1 = 1.0 - beta1.powi(epoch as i32);
            let correction2 = 1.0 - beta2.powi(epoch as i32);
            let mut apply = |idx: usize, param: &mut f64, g: f64| {
                let g = g + opts.weight_decay * *param;
                m[idx] = beta1 * m[idx] + (1.0 - beta1) * g;
                v[idx] = beta2 * v[idx] + (1.0 - beta2) * g * g;
                let mhat = m[idx] / correction1;
                let vhat = v[idx] / correction2;
                *param -= opts.learning_rate * mhat / (vhat.sqrt() + eps);
            };
            let mut idx = 0;
            for p in w1.iter_mut() {
                apply(idx, p, grad[idx]);
                idx += 1;
            }
            for p in b1.iter_mut() {
                apply(idx, p, grad[idx]);
                idx += 1;
            }
            for p in w2.iter_mut() {
                apply(idx, p, grad[idx]);
                idx += 1;
            }
            apply(idx, &mut b2, grad[idx]);
        }

        Ok(Self {
            w1,
            b1,
            w2,
            b2,
            dim,
            hidden,
            x_means,
            x_scales,
            y_mean,
            y_scale,
        })
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted dimensionality.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "feature dimensionality mismatch");
        let xs: Vec<f64> = x
            .iter()
            .zip(self.x_means.iter().zip(&self.x_scales))
            .map(|(x, (m, s))| (x - m) / s)
            .collect();
        let mut out = self.b2;
        for h in 0..self.hidden {
            let mut z = self.b1[h];
            for (wi, xi) in self.w1[h * self.dim..(h + 1) * self.dim].iter().zip(&xs) {
                z += wi * xi;
            }
            out += self.w2[h] * z.tanh();
        }
        out * self.y_scale + self.y_mean
    }

    /// Predicts every row of `xs`.
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Number of hidden units.
    pub fn hidden_units(&self) -> usize {
        self.hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_function() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 10.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] + 1.0).collect();
        let model = AnnModel::fit(&xs, &ys, &AnnOptions::default()).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!(
                (model.predict(x) - y).abs() < 0.15,
                "{} vs {}",
                model.predict(x),
                y
            );
        }
    }

    #[test]
    fn learns_nonlinear_function() {
        let xs: Vec<Vec<f64>> = (-20..=20).map(|i| vec![i as f64 / 5.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0].sin()).collect();
        let opts = AnnOptions {
            hidden: 12,
            epochs: 8_000,
            ..AnnOptions::default()
        };
        let model = AnnModel::fit(&xs, &ys, &opts).unwrap();
        let mse: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (model.predict(x) - y).powi(2))
            .sum::<f64>()
            / xs.len() as f64;
        assert!(mse < 0.01, "mse = {mse}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let opts = AnnOptions {
            epochs: 200,
            ..AnnOptions::default()
        };
        let a = AnnModel::fit(&xs, &ys, &opts).unwrap();
        let b = AnnModel::fit(&xs, &ys, &opts).unwrap();
        assert_eq!(a.predict(&[3.3]), b.predict(&[3.3]));
    }

    #[test]
    fn different_seeds_differ() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| (i * i) as f64).collect();
        let a = AnnModel::fit(
            &xs,
            &ys,
            &AnnOptions {
                epochs: 50,
                seed: 1,
                ..AnnOptions::default()
            },
        )
        .unwrap();
        let b = AnnModel::fit(
            &xs,
            &ys,
            &AnnOptions {
                epochs: 50,
                seed: 2,
                ..AnnOptions::default()
            },
        )
        .unwrap();
        assert_ne!(a.predict(&[3.3]), b.predict(&[3.3]));
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            AnnModel::fit(&[], &[], &AnnOptions::default()).unwrap_err(),
            AnnFitError::Empty
        );
        assert_eq!(
            AnnModel::fit(
                &[vec![1.0], vec![1.0, 2.0]],
                &[0.0, 0.0],
                &AnnOptions::default()
            )
            .unwrap_err(),
            AnnFitError::RaggedRows
        );
        assert_eq!(
            AnnModel::fit(&[vec![1.0]], &[0.0, 1.0], &AnnOptions::default()).unwrap_err(),
            AnnFitError::TargetMismatch
        );
        let bad = AnnOptions {
            hidden: 0,
            ..AnnOptions::default()
        };
        assert_eq!(
            AnnModel::fit(&[vec![1.0]], &[0.0], &bad).unwrap_err(),
            AnnFitError::BadOptions
        );
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn predict_rejects_wrong_arity() {
        let model = AnnModel::fit(
            &[vec![1.0], vec![2.0]],
            &[1.0, 2.0],
            &AnnOptions {
                epochs: 10,
                ..AnnOptions::default()
            },
        )
        .unwrap();
        let _ = model.predict(&[1.0, 2.0]);
    }
}
