//! Bootstrap resampling for parameter-stability analysis.
//!
//! The paper reports point estimates for the fitted `b`-parameters; a
//! natural question it leaves open is how *stable* those parameters are
//! across benchmark populations — which bears directly on the robustness
//! claims of §5.2. Resampling the training suite with replacement and
//! refitting yields an empirical distribution per parameter.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Summary of one parameter's bootstrap distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamSpread {
    /// Mean over resamples.
    pub mean: f64,
    /// Standard deviation over resamples.
    pub std_dev: f64,
    /// 5th percentile.
    pub p5: f64,
    /// 95th percentile.
    pub p95: f64,
}

/// Draws `resamples` bootstrap index sets of size `n` (sampling with
/// replacement), deterministically from `seed`, and hands each to `fit`,
/// which returns a parameter vector. Returns one [`ParamSpread`] per
/// parameter position.
///
/// # Panics
///
/// Panics if `n` or `resamples` is zero, or if `fit` returns vectors of
/// inconsistent length.
///
/// # Examples
///
/// ```
/// use regress::bootstrap::bootstrap_params;
///
/// // "Fitting" = the mean of the resampled values: spread shrinks with n.
/// let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
/// let spreads = bootstrap_params(data.len(), 100, 42, |idx| {
///     vec![idx.iter().map(|&i| data[i]).sum::<f64>() / idx.len() as f64]
/// });
/// assert!((spreads[0].mean - 24.5).abs() < 2.0);
/// assert!(spreads[0].std_dev < 4.0);
/// ```
pub fn bootstrap_params<F>(n: usize, resamples: usize, seed: u64, mut fit: F) -> Vec<ParamSpread>
where
    F: FnMut(&[usize]) -> Vec<f64>,
{
    assert!(n > 0, "need a non-empty sample");
    assert!(resamples > 0, "need at least one resample");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut per_param: Vec<Vec<f64>> = Vec::new();
    let mut indices = vec![0usize; n];
    for _ in 0..resamples {
        for slot in indices.iter_mut() {
            *slot = rng.gen_range(0..n);
        }
        let params = fit(&indices);
        if per_param.is_empty() {
            per_param = vec![Vec::with_capacity(resamples); params.len()];
        }
        assert_eq!(
            params.len(),
            per_param.len(),
            "fit returned inconsistent parameter counts"
        );
        for (bucket, v) in per_param.iter_mut().zip(params) {
            bucket.push(v);
        }
    }
    per_param
        .into_iter()
        .map(|mut values| {
            values.sort_by(f64::total_cmp);
            let k = values.len();
            let mean = values.iter().sum::<f64>() / k as f64;
            let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / k as f64;
            let q = |p: f64| values[((p * (k - 1) as f64).round() as usize).min(k - 1)];
            ParamSpread {
                mean,
                std_dev: var.sqrt(),
                p5: q(0.05),
                p95: q(0.95),
            }
        })
        .collect()
}

/// Coefficient of determination `R²` of predictions against measurements.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or the measurements
/// have zero variance.
pub fn r_squared(predicted: &[f64], measured: &[f64]) -> f64 {
    assert_eq!(predicted.len(), measured.len(), "length mismatch");
    assert!(!measured.is_empty(), "need at least one point");
    let mean = measured.iter().sum::<f64>() / measured.len() as f64;
    let ss_tot: f64 = measured.iter().map(|y| (y - mean) * (y - mean)).sum();
    assert!(ss_tot > 0.0, "measurements have zero variance");
    let ss_res: f64 = predicted
        .iter()
        .zip(measured)
        .map(|(p, y)| (p - y) * (p - y))
        .sum();
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_is_deterministic() {
        let fit = |idx: &[usize]| vec![idx.iter().sum::<usize>() as f64];
        let a = bootstrap_params(10, 20, 7, fit);
        let b = bootstrap_params(10, 20, 7, fit);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_fit_has_zero_spread() {
        let s = bootstrap_params(10, 50, 1, |_| vec![3.25]);
        assert_eq!(s[0].mean, 3.25);
        assert_eq!(s[0].std_dev, 0.0);
        assert_eq!(s[0].p5, 3.25);
        assert_eq!(s[0].p95, 3.25);
    }

    #[test]
    fn percentiles_bracket_mean() {
        let s = bootstrap_params(30, 200, 5, |idx| {
            vec![idx.iter().map(|&i| i as f64).sum::<f64>() / idx.len() as f64]
        });
        assert!(s[0].p5 <= s[0].mean);
        assert!(s[0].mean <= s[0].p95);
        assert!(s[0].p5 < s[0].p95, "resampled means must vary");
    }

    #[test]
    fn r_squared_perfect_and_mean_predictor() {
        let y = [1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&y, &y) - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r_squared(&mean_pred, &y).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero variance")]
    fn r_squared_rejects_constant_measurements() {
        let _ = r_squared(&[1.0, 1.0], &[2.0, 2.0]);
    }
}
