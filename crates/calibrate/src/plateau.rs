//! Plateau detection over latency–footprint curves.
//!
//! A pointer-chase sweep produces a staircase: flat runs (footprint fits a
//! level) separated by steps (footprint spills to the next level). The
//! Calibrator methodology reads each level's latency off its plateau.

/// One detected plateau: a maximal run of footprints with similar latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plateau {
    /// Smallest footprint in the run (bytes).
    pub from: u64,
    /// Largest footprint in the run (bytes).
    pub to: u64,
    /// Mean latency over the run (cycles).
    pub latency: f64,
}

/// Splits an ascending-footprint latency curve into plateaus.
///
/// Two adjacent points belong to the same plateau when their latencies
/// differ by less than `rel_tol` (relative) — the staircase's risers are
/// much larger than measurement jitter, so a generous tolerance works.
///
/// # Examples
///
/// ```
/// use calibrate::plateau::detect_plateaus;
///
/// let curve = [(4096, 3.1), (8192, 3.0), (16384, 19.2), (32768, 19.0)];
/// let plateaus = detect_plateaus(&curve, 0.25);
/// assert_eq!(plateaus.len(), 2);
/// assert!((plateaus[0].latency - 3.05).abs() < 0.1);
/// assert!((plateaus[1].latency - 19.1).abs() < 0.2);
/// ```
///
/// # Panics
///
/// Panics if `curve` is empty or not sorted by footprint.
pub fn detect_plateaus(curve: &[(u64, f64)], rel_tol: f64) -> Vec<Plateau> {
    assert!(!curve.is_empty(), "need at least one sweep point");
    assert!(
        curve.windows(2).all(|w| w[0].0 < w[1].0),
        "curve must be sorted by footprint"
    );
    let mut plateaus = Vec::new();
    let mut run_start = 0usize;
    let mut run_sum = curve[0].1;
    let mut run_len = 1usize;
    for i in 1..=curve.len() {
        let extend = if i < curve.len() {
            let mean = run_sum / run_len as f64;
            (curve[i].1 - mean).abs() / mean.max(1e-9) < rel_tol
        } else {
            false
        };
        if extend {
            run_sum += curve[i].1;
            run_len += 1;
        } else {
            plateaus.push(Plateau {
                from: curve[run_start].0,
                to: curve[i - 1].0,
                latency: run_sum / run_len as f64,
            });
            if i < curve.len() {
                run_start = i;
                run_sum = curve[i].1;
                run_len = 1;
            }
        }
    }
    plateaus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_plateau() {
        let curve = [(1024, 3.0), (2048, 3.1), (4096, 2.9)];
        let p = detect_plateaus(&curve, 0.2);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].from, 1024);
        assert_eq!(p[0].to, 4096);
    }

    #[test]
    fn three_level_staircase() {
        let curve = [
            (8 << 10, 3.0),
            (16 << 10, 3.0),
            (64 << 10, 19.0),
            (256 << 10, 19.5),
            (8 << 20, 170.0),
            (16 << 20, 171.0),
        ];
        let p = detect_plateaus(&curve, 0.25);
        assert_eq!(p.len(), 3);
        assert!(p[0].latency < 4.0);
        assert!(p[1].latency > 18.0 && p[1].latency < 21.0);
        assert!(p[2].latency > 165.0);
    }

    #[test]
    fn jitter_does_not_split() {
        let curve: Vec<(u64, f64)> = (0..10)
            .map(|i| (1024u64 << i, 20.0 + (i % 3) as f64 * 0.8))
            .collect();
        assert_eq!(detect_plateaus(&curve, 0.25).len(), 1);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted() {
        let _ = detect_plateaus(&[(200, 1.0), (100, 1.0)], 0.2);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        let _ = detect_plateaus(&[], 0.2);
    }
}
