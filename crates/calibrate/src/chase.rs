//! Pointer-chase microbenchmark traces.
//!
//! The classic latency microbenchmark is a dependent-load chain over a
//! footprint: each load's address comes from the previous load, so loads
//! cannot overlap and the steady-state cycles-per-load equals the access
//! latency of whichever level holds the footprint. The Calibrator tool the
//! paper uses (§4) works exactly this way.

use specgen::{MicroOp, UopKind};

/// An infinite dependent-load chain over `footprint` bytes.
///
/// Addresses walk the footprint's cache lines in a fixed-increment
/// permutation large enough to defeat stream prefetchers (which only match
/// small ascending line deltas), at a configurable granularity:
/// line-granular for cache latency, page-granular for TLB latency.
///
/// # Examples
///
/// ```
/// use calibrate::chase::ChaseTrace;
///
/// let mut trace = ChaseTrace::lines(64 * 1024);
/// let first = trace.next().unwrap();
/// assert_eq!(first.kind, specgen::UopKind::Load);
/// ```
#[derive(Debug, Clone)]
pub struct ChaseTrace {
    footprint: u64,
    granule: u64,
    slots: u64,
    cursor: u64,
    step: u64,
    emitted: u64,
}

/// Base address of the chase buffer (arbitrary, page-aligned).
const BUFFER_BASE: u64 = 0x2000_0000;
/// Synthetic PC of the chase loop (a single hot line: no I-cache noise).
const LOOP_PC: u64 = 0x0040_1000;

impl ChaseTrace {
    /// Chain that touches one address per 64-byte cache line.
    ///
    /// # Panics
    ///
    /// Panics if `footprint` is smaller than two lines.
    pub fn lines(footprint: u64) -> Self {
        Self::with_granule(footprint, 64)
    }

    /// Chain that touches one address per 4 KiB page (for TLB probing).
    ///
    /// # Panics
    ///
    /// Panics if `footprint` is smaller than two pages.
    pub fn pages(footprint: u64) -> Self {
        Self::with_granule(footprint, 4096)
    }

    fn with_granule(footprint: u64, granule: u64) -> Self {
        let slots = footprint / granule;
        assert!(slots >= 2, "footprint must cover at least two granules");
        // Step through slots by an odd increment near the golden ratio of
        // the slot count: visits every slot (odd step, power-of-two-ish slot
        // counts are handled by forcing coprimality below), with large
        // deltas that no stream prefetcher follows.
        let mut step = (slots as f64 * 0.618) as u64 | 1;
        while gcd(step, slots) != 1 {
            step += 2;
        }
        Self {
            footprint,
            granule,
            slots,
            cursor: 0,
            step,
            emitted: 0,
        }
    }

    /// The footprint being walked, in bytes.
    pub fn footprint(&self) -> u64 {
        self.footprint
    }

    /// Number of distinct addresses in one lap of the walk.
    pub fn slots(&self) -> u64 {
        self.slots
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl Iterator for ChaseTrace {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        self.cursor = (self.cursor + self.step) % self.slots;
        // Hash a line-aligned intra-granule offset per slot so that
        // page-strided walks spread over all cache sets instead of aliasing
        // into the few sets that page-aligned (or regularly-offset)
        // addresses map to.
        let lines_per_granule = self.granule / 64;
        let mut h = self.cursor.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        let offset = (h % lines_per_granule.max(1)) * 64;
        let addr = BUFFER_BASE + self.cursor * self.granule + offset;
        // Offset the PC within one line so fetch stays quiet; dep1 = 1 makes
        // each load depend on its predecessor (the pointer chase).
        let mut op = MicroOp::new(UopKind::Load, LOOP_PC).with_addr(addr);
        if self.emitted > 0 {
            op = op.with_dep1(1);
        }
        self.emitted += 1;
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn visits_every_line_once_per_lap() {
        let mut t = ChaseTrace::lines(4096);
        let lines: BTreeSet<u64> = (&mut t).take(64).map(|op| op.addr.unwrap() >> 6).collect();
        assert_eq!(lines.len(), 64, "a full lap covers all 64 lines");
    }

    #[test]
    fn consecutive_deltas_defeat_stream_prefetch() {
        let addrs: Vec<u64> = ChaseTrace::lines(1024 * 1024)
            .take(1000)
            .map(|op| op.addr.unwrap() >> 6)
            .collect();
        for pair in addrs.windows(2) {
            let delta = pair[1].abs_diff(pair[0]);
            assert!(delta > 2, "stream-prefetchable delta {delta}");
        }
    }

    #[test]
    fn loads_are_chained() {
        let ops: Vec<MicroOp> = ChaseTrace::lines(8192).take(10).collect();
        assert!(ops[0].dep1.is_none(), "first load has no producer");
        for op in &ops[1..] {
            assert_eq!(op.dep1.map(|d| d.get()), Some(1));
        }
    }

    #[test]
    fn page_granule_changes_page_every_step() {
        let pages: Vec<u64> = ChaseTrace::pages(1024 * 1024)
            .take(100)
            .map(|op| op.addr.unwrap() >> 12)
            .collect();
        for pair in pages.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    #[should_panic(expected = "two granules")]
    fn rejects_tiny_footprint() {
        let _ = ChaseTrace::lines(64);
    }
}
