//! Cache/TLB/memory latency calibration by microbenchmark — reproducing the
//! Calibrator methodology the paper uses to fill in Table 2.
//!
//! The paper (§4): "The cache miss and TLB miss latencies are not as easily
//! obtained. We therefore use a tool called Calibrator which estimates these
//! latencies by running parameterized micro-benchmarks." This crate does the
//! same against the simulated machines: dependent-load pointer chases over
//! swept footprints produce a latency staircase ([`chase`], [`plateau`]),
//! and [`calibrate_machine`] reads the per-level latencies off the
//! staircase — *without* peeking at the machine's configuration.
//!
//! # Examples
//!
//! ```no_run
//! use calibrate::calibrate_machine;
//! use oosim::machine::MachineConfig;
//!
//! let machine = MachineConfig::core2();
//! let estimates = calibrate_machine(&machine);
//! // The estimate tracks the configured Table-2 latency closely.
//! assert!((estimates.l2 - machine.lat.l2 as f64).abs() <= 5.0);
//! ```

pub mod chase;
pub mod plateau;

use chase::ChaseTrace;
use oosim::machine::MachineConfig;
use oosim::observer::NullObserver;
use oosim::pipeline::simulate;
use plateau::{detect_plateaus, Plateau};
use std::fmt;

/// Loads per measurement point (after warm-up).
const LOADS_PER_POINT: u64 = 8_000;

/// Warm-up ceiling: one lap of the footprint covers all cold misses; for
/// footprints too large to lap, cold *is* the steady state.
const MAX_WARMUP: u64 = 250_000;

/// Measures steady-state cycles per load of `trace`: simulates a warm-up
/// prefix (one full lap of the footprint, capped) and a measured extension,
/// and differences the two runs — the Calibrator's "ignore the first
/// iterations" discipline.
fn measure_steady(machine: &MachineConfig, trace: &ChaseTrace) -> f64 {
    let warmup = (trace.slots() + 2_000).min(MAX_WARMUP);
    let warm = simulate(machine, trace.clone(), warmup, &mut NullObserver);
    let full = simulate(
        machine,
        trace.clone(),
        warmup + LOADS_PER_POINT,
        &mut NullObserver,
    );
    (full.cycles - warm.cycles) as f64 / LOADS_PER_POINT as f64
}

/// Measures steady-state cycles per dependent load for one footprint.
///
/// This is the primitive the staircase sweep is built on.
pub fn measure_chase(machine: &MachineConfig, footprint: u64) -> f64 {
    measure_steady(machine, &ChaseTrace::lines(footprint))
}

/// Measures steady-state cycles per page-granular dependent load (TLB
/// pressure) for one footprint.
pub fn measure_page_chase(machine: &MachineConfig, footprint: u64) -> f64 {
    measure_steady(machine, &ChaseTrace::pages(footprint))
}

/// Runs a full footprint sweep (line-granular), returning the latency curve.
pub fn sweep(machine: &MachineConfig, footprints: &[u64]) -> Vec<(u64, f64)> {
    footprints
        .iter()
        .map(|&f| (f, measure_chase(machine, f)))
        .collect()
}

/// The default footprint ladder: 4 KiB to 64 MiB, two points per octave —
/// dense enough to catch every level boundary of the modeled machines.
pub fn default_footprints() -> Vec<u64> {
    let mut v = Vec::new();
    let mut f = 4096u64;
    while f <= 64 * 1024 * 1024 {
        v.push(f);
        v.push(f + f / 2);
        f *= 2;
    }
    v
}

/// Latency estimates produced by calibration, in cycles (Table 2's columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyEstimates {
    /// L1 D-cache load-to-use latency.
    pub l1d: f64,
    /// L2 hit latency.
    pub l2: f64,
    /// L3 hit latency (machines with three levels only).
    pub l3: Option<f64>,
    /// DRAM access latency.
    pub mem: f64,
    /// D-TLB miss (page walk) penalty.
    pub tlb: f64,
}

impl fmt::Display for LatencyEstimates {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L1 {:.0}, L2 {:.0}", self.l1d, self.l2)?;
        if let Some(l3) = self.l3 {
            write!(f, ", L3 {l3:.0}")?;
        }
        write!(f, ", mem {:.0}, TLB {:.0} cycles", self.mem, self.tlb)
    }
}

/// Error returned when the latency staircase cannot be interpreted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalibrationError {
    what: String,
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "calibration failed: {}", self.what)
    }
}

impl std::error::Error for CalibrationError {}

/// Runs the full Calibrator methodology against a machine: line-granular
/// sweep for the cache/memory staircase, page-granular sweep for the TLB
/// penalty.
///
/// The number of on-chip levels is inferred from the staircase itself (the
/// plateau count), not from the machine's configuration.
///
/// # Errors
///
/// Returns [`CalibrationError`] when the staircase has fewer than three
/// plateaus (no machine we model has fewer than L1/L2/memory).
pub fn try_calibrate_machine(
    machine: &MachineConfig,
) -> Result<LatencyEstimates, CalibrationError> {
    let curve = sweep(machine, &default_footprints());
    let plateaus = detect_plateaus(&curve, 0.30);
    if plateaus.len() < 3 {
        return Err(CalibrationError {
            what: format!("only {} plateaus in the cache staircase", plateaus.len()),
        });
    }
    // First plateau is L1, last is memory. Intermediates are candidate
    // on-chip levels — but footprints sitting *across* a capacity boundary
    // produce short blended runs that are transitions, not levels: a true
    // level's plateau spans a wide footprint range (an L2 serves everything
    // from just-past-L1 to its own capacity), so mid plateaus must span at
    // least 3× in footprint to count.
    let first = plateaus.first().expect("non-empty");
    let l1d = first.latency;
    let l1_capacity = first.to;
    let mem_plateau = plateaus.last().expect("non-empty");
    // Level latency refinement: points whose pages exceed the D-TLB also
    // pay page walks, inflating the plateau mean; average only the
    // TLB-covered points when the plateau has any.
    let tlb_reach = machine.dtlb.entries as u64 * 4096;
    let refine = |p: &Plateau| -> f64 {
        let covered: Vec<f64> = curve
            .iter()
            .filter(|(f, _)| *f >= p.from && *f <= p.to && *f <= tlb_reach / 2)
            .map(|&(_, lat)| lat)
            .collect();
        if covered.is_empty() {
            p.latency
        } else {
            covered.iter().sum::<f64>() / covered.len() as f64
        }
    };
    let mids: Vec<&Plateau> = plateaus[1..plateaus.len() - 1]
        .iter()
        .filter(|p| p.to >= p.from * 3)
        .collect();
    let (l2, l3) = match mids.len() {
        0 => {
            return Err(CalibrationError {
                what: "no on-chip plateau between L1 and memory".into(),
            })
        }
        1 => (refine(mids[0]), None),
        _ => (refine(mids[0]), Some(refine(mids[mids.len() - 1]))),
    };

    // TLB penalty: page-granular chase over a footprint whose pages exceed
    // the TLB, versus one whose pages fit. The thrashing walk's *lines*
    // usually spill the L1 while the fitting walk's lines stay resident, so
    // the raw difference carries an L1→L2 contamination term we compensate
    // with the staircase's own estimates.
    let entries = machine.dtlb.entries as u64;
    let fits_pages = entries / 2;
    let thrash_pages = entries * 8;
    let fits = measure_page_chase(machine, fits_pages * 4096);
    let thrashes = measure_page_chase(machine, thrash_pages * 4096);
    let contamination = if thrash_pages * 64 > l1_capacity && fits_pages * 64 <= l1_capacity {
        l2 - l1d
    } else {
        0.0
    };
    let tlb = (thrashes - fits - contamination).max(0.0);

    // The deep-footprint chase pays a page walk on every access too (no
    // TLB covers tens of MiB); subtract the walk to isolate DRAM latency.
    // What remains still includes row-conflict cycles — genuinely part of
    // the effective memory access time the model's c_mem stands for.
    let mem = (mem_plateau.latency - tlb).max(l2);

    Ok(LatencyEstimates {
        l1d,
        l2,
        l3,
        mem,
        tlb,
    })
}

/// Infallible wrapper over [`try_calibrate_machine`].
///
/// # Panics
///
/// Panics if calibration fails — the paper machines always calibrate.
pub fn calibrate_machine(machine: &MachineConfig) -> LatencyEstimates {
    try_calibrate_machine(machine).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_chase_measures_l1_latency() {
        let m = MachineConfig::core2();
        let per_load = measure_chase(&m, 8 * 1024);
        assert!(
            (per_load - m.lat.l1d as f64).abs() < 1.0,
            "measured {per_load} vs configured {}",
            m.lat.l1d
        );
    }

    #[test]
    fn l2_chase_measures_l2_latency() {
        let m = MachineConfig::core2(); // 32 KiB L1, 4 MiB L2
        let per_load = measure_chase(&m, 256 * 1024);
        assert!(
            (per_load - m.lat.l2 as f64).abs() < 3.0,
            "measured {per_load} vs configured {}",
            m.lat.l2
        );
    }

    #[test]
    fn memory_chase_measures_memory_latency() {
        let m = MachineConfig::pentium4(); // 1 MiB LLC
        let per_load = measure_chase(&m, 32 * 1024 * 1024);
        // DRAM chases also pay TLB walks at this footprint on the P4's tiny
        // TLB; accept the configured latency plus up to one walk.
        assert!(
            per_load >= m.lat.mem as f64 * 0.9 && per_load <= (m.lat.mem + m.lat.tlb) as f64 * 1.15,
            "measured {per_load} vs configured {}",
            m.lat.mem
        );
    }

    #[test]
    fn calibration_recovers_table_2_for_all_machines() {
        for m in MachineConfig::paper_machines() {
            let est = calibrate_machine(&m);
            assert!(
                (est.l2 - m.lat.l2 as f64).abs() / (m.lat.l2 as f64) < 0.35,
                "{}: L2 {est} vs {:?}",
                m.name,
                m.lat
            );
            let mem_ratio = est.mem / m.lat.mem as f64;
            assert!(
                (0.85..=1.35).contains(&mem_ratio),
                "{}: mem {est} vs {:?} (ratio {mem_ratio:.2})",
                m.name,
                m.lat
            );
            if m.l3.is_some() {
                assert!(est.l3.is_some(), "{} should show an L3 plateau", m.name);
            } else {
                assert!(
                    est.l3.is_none(),
                    "{} has no L3 but calibration reported one: {est}",
                    m.name
                );
            }
        }
    }

    #[test]
    fn tlb_estimate_is_positive_and_sane() {
        for m in MachineConfig::paper_machines() {
            let est = calibrate_machine(&m);
            assert!(
                est.tlb > m.lat.tlb as f64 * 0.6 && est.tlb < m.lat.tlb as f64 * 1.6,
                "{}: TLB {} vs configured {}",
                m.name,
                est.tlb,
                m.lat.tlb
            );
        }
    }

    #[test]
    fn footprint_ladder_is_sorted_and_wide() {
        let fs = default_footprints();
        assert!(fs.windows(2).all(|w| w[0] < w[1]));
        assert!(*fs.first().unwrap() <= 4096);
        assert!(*fs.last().unwrap() >= 64 * 1024 * 1024);
    }
}
