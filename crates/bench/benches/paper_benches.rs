//! Criterion benchmarks over the reproduction's hot paths: one group per
//! experiment stage, so regressions in simulation or fitting speed are
//! caught before they make the figure binaries unusable.
//!
//! (The *scientific* outputs — every table and figure — come from the
//! `bench` crate's binaries; these benchmarks measure the machinery.)

use bench::measure_suite;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memodel::baselines::{BaselineKind, EmpiricalModel};
use memodel::{FitOptions, InferredModel, MicroarchParams};
use oosim::machine::MachineConfig;
use oosim::observer::NullObserver;
use oosim::pipeline::simulate;
use pmu::RunRecord;
use specgen::{Cracking, TraceGenerator};
use std::hint::black_box;

const BENCH_UOPS: u64 = 30_000;

/// Table 2 machinery: one calibration measurement point.
fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_calibration");
    group.sample_size(10);
    let machine = MachineConfig::core2();
    group.bench_function("measure_chase_256KiB", |b| {
        b.iter(|| black_box(calibrate::measure_chase(&machine, 256 * 1024)))
    });
    group.finish();
}

/// Fig. 2 machinery: simulator throughput per machine (the campaign cost).
fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_simulation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BENCH_UOPS));
    let profile = specgen::suites::by_name("gcc.166").expect("profile");
    for machine in MachineConfig::paper_machines() {
        group.bench_with_input(
            BenchmarkId::from_parameter(machine.id.name()),
            &machine,
            |b, m| {
                b.iter(|| {
                    let trace = TraceGenerator::new(&profile, m.cracking, 1);
                    black_box(simulate(m, trace, BENCH_UOPS, &mut NullObserver))
                })
            },
        );
    }
    group.finish();
}

fn training_records() -> Vec<RunRecord> {
    let machine = MachineConfig::core2();
    let suite: Vec<_> = specgen::suites::cpu2000().into_iter().take(16).collect();
    measure_suite(&machine, &suite, 20_000, 3)
}

/// Fig. 2–4 machinery: model inference and prediction.
fn bench_fitting(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_model_fitting");
    group.sample_size(10);
    let records = training_records();
    let arch = MicroarchParams::from_machine(&MachineConfig::core2());
    group.bench_function("gray_box_fit_quick", |b| {
        b.iter(|| {
            black_box(InferredModel::fit(&arch, &records, &FitOptions::quick()).expect("fit"))
        })
    });
    group.bench_function("linear_fit", |b| {
        b.iter(|| black_box(EmpiricalModel::fit(BaselineKind::Linear, &records).expect("fit")))
    });
    group.bench_function("ann_fit", |b| {
        b.iter(|| {
            black_box(EmpiricalModel::fit(BaselineKind::NeuralNetwork, &records).expect("fit"))
        })
    });
    let model = InferredModel::fit(&arch, &records, &FitOptions::quick()).expect("fit");
    group.bench_function("predict_record", |b| {
        b.iter(|| {
            for r in &records {
                black_box(model.predict_record(r));
            }
        })
    });
    group.finish();
}

/// Fig. 5 machinery: ground-truth stack measurement.
fn bench_truth_stacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_truth_stacks");
    group.sample_size(10);
    let machine = MachineConfig::core2();
    let profile = specgen::suites::by_name("mcf.inp").expect("profile");
    group.bench_function("measure_stack", |b| {
        b.iter(|| {
            black_box(cpicounters::measure_stack(
                &machine, &profile, BENCH_UOPS, 1,
            ))
        })
    });
    group.finish();
}

/// Fig. 6 machinery: delta-stack construction.
fn bench_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_delta_stacks");
    group.sample_size(10);
    let p4 = MachineConfig::pentium4();
    let c2 = MachineConfig::core2();
    let suite: Vec<_> = specgen::suites::cpu2000().into_iter().take(16).collect();
    let p4_records = measure_suite(&p4, &suite, 20_000, 3);
    let c2_records = measure_suite(&c2, &suite, 20_000, 3);
    let opts = FitOptions::quick();
    let p4_model =
        InferredModel::fit(&MicroarchParams::from_machine(&p4), &p4_records, &opts).unwrap();
    let c2_model =
        InferredModel::fit(&MicroarchParams::from_machine(&c2), &c2_records, &opts).unwrap();
    group.bench_function("suite_delta_16", |b| {
        b.iter(|| {
            black_box(memodel::delta::suite_delta(
                &p4_model,
                &p4_records,
                &c2_model,
                &c2_records,
            ))
        })
    });
    group.finish();
}

/// Workload generation alone (the trace side of the campaign cost).
fn bench_tracegen(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(100_000));
    let profile = specgen::suites::by_name("milc.ref").expect("profile");
    group.bench_function("generate_100k_uops", |b| {
        b.iter(|| {
            let gen = TraceGenerator::new(&profile, Cracking::default(), 7);
            black_box(gen.take(100_000).count())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_calibration,
    bench_simulation,
    bench_fitting,
    bench_truth_stacks,
    bench_delta,
    bench_tracegen
);
criterion_main!(benches);
