//! Benchmark guard for the parallel multi-start fit: a cold fit with the
//! full-budget options at an automatic thread count must return
//! **bit-identical** parameters to the strictly-sequential path, and must
//! never be meaningfully slower (on multicore hardware it should approach
//! an `extra_starts`-fold speedup — the fit's 13 jittered starts are
//! embarrassingly parallel).
//!
//! Exits non-zero on a mismatch or a regression, so this doubles as an
//! assertion, not just a report.
//!
//! Run with `cargo bench -p bench --bench fit_scaling`.

use memodel::workbench::SimSource;
use memodel::{FitOptions, InferredModel, MicroarchParams};
use oosim::machine::MachineConfig;
use pmu::RunRecord;
use std::time::{Duration, Instant};

const WORKLOADS: usize = 24;
const UOPS: u64 = 20_000;
const SEED: u64 = 777;
const RUNS: usize = 3;

/// On a single-core box the parallel path has no wins to offset thread
/// spawn and scheduling noise; allow a modest margin before failing.
const MAX_SLOWDOWN: f64 = 1.25;

fn fit(records: &[RunRecord], arch: &MicroarchParams, threads: usize) -> (InferredModel, Duration) {
    let opts = FitOptions::default().with_threads(threads);
    let start = Instant::now();
    let model = InferredModel::fit(arch, records, &opts).expect("enough records");
    (model, start.elapsed())
}

fn best_of(
    records: &[RunRecord],
    arch: &MicroarchParams,
    threads: usize,
) -> (InferredModel, Duration) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..RUNS {
        let (model, t) = fit(records, arch, threads);
        best = best.min(t);
        out = Some(model);
    }
    (out.expect("at least one run"), best)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "fit_scaling: {WORKLOADS} records, FitOptions::default() \
         (13 starts x 30k evals), best of {RUNS} ({cores} hardware threads)"
    );
    let machine = MachineConfig::core2();
    let suite: Vec<_> = specgen::suites::cpu2000()
        .into_iter()
        .take(WORKLOADS)
        .collect();
    let records = SimSource::new()
        .suite(suite)
        .uops(UOPS)
        .seed(SEED)
        .collect_config(&machine);
    let arch = MicroarchParams::from_machine(&machine);

    let (seq_model, seq) = best_of(&records, &arch, 1);
    let (par_model, par) = best_of(&records, &arch, 0);
    assert_eq!(
        seq_model.params(),
        par_model.params(),
        "parallel multi-start must be bit-identical to sequential"
    );
    assert_eq!(
        seq_model.objective().to_bits(),
        par_model.objective().to_bits()
    );

    let ratio = par.as_secs_f64() / seq.as_secs_f64();
    println!(
        "  sequential (threads=1): {:>8.1} ms\n  parallel   (threads=0): {:>8.1} ms  ({ratio:.2}x)",
        seq.as_secs_f64() * 1e3,
        par.as_secs_f64() * 1e3,
    );
    assert!(
        ratio <= MAX_SLOWDOWN,
        "parallel fit regressed: {ratio:.2}x slower than sequential (tolerance {MAX_SLOWDOWN}x)"
    );
    println!("  ok: bit-identical, within tolerance");
}
