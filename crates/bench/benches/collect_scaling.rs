//! Benchmark guard for the work-stealing collect pool: the full paper
//! campaign (3 machines × both suites) drained from one (machine ×
//! suite-chunk) work-list must be **byte-identical** to the strictly
//! sequential path at any worker count, and must never be meaningfully
//! slower (on multicore hardware it should approach a cores-fold
//! speedup — work items steal independently, so a slow machine no longer
//! serialises the tail the way the old per-machine fan-out did).
//!
//! Exits non-zero on a mismatch or a regression, so this doubles as an
//! assertion, not just a report.
//!
//! Run with `cargo bench -p bench --bench collect_scaling`.

use memodel::workbench::{SimSource, Workbench};
use oosim::machine::MachineConfig;
use std::time::{Duration, Instant};

const UOPS: u64 = 10_000;
const SEED: u64 = 777;
const RUNS: usize = 3;

/// On a single-core box the pool has no wins to offset worker spawn and
/// scheduling noise; allow a modest margin before failing.
const MAX_SLOWDOWN: f64 = 1.25;

fn collect(parallel: bool, threads: usize) -> (String, Duration) {
    let machines = MachineConfig::paper_machines();
    let start = Instant::now();
    let collected = Workbench::new()
        .machines(machines.iter())
        .source(SimSource::paper_suites().uops(UOPS).seed(SEED))
        .parallel(parallel)
        .threads(threads)
        .collect()
        .expect("simulator collection cannot fail");
    let elapsed = start.elapsed();
    (collected.to_csv(), elapsed)
}

fn best_of(parallel: bool, threads: usize) -> (String, Duration) {
    let mut best = Duration::MAX;
    let mut csv = String::new();
    for _ in 0..RUNS {
        let (text, t) = collect(parallel, threads);
        best = best.min(t);
        csv = text;
    }
    (csv, best)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "collect_scaling: full paper campaign (103 benchmarks x 3 machines), \
         {UOPS} µops, best of {RUNS} ({cores} hardware threads)"
    );
    let (seq_csv, seq) = best_of(false, 0);
    println!(
        "  sequential (1 worker):  {:>8.1} ms",
        seq.as_secs_f64() * 1e3
    );
    for threads in [2usize, 0] {
        let (csv, t) = best_of(true, threads);
        assert_eq!(
            seq_csv, csv,
            "threads={threads}: pooled collect must be byte-identical to sequential"
        );
        let ratio = t.as_secs_f64() / seq.as_secs_f64();
        let label = if threads == 0 {
            format!("auto ({cores})")
        } else {
            threads.to_string()
        };
        println!(
            "  pool (threads={label}): {:>8.1} ms  ({ratio:.2}x)",
            t.as_secs_f64() * 1e3
        );
        assert!(
            ratio <= MAX_SLOWDOWN,
            "pooled collect regressed: {ratio:.2}x sequential at threads={threads} \
             (tolerance {MAX_SLOWDOWN}x)"
        );
    }
    println!("  ok: bit-identical at every worker count, within tolerance");
}
