//! Ablation benchmarks: fitting cost of each structural variant of the
//! model, and simulator cost across the design dimensions the delta stacks
//! attribute performance to (MSHRs, prefetch depth, predictor size).
//!
//! The *accuracy* side of these ablations is reported by
//! `cargo run -p bench --bin ablations`; here we measure cost so the
//! trade-off table has both axes.

use bench::ablation::{fit_variant, Variant};
use bench::measure_suite;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memodel::MicroarchParams;
use oosim::machine::MachineConfig;
use oosim::observer::NullObserver;
use oosim::pipeline::simulate;
use specgen::TraceGenerator;
use std::hint::black_box;

/// Fitting cost per structural variant.
fn bench_variant_fits(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fit_cost");
    group.sample_size(10);
    let machine = MachineConfig::core2();
    let suite: Vec<_> = specgen::suites::cpu2000().into_iter().take(14).collect();
    let records = measure_suite(&machine, &suite, 15_000, 5);
    let arch = MicroarchParams::from_machine(&machine);
    for variant in [
        Variant::Full,
        Variant::AdditiveBranch,
        Variant::ConstantMlp,
        Variant::UndampedStall,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &v| b.iter(|| black_box(fit_variant(v, &arch, &records))),
        );
    }
    group.finish();
}

/// Simulator cost vs MSHR count (does modeling more MLP cost time?).
fn bench_mshr_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mshr_cost");
    group.sample_size(10);
    let profile = specgen::suites::by_name("libquantum.ref").expect("profile");
    for mshrs in [1usize, 8, 32] {
        let machine = MachineConfig::builder(MachineConfig::core2())
            .mshrs(mshrs)
            .build();
        group.bench_with_input(BenchmarkId::from_parameter(mshrs), &machine, |b, m| {
            b.iter(|| {
                let trace = TraceGenerator::new(&profile, m.cracking, 1);
                black_box(simulate(m, trace, 20_000, &mut NullObserver))
            })
        });
    }
    group.finish();
}

/// Simulator cost vs predictor size (table lookups scale?).
fn bench_predictor_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_predictor_cost");
    group.sample_size(10);
    let profile = specgen::suites::by_name("gobmk.13x13").expect("profile");
    for log2 in [10u32, 14, 18] {
        let machine = MachineConfig::builder(MachineConfig::core2())
            .predictor(oosim::machine::PredictorConfig {
                log2_entries: log2,
                history_bits: 10,
            })
            .build();
        group.bench_with_input(BenchmarkId::from_parameter(log2), &machine, |b, m| {
            b.iter(|| {
                let trace = TraceGenerator::new(&profile, m.cracking, 1);
                black_box(simulate(m, trace, 20_000, &mut NullObserver))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_variant_fits,
    bench_mshr_sweep,
    bench_predictor_sweep
);
criterion_main!(benches);
