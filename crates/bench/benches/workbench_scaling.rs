//! Benchmark guard for the pipeline's thread fan-out: multi-machine
//! `Workbench::collect()` must never be slower than the sequential path
//! (and on multicore hardware should approach a machines-fold speedup).
//!
//! Two machines × 12 workloads, minimum-of-three timing per mode, with a
//! correctness cross-check (byte-identical CSV) before timing. Exits
//! non-zero if the parallel path regresses beyond the tolerance, so this
//! doubles as an assertion, not just a report.
//!
//! Run with `cargo bench -p bench --bench workbench_scaling`.

use memodel::workbench::{SimSource, Workbench};
use oosim::machine::MachineConfig;
use std::time::{Duration, Instant};

const WORKLOADS: usize = 12;
const UOPS: u64 = 30_000;
const SEED: u64 = 4242;
const RUNS: usize = 3;

/// Tolerance for "not slower": thread spawn overhead is microseconds
/// against tens of milliseconds of simulation, but a single-core machine
/// gives the parallel path no wins to offset scheduler noise, so allow a
/// modest margin before calling it a regression.
const MAX_SLOWDOWN: f64 = 1.25;

fn collect(parallel: bool) -> (String, Duration) {
    let suite: Vec<_> = specgen::suites::cpu2000()
        .into_iter()
        .take(WORKLOADS)
        .collect();
    let start = Instant::now();
    let collected = Workbench::new()
        .machine(MachineConfig::pentium4())
        .machine(MachineConfig::core2())
        .source(SimSource::new().suite(suite).uops(UOPS).seed(SEED))
        .parallel(parallel)
        .collect()
        .expect("simulator collection cannot fail");
    let elapsed = start.elapsed();
    (collected.to_csv(), elapsed)
}

fn best_of(parallel: bool) -> (String, Duration) {
    let mut best = Duration::MAX;
    let mut csv = String::new();
    for _ in 0..RUNS {
        let (text, t) = collect(parallel);
        best = best.min(t);
        csv = text;
    }
    (csv, best)
}

fn main() {
    println!(
        "workbench_scaling: 2 machines x {WORKLOADS} workloads, {UOPS} µops, \
         best of {RUNS} ({} hardware threads)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let (seq_csv, seq) = best_of(false);
    let (par_csv, par) = best_of(true);
    assert_eq!(
        seq_csv, par_csv,
        "parallel collect must be byte-identical to sequential"
    );
    let ratio = par.as_secs_f64() / seq.as_secs_f64();
    println!("sequential collect: {:>8.1} ms", seq.as_secs_f64() * 1e3);
    println!(
        "parallel   collect: {:>8.1} ms  ({ratio:.2}x sequential)",
        par.as_secs_f64() * 1e3
    );
    assert!(
        ratio <= MAX_SLOWDOWN,
        "parallel collect is {ratio:.2}x sequential (tolerance {MAX_SLOWDOWN}x)"
    );
    println!("OK: parallel path within tolerance and byte-identical");
}
