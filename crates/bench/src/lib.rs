//! Shared experiment-campaign machinery for the per-figure binaries and
//! benches.
//!
//! Every figure of the paper consumes the same raw material: all 48 + 55
//! benchmark–input pairs run on all three machines, plus a fitted
//! mechanistic-empirical model per (machine, suite). [`Campaign`] runs that
//! measurement campaign once and hands out records and models.
//!
//! Binaries honour two environment variables:
//!
//! * `CPISTACK_UOPS` — µops simulated per benchmark (default
//!   [`DEFAULT_CAMPAIGN_UOPS`]); lower it for quick smoke runs,
//! * `CPISTACK_SEED` — campaign seed (default 12345).

pub mod ablation;
pub mod experiments;

use memodel::{FitOptions, InferredModel, MicroarchParams};
use oosim::machine::MachineConfig;
use oosim::run::run_suite;
use pmu::{MachineId, RunRecord, Suite};

/// Default µops per benchmark for full experiment reproduction.
pub const DEFAULT_CAMPAIGN_UOPS: u64 = 1_000_000;

/// µops per benchmark read from `CPISTACK_UOPS` (or the default).
pub fn campaign_uops() -> u64 {
    std::env::var("CPISTACK_UOPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_CAMPAIGN_UOPS)
}

/// Campaign seed read from `CPISTACK_SEED` (or 12345).
pub fn campaign_seed() -> u64 {
    std::env::var("CPISTACK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12345)
}

/// One full measurement + modeling campaign: every benchmark of both suites
/// on every machine, and a fitted gray-box model per (machine, suite).
#[derive(Debug)]
pub struct Campaign {
    machines: Vec<MachineConfig>,
    /// `records[machine][suite]`, indexed by position in `machines` and
    /// `Suite::ALL`.
    records: Vec<[Vec<RunRecord>; 2]>,
    models: Vec<[InferredModel; 2]>,
    uops: u64,
    seed: u64,
}

impl Campaign {
    /// Runs the full campaign: simulate both suites on all three machines
    /// and fit the six models. Takes a minute or two at full scale; scale
    /// down with `CPISTACK_UOPS` for smoke runs.
    pub fn run(uops: u64, seed: u64) -> Self {
        let machines = MachineConfig::paper_machines();
        let suites = [specgen::suites::cpu2000(), specgen::suites::cpu2006()];
        let opts = FitOptions::default();
        let mut records = Vec::new();
        let mut models = Vec::new();
        for machine in &machines {
            let r2000 = run_suite(machine, &suites[0], uops, seed);
            let r2006 = run_suite(machine, &suites[1], uops, seed);
            let arch = MicroarchParams::from_machine(machine);
            let m2000 = InferredModel::fit(&arch, &r2000, &opts)
                .unwrap_or_else(|e| panic!("{}: {e}", machine.name));
            let m2006 = InferredModel::fit(&arch, &r2006, &opts)
                .unwrap_or_else(|e| panic!("{}: {e}", machine.name));
            records.push([r2000, r2006]);
            models.push([m2000, m2006]);
        }
        Self {
            machines,
            records,
            models,
            uops,
            seed,
        }
    }

    /// Runs with the environment-configured scale.
    pub fn run_from_env() -> Self {
        Self::run(campaign_uops(), campaign_seed())
    }

    /// The three machines, generation order.
    pub fn machines(&self) -> &[MachineConfig] {
        &self.machines
    }

    fn machine_index(&self, id: MachineId) -> usize {
        self.machines
            .iter()
            .position(|m| m.id == id)
            .expect("paper machine")
    }

    fn suite_index(suite: Suite) -> usize {
        match suite {
            Suite::Cpu2000 => 0,
            Suite::Cpu2006 => 1,
        }
    }

    /// The measured records for one machine and suite.
    pub fn records(&self, machine: MachineId, suite: Suite) -> &[RunRecord] {
        &self.records[self.machine_index(machine)][Self::suite_index(suite)]
    }

    /// The fitted model for one machine and suite (the "`suite` model" in
    /// the paper's robustness terminology).
    pub fn model(&self, machine: MachineId, suite: Suite) -> &InferredModel {
        &self.models[self.machine_index(machine)][Self::suite_index(suite)]
    }

    /// The machine configuration for an id.
    pub fn machine(&self, id: MachineId) -> &MachineConfig {
        &self.machines[self.machine_index(id)]
    }

    /// µops per benchmark used in this campaign.
    pub fn uops(&self) -> u64 {
        self.uops
    }

    /// Campaign seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Standard experiment banner for the binaries.
    pub fn banner(&self, what: &str) -> String {
        format!(
            "== {what} ==\n   campaign: {} µops/benchmark, seed {}, {} benchmarks × {} machines\n",
            self.uops,
            self.seed,
            self.records[0][0].len() + self.records[0][1].len(),
            self.machines.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_campaign_is_complete() {
        let c = Campaign::run(20_000, 7);
        assert_eq!(c.machines().len(), 3);
        for id in MachineId::ALL {
            assert_eq!(c.records(id, Suite::Cpu2000).len(), 48);
            assert_eq!(c.records(id, Suite::Cpu2006).len(), 55);
            let _ = c.model(id, Suite::Cpu2000);
        }
        assert!(c.banner("t").contains("103"));
    }

    #[test]
    fn env_defaults() {
        // No env vars set in the test environment: defaults come back.
        if std::env::var("CPISTACK_UOPS").is_err() {
            assert_eq!(campaign_uops(), DEFAULT_CAMPAIGN_UOPS);
        }
        if std::env::var("CPISTACK_SEED").is_err() {
            assert_eq!(campaign_seed(), 12345);
        }
    }
}
