//! Shared experiment-campaign machinery for the per-figure binaries and
//! benches.
//!
//! Every figure of the paper consumes the same raw material: all 48 + 55
//! benchmark–input pairs run on all three machines, plus a fitted
//! mechanistic-empirical model per (machine, suite). [`Campaign`] runs
//! that measurement campaign once and keeps it warm in a long-lived
//! [`CpiService`]: machines are collected on parallel threads, the
//! records are ingested into the service's store, and the six models are
//! fitted through its sharded worker pool. Every figure then reads
//! records and models out of the shared session — and extra queries (a
//! delta, a re-fit with different options) go through
//! [`Campaign::client`], hitting the same model cache instead of paying
//! a fresh regression.
//!
//! Binaries honour two environment variables:
//!
//! * `CPISTACK_UOPS` — µops simulated per benchmark (default
//!   [`DEFAULT_CAMPAIGN_UOPS`]); lower it for quick smoke runs,
//! * `CPISTACK_SEED` — campaign seed (default 12345).

pub mod ablation;
pub mod experiments;

use memodel::service::{CpiClient, CpiService, ModelKey, ServiceConfig, ServiceStats, TenantId};
use memodel::workbench::{Fitted, SimSource, Workbench};
use memodel::{FitOptions, InferredModel};
use oosim::machine::MachineConfig;
use pmu::{MachineId, RunRecord, Suite};
use specgen::WorkloadProfile;

/// Default µops per benchmark for full experiment reproduction.
pub const DEFAULT_CAMPAIGN_UOPS: u64 = 1_000_000;

/// µops per benchmark read from `CPISTACK_UOPS` (or the default).
pub fn campaign_uops() -> u64 {
    std::env::var("CPISTACK_UOPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_CAMPAIGN_UOPS)
}

/// Campaign seed read from `CPISTACK_SEED` (or 12345).
pub fn campaign_seed() -> u64 {
    std::env::var("CPISTACK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12345)
}

/// Measures one suite on one machine through the pipeline's simulator
/// source — the single-machine building block the benches time.
pub fn measure_suite(
    machine: &MachineConfig,
    profiles: &[WorkloadProfile],
    uops: u64,
    seed: u64,
) -> Vec<RunRecord> {
    SimSource::new()
        .suite(profiles.to_vec())
        .uops(uops)
        .seed(seed)
        .collect_config(machine)
}

/// One full measurement + modeling campaign: every benchmark of both suites
/// on every machine, and a fitted gray-box model per (machine, suite),
/// kept warm in a long-lived [`CpiService`] session.
#[derive(Debug)]
pub struct Campaign {
    machines: Vec<MachineConfig>,
    service: CpiService,
    client: CpiClient,
    options: FitOptions,
    fitted: Fitted,
    uops: u64,
    seed: u64,
}

impl Campaign {
    /// Runs the full campaign: simulate both suites on all three machines
    /// (one thread per machine, suites chunked within it), ingest the
    /// records into a fresh [`CpiService`], and fit the six models through
    /// its sharded worker pool. Takes a minute or two at full scale; scale
    /// down with `CPISTACK_UOPS` for smoke runs.
    pub fn run(uops: u64, seed: u64) -> Self {
        Self::run_with_service_config(uops, seed, ServiceConfig::new())
    }

    /// [`Campaign::run`] pointed at a warm state directory: the six
    /// models persist to (and warm-load from) a
    /// [`memodel::service::persist::SnapshotStore`], so re-running the
    /// same campaign — same µop budget and seed — re-fits nothing. The
    /// digest keying makes this safe: change the budget, the seed or the
    /// simulator and every key misses, falling back to fresh fits.
    pub fn run_warm(uops: u64, seed: u64, state_dir: impl Into<std::path::PathBuf>) -> Self {
        Self::run_with_service_config(uops, seed, ServiceConfig::new().with_state_dir(state_dir))
    }

    /// The fully-configurable campaign entry point behind
    /// [`Campaign::run`] and [`Campaign::run_warm`].
    pub fn run_with_service_config(uops: u64, seed: u64, config: ServiceConfig) -> Self {
        let machines = MachineConfig::paper_machines();
        let options = FitOptions::default();
        let collected = Workbench::new()
            .machines(machines.iter())
            .source(SimSource::paper_suites().uops(uops).seed(seed))
            .collect()
            .unwrap_or_else(|e| panic!("campaign collect: {e}"));

        let service = CpiService::start(config);
        let client = service.client();
        for machine in &machines {
            client
                .register(machine.into())
                .unwrap_or_else(|e| panic!("campaign register: {e}"));
        }
        let records: Vec<RunRecord> = collected.records().cloned().collect();
        client
            .ingest(records)
            .unwrap_or_else(|e| panic!("campaign ingest: {e}"));

        // Submit every (machine, suite) group before draining any — pinned
        // round-robin, one distinct one-shot key per worker, so the six
        // fits really do run in parallel instead of hash-colliding onto a
        // shared shard.
        let keys: Vec<ModelKey> = machines
            .iter()
            .flat_map(|m| Suite::ALL.map(|suite| ModelKey::new(m.id, Some(suite), options.clone())))
            .collect();
        let streams: Vec<_> = keys
            .iter()
            .enumerate()
            .map(|(i, key)| client.submit_group_at(i, key.clone()))
            .collect();
        let mut groups = Vec::with_capacity(streams.len());
        for stream in streams {
            for response in stream {
                match response {
                    memodel::service::Response::Group(group) => groups.push(*group),
                    memodel::service::Response::Error(e) => panic!("campaign fit: {e}"),
                    _ => {}
                }
            }
        }
        let fitted = Fitted::from_groups(groups);
        Self {
            machines,
            service,
            client,
            options,
            fitted,
            uops,
            seed,
        }
    }

    /// Runs with the environment-configured scale.
    pub fn run_from_env() -> Self {
        Self::run(campaign_uops(), campaign_seed())
    }

    /// The three machines, generation order.
    pub fn machines(&self) -> &[MachineConfig] {
        &self.machines
    }

    /// The fitted pipeline output, for callers that want the workbench
    /// API directly (groups, deltas, exports).
    pub fn fitted(&self) -> &Fitted {
        &self.fitted
    }

    /// A client on the campaign's warm serving session. Requests for any
    /// of the six (machine, suite) keys with [`Campaign::options`] are
    /// cache hits; new keys (other fit options, pooled suites, deltas)
    /// are fitted once and then cached too.
    ///
    /// The campaign runs as the implicit local tenant; this client is
    /// bound to it.
    pub fn client(&self) -> CpiClient {
        self.service.client()
    }

    /// A client on the campaign's session bound to another tenant — an
    /// *empty* namespace sharing the warm worker pool and per-tenant
    /// cache quotas. Useful for serving experiments that model tenant
    /// interference against the warm paper campaign: the tenant sees
    /// none of the campaign's records or models until it ingests its
    /// own, and its cache churn cannot evict the campaign's six models.
    pub fn client_for(&self, tenant: TenantId) -> CpiClient {
        self.service.client_for(tenant)
    }

    /// The fit options the campaign's six models were fitted with (the
    /// cache key to reuse for free re-reads via [`Campaign::client`]).
    pub fn options(&self) -> FitOptions {
        self.options.clone()
    }

    /// Serving-session counters (fits run, cache hits/misses, records).
    pub fn service_stats(&self) -> ServiceStats {
        self.client
            .stats()
            .expect("the campaign's service outlives it")
    }

    /// The measured records for one machine and suite.
    pub fn records(&self, machine: MachineId, suite: Suite) -> &[RunRecord] {
        self.fitted
            .records(machine, suite)
            .expect("paper machine and suite")
    }

    /// The fitted model for one machine and suite (the "`suite` model" in
    /// the paper's robustness terminology).
    pub fn model(&self, machine: MachineId, suite: Suite) -> &InferredModel {
        self.fitted
            .model(machine, suite)
            .expect("paper machine and suite")
    }

    /// The machine configuration for an id.
    pub fn machine(&self, id: MachineId) -> &MachineConfig {
        self.machines
            .iter()
            .find(|m| m.id == id)
            .expect("paper machine")
    }

    /// µops per benchmark used in this campaign.
    pub fn uops(&self) -> u64 {
        self.uops
    }

    /// Campaign seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Standard experiment banner for the binaries.
    pub fn banner(&self, what: &str) -> String {
        let first = self.machines[0].id;
        let benchmarks =
            self.records(first, Suite::Cpu2000).len() + self.records(first, Suite::Cpu2006).len();
        format!(
            "== {what} ==\n   campaign: {} µops/benchmark, seed {}, {} benchmarks × {} machines\n",
            self.uops,
            self.seed,
            benchmarks,
            self.machines.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_campaign_is_complete() {
        let c = Campaign::run(20_000, 7);
        assert_eq!(c.machines().len(), 3);
        for id in MachineId::ALL {
            assert_eq!(c.records(id, Suite::Cpu2000).len(), 48);
            assert_eq!(c.records(id, Suite::Cpu2006).len(), 55);
            let _ = c.model(id, Suite::Cpu2000);
        }
        assert_eq!(c.fitted().groups().len(), 6);
        assert!(c.banner("t").contains("103"));
        // The campaign's session stays warm: re-requesting a fitted key
        // through a fresh client is a cache hit, not a seventh fit.
        let stats = c.service_stats();
        assert_eq!(stats.fits, 6);
        let report = c
            .client()
            .fit(memodel::service::ModelKey::new(
                MachineId::Core2,
                Some(Suite::Cpu2000),
                c.options(),
            ))
            .expect("warm re-fit");
        assert!(report.cached);
        assert_eq!(c.service_stats().fits, 6, "no new regression ran");
    }

    #[test]
    fn warm_campaign_refits_nothing() {
        let dir =
            std::env::temp_dir().join(format!("cpistack_campaign_warm_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cold = Campaign::run_warm(4_000, 11, &dir);
        assert_eq!(cold.service_stats().fits, 6, "first run fits every key");
        let warm = Campaign::run_warm(4_000, 11, &dir);
        let stats = warm.service_stats();
        assert_eq!(stats.fits, 0, "every model came from the state dir");
        assert_eq!(stats.cache.warm_loads, 6);
        for id in MachineId::ALL {
            for suite in Suite::ALL {
                assert_eq!(
                    cold.model(id, suite).params(),
                    warm.model(id, suite).params(),
                    "restored params must be bit-identical"
                );
            }
        }
        // A different campaign seed means different records — the digest
        // must miss and the models must be refitted, not served stale.
        let other = Campaign::run_warm(4_000, 12, &dir);
        assert_eq!(other.service_stats().fits, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tenant_clients_see_an_empty_namespace_on_the_warm_campaign() {
        let c = Campaign::run(4_000, 7);
        let guest = c.client_for(TenantId::new("guest").unwrap());
        // The campaign's warm models are invisible to the guest tenant:
        // its namespace has no machines at all.
        let err = guest
            .fit(memodel::service::ModelKey::new(
                MachineId::Core2,
                Some(Suite::Cpu2000),
                c.options(),
            ))
            .expect_err("guest tenants share no campaign state");
        assert!(matches!(
            err,
            memodel::service::ServiceError::NotRegistered { .. }
        ));
        // And the guest's stats are its own: zero fits, zero records.
        let stats = guest.stats().expect("stats");
        assert_eq!(stats.fits, 0);
        assert_eq!(stats.ingested_records, 0);
        assert_eq!(c.service_stats().fits, 6, "campaign untouched");
    }

    #[test]
    fn env_defaults() {
        // No env vars set in the test environment: defaults come back.
        if std::env::var("CPISTACK_UOPS").is_err() {
            assert_eq!(campaign_uops(), DEFAULT_CAMPAIGN_UOPS);
        }
        if std::env::var("CPISTACK_SEED").is_err() {
            assert_eq!(campaign_seed(), 12345);
        }
    }

    #[test]
    fn measure_suite_matches_campaign_records() {
        let machine = MachineConfig::core2();
        let suite: Vec<_> = specgen::suites::cpu2000().into_iter().take(3).collect();
        let a = measure_suite(&machine, &suite, 5_000, 7);
        let b = measure_suite(&machine, &suite, 5_000, 7);
        assert_eq!(a, b, "simulator source is deterministic");
        assert_eq!(a.len(), 3);
    }
}
