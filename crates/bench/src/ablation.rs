//! Ablations of the model's design choices (DESIGN.md §5).
//!
//! The paper argues for several specific structural choices without always
//! evaluating the alternative; these ablations supply the missing
//! comparisons on the simulated testbed:
//!
//! * **multiplicative vs additive** branch-resolution factors (paper §3.2
//!   argues multiplicative),
//! * **power-law vs constant** MLP correction (paper §3.3 argues the power
//!   law),
//! * **damped vs raw** resource stalls (Eq. 4's miss-pressure damping),
//! * the **interval cap** value of Eq. 2,
//! * **relative vs absolute** squared-error objective (Tofallis).
//!
//! Each variant is fitted with the same optimizer budget as the full model
//! and compared on in-suite and cross-suite error.

use memodel::equations;
use memodel::{MicroarchParams, ModelInputs, ModelParams};
use pmu::RunRecord;
use regress::metrics::ErrorSummary;
use regress::nelder_mead::{MultiStart, Options};

/// Which structural variant to fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The paper's full model (reference).
    Full,
    /// Additive instead of multiplicative branch-resolution factors.
    AdditiveBranch,
    /// Constant MLP (`MLP = b5`) instead of the power law.
    ConstantMlp,
    /// Raw resource stalls (no Eq. 4 damping).
    UndampedStall,
    /// Full model with a different interval cap.
    IntervalCap(u32),
}

impl Variant {
    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            Variant::Full => "full model".into(),
            Variant::AdditiveBranch => "additive branch resolution".into(),
            Variant::ConstantMlp => "constant MLP".into(),
            Variant::UndampedStall => "undamped resource stalls".into(),
            Variant::IntervalCap(cap) => format!("interval cap {cap}"),
        }
    }
}

/// A fitted ablated model.
#[derive(Debug, Clone)]
pub struct AblatedModel {
    variant: Variant,
    arch: MicroarchParams,
    params: ModelParams,
}

impl AblatedModel {
    /// Predicted CPI under the variant's structure.
    pub fn predict(&self, i: &ModelInputs) -> f64 {
        predict_variant(self.variant, &self.arch, &self.params, i)
    }

    /// The variant this model implements.
    pub fn variant(&self) -> Variant {
        self.variant
    }
}

fn branch_resolution_variant(variant: Variant, p: &ModelParams, i: &ModelInputs) -> f64 {
    let cap = match variant {
        Variant::IntervalCap(c) => c as f64,
        _ => equations::INTERVAL_CAP,
    };
    match variant {
        Variant::AdditiveBranch => {
            let interval = (1.0 / i.mpu_br.max(1e-9)).min(cap);
            p.get(1) * interval.powf(p.get(2)) + p.get(3) * i.fp + p.get(4) * i.mpu_dl1
        }
        _ => equations::branch_resolution_capped(p, i, cap),
    }
}

fn mlp_variant(variant: Variant, p: &ModelParams, i: &ModelInputs) -> f64 {
    match variant {
        Variant::ConstantMlp => p.get(5).max(1.0),
        _ => equations::mlp_correction(p, i),
    }
}

fn predict_variant(
    variant: Variant,
    arch: &MicroarchParams,
    p: &ModelParams,
    i: &ModelInputs,
) -> f64 {
    let mlp = mlp_variant(variant, p, i);
    let cbr = branch_resolution_variant(variant, p, i);
    let mem = |rate: f64, latency: f64| {
        if rate <= 0.0 {
            0.0
        } else {
            rate * latency / mlp
        }
    };
    let raw = equations::raw_stall(p, i);
    let stall = match variant {
        Variant::UndampedStall => raw,
        _ => {
            let miss = i.mpu_l1i * arch.c_l2
                + i.mpu_llci * arch.c_mem
                + i.mpu_itlb * arch.c_tlb
                + i.mpu_br * (cbr + arch.fe_depth)
                + mem(i.mpu_dl2, arch.c_mem)
                + mem(i.mpu_dtlb, arch.c_tlb);
            (1.0 - miss / (1.0 / arch.width + raw).max(1e-9)).max(0.0) * raw
        }
    };
    1.0 / arch.width
        + i.mpu_l1i * arch.c_l2
        + i.mpu_llci * arch.c_mem
        + i.mpu_itlb * arch.c_tlb
        + i.mpu_br * (cbr + arch.fe_depth)
        + mem(i.mpu_dl2, arch.c_mem)
        + mem(i.mpu_dtlb, arch.c_tlb)
        + stall
}

/// Fits an ablated variant with the same optimizer discipline as the full
/// model.
pub fn fit_variant(
    variant: Variant,
    arch: &MicroarchParams,
    records: &[RunRecord],
) -> AblatedModel {
    let inputs: Vec<ModelInputs> = records.iter().map(ModelInputs::from_record).collect();
    let arch = *arch;
    let objective = move |b: &[f64]| -> f64 {
        let p = ModelParams::from_slice(b);
        inputs
            .iter()
            .map(|i| {
                let e = predict_variant(variant, &arch, &p, i) - i.measured_cpi;
                e * e / i.measured_cpi
            })
            .sum()
    };
    let best = MultiStart::new(12, 0x0AB1A7E).run(
        objective,
        &ModelParams::initial_guess().b,
        &ModelParams::bounds(),
        &Options {
            max_evals: 30_000,
            ..Options::default()
        },
    );
    AblatedModel {
        variant,
        arch,
        params: ModelParams::from_slice(&best.params),
    }
}

/// Mean absolute relative error of a fitted variant over a record set.
pub fn variant_error(model: &AblatedModel, records: &[RunRecord]) -> f64 {
    let errors: Vec<f64> = records
        .iter()
        .map(|r| {
            let i = ModelInputs::from_record(r);
            ((model.predict(&i) - i.measured_cpi) / i.measured_cpi).abs()
        })
        .collect();
    ErrorSummary::from_errors(&errors).mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure_suite;
    use oosim::machine::MachineConfig;

    #[test]
    fn variants_fit_and_predict() {
        let machine = MachineConfig::core2();
        let suite: Vec<_> = specgen::suites::cpu2000().into_iter().take(14).collect();
        let records = measure_suite(&machine, &suite, 40_000, 5);
        let arch = MicroarchParams::from_machine(&machine);
        for v in [
            Variant::Full,
            Variant::AdditiveBranch,
            Variant::ConstantMlp,
            Variant::UndampedStall,
            Variant::IntervalCap(64),
        ] {
            let m = fit_variant(v, &arch, &records);
            let err = variant_error(&m, &records);
            assert!(err.is_finite() && err < 1.0, "{}: {err}", v.label());
            assert_eq!(m.variant(), v);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            Variant::Full,
            Variant::AdditiveBranch,
            Variant::ConstantMlp,
            Variant::UndampedStall,
            Variant::IntervalCap(256),
        ]
        .iter()
        .map(|v| v.label())
        .collect();
        let mut sorted = labels.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }
}
