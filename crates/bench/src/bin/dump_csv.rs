//! Dumps the campaign's raw numbers as CSV files (predictions and CPI
//! stacks per machine × suite, plus the counter records) into
//! `./csv_out/`, for external plotting tools.
use memodel::export::{predictions_csv, stacks_csv};
use pmu::{MachineId, Suite};
use std::fs;

fn main() -> std::io::Result<()> {
    let campaign = bench::Campaign::run_from_env();
    let dir = std::path::Path::new("csv_out");
    fs::create_dir_all(dir)?;
    for suite in Suite::ALL {
        for id in MachineId::ALL {
            let records = campaign.records(id, suite);
            let model = campaign.model(id, suite);
            let stem = format!("{}_{}", id.name(), suite.name());
            fs::write(
                dir.join(format!("{stem}_predictions.csv")),
                predictions_csv(model, records),
            )?;
            fs::write(
                dir.join(format!("{stem}_stacks.csv")),
                stacks_csv(model, records),
            )?;
            fs::write(
                dir.join(format!("{stem}_counters.csv")),
                pmu::csv::to_csv(records),
            )?;
        }
    }
    println!("wrote 18 CSV files to {}", dir.display());
    Ok(())
}
