//! Regenerates Table 1: the three simulated machine configurations.
fn main() {
    println!("{}", bench::experiments::table1());
}
