//! Regenerates Figure 4: gray-box vs ANN vs linear regression.
fn main() {
    let campaign = bench::Campaign::run_from_env();
    println!("{}", bench::experiments::fig4(&campaign));
}
