//! Regenerates Table 2: micro-architecture parameters, spec vs calibrated.
fn main() {
    println!("{}", bench::experiments::table2());
}
