//! Ablation study of the model's structural choices (beyond the paper).
fn main() {
    let campaign = bench::Campaign::run_from_env();
    println!("{}", bench::experiments::ablations(&campaign));
}
