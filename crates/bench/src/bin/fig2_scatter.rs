//! Regenerates Figure 2: measured-vs-predicted CPI scatter plots.
fn main() {
    let campaign = bench::Campaign::run_from_env();
    println!("{}", bench::experiments::fig2(&campaign));
}
