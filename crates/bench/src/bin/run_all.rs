//! Runs every experiment in sequence and prints the full reproduction
//! report (the content EXPERIMENTS.md is distilled from).
//!
//! Scale with `CPISTACK_UOPS` (µops per benchmark; default one million).
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("{}", bench::experiments::table1());
    println!("{}", bench::experiments::table2());
    let campaign = bench::Campaign::run_from_env();
    println!("{}", bench::experiments::fig2(&campaign));
    println!("{}", bench::experiments::fig3(&campaign));
    println!("{}", bench::experiments::fig4(&campaign));
    println!("{}", bench::experiments::fig5(&campaign));
    println!("{}", bench::experiments::fig6(&campaign));
    println!("{}", bench::experiments::ablations(&campaign));
    println!("total wall time: {:.0}s", t0.elapsed().as_secs_f64());
}
