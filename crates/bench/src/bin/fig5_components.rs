//! Regenerates Figure 5: CPI-component accuracy vs ground truth.
fn main() {
    let campaign = bench::Campaign::run_from_env();
    println!("{}", bench::experiments::fig5(&campaign));
}
