//! Regenerates Figure 6: CPI-delta stacks across machine generations.
fn main() {
    let campaign = bench::Campaign::run_from_env();
    println!("{}", bench::experiments::fig6(&campaign));
}
