//! Regenerates Figure 3: cross-suite robustness CDFs.
fn main() {
    let campaign = bench::Campaign::run_from_env();
    println!("{}", bench::experiments::fig3(&campaign));
}
