//! One function per table/figure of the paper: each returns the rendered
//! text block that the corresponding binary prints (and `run_all` collects
//! into EXPERIMENTS.md).

use crate::ablation::{fit_variant, variant_error, Variant};
use crate::Campaign;
use calibrate::try_calibrate_machine;
use cpicounters::measure_stack;
use memodel::baselines::{BaselineKind, EmpiricalModel};
use memodel::delta::suite_delta;
use memodel::eval::{evaluate_baseline, evaluate_model, prediction_cdf, summarize, Prediction};
use memodel::{MicroarchParams, ModelInputs};
use oosim::machine::MachineConfig;
use pmu::{MachineId, Suite};
use report::{cdf_plot, grouped_bars, scatter_plot, signed_bars, Table};
use std::fmt::Write as _;

/// Table 1: the three machines' identity and cache organisation.
pub fn table1() -> String {
    let mut t = Table::new(&["", "Pentium 4", "Core 2", "Core i7"]);
    let machines = MachineConfig::paper_machines();
    let cache = |g: Option<oosim::machine::CacheGeometry>| match g {
        Some(g) => format!("{} KiB", g.size / 1024),
        None => "—".into(),
    };
    t.row(&["microarchitecture", "Netburst", "Core", "Nehalem"]);
    t.row_owned(
        std::iter::once("L1 I-cache".to_string())
            .chain(machines.iter().map(|m| cache(Some(m.l1i))))
            .collect(),
    );
    t.row_owned(
        std::iter::once("L1 D-cache".to_string())
            .chain(machines.iter().map(|m| cache(Some(m.l1d))))
            .collect(),
    );
    t.row_owned(
        std::iter::once("L2 cache".to_string())
            .chain(machines.iter().map(|m| cache(Some(m.l2))))
            .collect(),
    );
    t.row_owned(
        std::iter::once("L3 cache".to_string())
            .chain(machines.iter().map(|m| cache(m.l3)))
            .collect(),
    );
    t.row_owned(
        std::iter::once("ROB entries".to_string())
            .chain(machines.iter().map(|m| m.rob_size.to_string()))
            .collect(),
    );
    format!("== Table 1: simulated machine configurations ==\n{t}")
}

/// Table 2: micro-architecture parameters — specification values alongside
/// microbenchmark-calibrated estimates, reproducing the Calibrator
/// methodology.
pub fn table2() -> String {
    let mut out = String::from("== Table 2: width, depth and latencies (spec vs calibrated) ==\n");
    let mut t = Table::new(&[
        "platform", "width", "depth", "L2", "L3", "mem", "TLB", "L2*", "L3*", "mem*", "TLB*",
    ]);
    for m in MachineConfig::paper_machines() {
        let est = try_calibrate_machine(&m);
        let (l2e, l3e, meme, tlbe) = match &est {
            Ok(e) => (
                format!("{:.0}", e.l2),
                e.l3.map(|v| format!("{v:.0}")).unwrap_or("—".into()),
                format!("{:.0}", e.mem),
                format!("{:.0}", e.tlb),
            ),
            Err(_) => ("?".into(), "?".into(), "?".into(), "?".into()),
        };
        t.row_owned(vec![
            m.id.display_name().to_string(),
            m.dispatch_width.to_string(),
            m.frontend_depth.to_string(),
            m.lat.l2.to_string(),
            if m.l3.is_some() {
                m.lat.l3.to_string()
            } else {
                "—".into()
            },
            m.lat.mem.to_string(),
            m.lat.tlb.to_string(),
            l2e,
            l3e,
            meme,
            tlbe,
        ]);
    }
    let _ = writeln!(out, "{t}");
    out.push_str("(* = estimated by the pointer-chase microbenchmark calibration)\n");
    out
}

/// Fig. 2: measured-vs-predicted scatter per suite × machine, plus the
/// headline error statistics.
pub fn fig2(campaign: &Campaign) -> String {
    let mut out = campaign.banner("Figure 2: model accuracy (measured vs predicted CPI)");
    let mut all_errors: Vec<f64> = Vec::new();
    for suite in Suite::ALL {
        for id in MachineId::ALL {
            let records = campaign.records(id, suite);
            let model = campaign.model(id, suite);
            let preds = evaluate_model(model, records);
            let points: Vec<(f64, f64)> = preds.iter().map(|p| (p.measured, p.predicted)).collect();
            let summary = summarize(&preds);
            all_errors.extend(preds.iter().map(Prediction::error));
            let _ = writeln!(
                out,
                "{}",
                scatter_plot(
                    &format!("{} -- {}  [{summary}]", suite, id.display_name()),
                    &points,
                    56,
                    16,
                )
            );
        }
    }
    let overall = regress::metrics::ErrorSummary::from_errors(&all_errors);
    let below20 = regress::metrics::ErrorSummary::fraction_below(&all_errors, 0.20);
    let _ = writeln!(
        out,
        "Overall: {overall}; {:.0}% of benchmarks below 20% error",
        below20 * 100.0
    );
    let _ = writeln!(
        out,
        "Paper reference: avg 9.7% (CPU2000) / 10.5% (CPU2006), max 35%, 90% below 20%."
    );
    out
}

/// Fig. 3: robustness — the CPU2000 model and the CPU2006 model both
/// evaluated on CPU2006, as sorted-error CDFs per machine.
pub fn fig3(campaign: &Campaign) -> String {
    let mut out = campaign.banner("Figure 3: robustness (CPU2000 vs CPU2006 model on CPU2006)");
    for id in MachineId::ALL {
        let test = campaign.records(id, Suite::Cpu2006);
        let native = evaluate_model(campaign.model(id, Suite::Cpu2006), test);
        let transferred = evaluate_model(campaign.model(id, Suite::Cpu2000), test);
        let native_summary = summarize(&native);
        let transfer_summary = summarize(&transferred);
        let series = [
            ("CPU2006 model", prediction_cdf(&native)),
            ("CPU2000 model", prediction_cdf(&transferred)),
        ];
        let _ = writeln!(
            out,
            "{}",
            cdf_plot(
                &format!(
                    "{}  [native {native_summary}; transferred {transfer_summary}]",
                    id.display_name()
                ),
                &series,
                56,
                14,
            )
        );
    }
    out.push_str(
        "Paper reference: the CPU2000 model is only slightly less accurate than the\n\
         CPU2006 model on CPU2006 — the gray-box model does not overfit.\n",
    );
    out
}

/// Fig. 4: mechanistic-empirical vs ANN vs linear regression, with and
/// without cross-validation, per machine.
pub fn fig4(campaign: &Campaign) -> String {
    let mut out =
        campaign.banner("Figure 4: gray-box vs purely empirical models (ANN, linear regression)");
    let groups: Vec<&str> = MachineId::ALL.iter().map(|m| m.display_name()).collect();
    let arms: [(&str, Suite, Suite); 4] = [
        (
            "(a) CPU2000 model on CPU2000 (no cross-validation)",
            Suite::Cpu2000,
            Suite::Cpu2000,
        ),
        (
            "(a) CPU2006 model on CPU2006 (no cross-validation)",
            Suite::Cpu2006,
            Suite::Cpu2006,
        ),
        (
            "(b) CPU2006 model on CPU2000 (cross-validation)",
            Suite::Cpu2006,
            Suite::Cpu2000,
        ),
        (
            "(b) CPU2000 model on CPU2006 (cross-validation)",
            Suite::Cpu2000,
            Suite::Cpu2006,
        ),
    ];
    for (label, train, test) in arms {
        let mut me = Vec::new();
        let mut ann = Vec::new();
        let mut lin = Vec::new();
        for id in MachineId::ALL {
            let train_records = campaign.records(id, train);
            let test_records = campaign.records(id, test);
            let model = campaign.model(id, train);
            me.push(summarize(&evaluate_model(model, test_records)).mean);
            let ann_model =
                EmpiricalModel::fit(BaselineKind::NeuralNetwork, train_records).expect("ann fit");
            ann.push(summarize(&evaluate_baseline(&ann_model, test_records)).mean);
            let lin_model =
                EmpiricalModel::fit(BaselineKind::Linear, train_records).expect("ols fit");
            lin.push(summarize(&evaluate_baseline(&lin_model, test_records)).mean);
        }
        let series = [
            ("mechanistic-empirical", me),
            ("neural network", ann),
            ("linear regression", lin),
        ];
        let _ = writeln!(out, "{}", grouped_bars(label, &groups, &series, 48));
    }
    out.push_str(
        "Paper reference: comparable accuracy without cross-validation; under\n\
         cross-validation the empirical models degrade sharply while the\n\
         mechanistic-empirical model does not (it wins every machine).\n",
    );
    out
}

/// Fig. 5: per-component CPI accuracy against the ASPLOS'06 ground-truth
/// counter architecture inside the simulator.
pub fn fig5(campaign: &Campaign) -> String {
    let mut out =
        campaign.banner("Figure 5: CPI-component accuracy vs the ASPLOS'06 counter architecture");
    // Re-run CPU2000 on Core 2 with stack accounting attached; compare the
    // model's component estimates against the measured attribution.
    let id = MachineId::Core2;
    let machine = campaign.machine(id).clone();
    let model = campaign.model(id, Suite::Cpu2000);
    let suite = specgen::suites::cpu2000();
    let mut sums = [0.0f64; 8];
    let mut n = 0.0;
    for profile in &suite {
        let (record, truth) = measure_stack(&machine, profile, campaign.uops(), campaign.seed());
        let estimate = model.cpi_stack(&record);
        let total = truth.total();
        // Fold the ground truth's unattributed residual into its resource
        // component: the model has no "other" bucket.
        let truth_components = [
            truth.base,
            truth.l1i,
            truth.llc_i,
            truth.itlb,
            truth.branch,
            truth.llc_d,
            truth.dtlb,
            truth.resource + truth.other,
        ];
        for (k, (name_value, t)) in estimate
            .components()
            .iter()
            .zip(truth_components)
            .enumerate()
        {
            let (_, e) = *name_value;
            sums[k] += (e - t).abs() / total;
        }
        n += 1.0;
    }
    let names = [
        "base", "L1 I$", "L2 I$", "I-TLB", "branch", "L2 D$", "D-TLB", "resource",
    ];
    let items: Vec<(&str, f64)> = names
        .iter()
        .zip(sums.iter().map(|s| s / n))
        .map(|(n, v)| (*n, v))
        .collect();
    let mut t = Table::new(&["component", "avg |error| (% of CPI)"]);
    for (name, v) in &items {
        t.row_owned(vec![name.to_string(), format!("{:.1}%", v * 100.0)]);
    }
    let _ = writeln!(out, "{t}");
    let worst = items
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    let _ = writeln!(
        out,
        "Worst component: {} ({:.1}%)",
        worst.0,
        worst.1 * 100.0
    );
    out.push_str(
        "Paper reference: highest error on the L2 D$ component (9.2%), because MLP\n\
         cannot be measured on hardware; resource stalls second hardest.\n",
    );
    out
}

/// Fig. 6: CPI-delta stacks for Core 2 vs Pentium 4 and Core i7 vs Core 2,
/// per suite — overall, branch split and LLC split.
pub fn fig6(campaign: &Campaign) -> String {
    let mut out = campaign.banner("Figure 6: CPI-delta stacks (negative = improvement)");
    let pairs = [
        (MachineId::Pentium4, MachineId::Core2, "Core 2 vs Pentium 4"),
        (MachineId::Core2, MachineId::CoreI7, "Core i7 vs Core 2"),
    ];
    for suite in Suite::ALL {
        for (old, new, label) in pairs {
            let d = suite_delta(
                campaign.model(old, suite),
                campaign.records(old, suite),
                campaign.model(new, suite),
                campaign.records(new, suite),
            );
            let overall: Vec<(&str, f64)> = d.overall.components().to_vec();
            let _ = writeln!(
                out,
                "{}",
                signed_bars(
                    &format!(
                        "[{suite}] {label} — overall (Δ {:+.3} cycles/instr)",
                        d.overall.total()
                    ),
                    &overall,
                    26,
                )
            );
            let _ = writeln!(
                out,
                "{}",
                signed_bars(
                    &format!("[{suite}] {label} — branch component split"),
                    &d.branch.components(),
                    26,
                )
            );
            let _ = writeln!(
                out,
                "{}",
                signed_bars(
                    &format!("[{suite}] {label} — last-level cache component split"),
                    &d.memory.components(),
                    26,
                )
            );
        }
    }
    out.push_str(
        "Paper reference: Core 2 beats Pentium 4 via branches + width + fusion;\n\
         Core 2 mispredicts MORE yet wins on branches via pipeline depth and\n\
         resolution; i7's gains are memory-led on CPU2006; removing misses can\n\
         be offset by reduced MLP (hidden misses).\n",
    );
    out
}

/// Ablation study: each design choice of DESIGN.md §5 fitted and evaluated
/// in-suite and cross-suite on every machine.
pub fn ablations(campaign: &Campaign) -> String {
    let mut out = campaign.banner("Ablations: the model's design choices");
    let variants = [
        Variant::Full,
        Variant::AdditiveBranch,
        Variant::ConstantMlp,
        Variant::UndampedStall,
        Variant::IntervalCap(32),
        Variant::IntervalCap(512),
    ];
    let mut t = Table::new(&["variant", "machine", "in-suite", "cross-suite"]);
    for id in MachineId::ALL {
        let arch = MicroarchParams::from_machine(campaign.machine(id));
        let train = campaign.records(id, Suite::Cpu2000);
        let test = campaign.records(id, Suite::Cpu2006);
        for v in variants {
            let m = fit_variant(v, &arch, train);
            t.row_owned(vec![
                v.label(),
                id.display_name().to_string(),
                format!("{:.1}%", variant_error(&m, train) * 100.0),
                format!("{:.1}%", variant_error(&m, test) * 100.0),
            ]);
        }
    }
    let _ = writeln!(out, "{t}");

    // Optimizer comparison: the same objective fitted by Nelder-Mead
    // multi-start (our default) and Levenberg-Marquardt (what SPSS used).
    let _ = writeln!(
        out,
        "Optimizer comparison (CPU2000 fit, in-suite / cross-suite error):"
    );
    let mut t2 = Table::new(&["machine", "Nelder-Mead", "", "Levenberg-Marquardt", ""]);
    for id in MachineId::ALL {
        let arch = MicroarchParams::from_machine(campaign.machine(id));
        let train = campaign.records(id, Suite::Cpu2000);
        let test = campaign.records(id, Suite::Cpu2006);
        let nm = campaign.model(id, Suite::Cpu2000);
        let lm = memodel::InferredModel::fit_lm(&arch, train, &Default::default()).expect("lm fit");
        let err = |m: &memodel::InferredModel, rs: &[pmu::RunRecord]| {
            summarize(&evaluate_model(m, rs)).mean
        };
        t2.row_owned(vec![
            id.display_name().to_string(),
            format!("{:.1}%", err(nm, train) * 100.0),
            format!("{:.1}%", err(nm, test) * 100.0),
            format!("{:.1}%", err(&lm, train) * 100.0),
            format!("{:.1}%", err(&lm, test) * 100.0),
        ]);
    }
    let _ = writeln!(out, "{t2}");

    // Parameter-stability bootstrap on the Core 2 / CPU2000 fit.
    let stability = memodel::stability::bootstrap_fit(
        &MicroarchParams::from_machine(campaign.machine(MachineId::Core2)),
        campaign.records(MachineId::Core2, Suite::Cpu2000),
        24,
        campaign.seed(),
    );
    let _ = writeln!(out, "{stability}");
    let weak = stability.weakly_identified(1.0);
    if weak.is_empty() {
        let _ = writeln!(out, "All parameters well identified at the 5-95% band.");
    } else {
        let weak_names: Vec<String> = weak.iter().map(|i| format!("b{i}")).collect();
        let _ = writeln!(
            out,
            "Weakly identified parameters (5-95% band wider than their mean): {}",
            weak_names.join(", ")
        );
    }
    out
}

/// A one-line sanity statistic used by integration tests: the overall mean
/// in-suite error across all six (machine, suite) fits.
pub fn mean_in_suite_error(campaign: &Campaign) -> f64 {
    let mut total = 0.0;
    let mut n = 0.0;
    for suite in Suite::ALL {
        for id in MachineId::ALL {
            let preds = evaluate_model(campaign.model(id, suite), campaign.records(id, suite));
            total += summarize(&preds).mean;
            n += 1.0;
        }
    }
    total / n
}

/// Convenience: per-benchmark model inputs for external analysis dumps.
pub fn inputs_for(campaign: &Campaign, id: MachineId, suite: Suite) -> Vec<ModelInputs> {
    campaign
        .records(id, suite)
        .iter()
        .map(ModelInputs::from_record)
        .collect()
}
