//! Ground-truth CPI stacks from inside the simulator — the reproduction of
//! the hardware performance-counter architecture of Eyerman, Eeckhout,
//! Karkhanis and Smith (ASPLOS 2006) that the paper uses to validate its
//! model's CPI components (Fig. 5).
//!
//! The ASPLOS'06 proposal attributes every dispatch slot lost at the front
//! of the window to the miss event responsible: I-cache and I-TLB misses
//! stall fetch; branch mispredictions flush and refill the front-end;
//! long-latency loads block the ROB head; dependence chains fill the ROB
//! without any miss event (resource stalls). Our simulator computes each
//! µop's dispatch constraints explicitly, so the same attribution falls out
//! of the [`DispatchObserver`] callbacks: every cycle by which dispatch
//! slips past its ideal slot is charged to the binding constraint.
//!
//! The result is a [`TrueCpiStack`] — "true" in the sense of being measured
//! *inside* the machine, with none of the model's approximations. Fig. 5
//! compares the model's inferred components against these.
//!
//! # Examples
//!
//! ```
//! use cpicounters::measure_stack;
//! use oosim::machine::MachineConfig;
//! use pmu::Suite;
//! use specgen::WorkloadProfile;
//!
//! let machine = MachineConfig::core2();
//! let profile = WorkloadProfile::builder("demo", Suite::Cpu2000).build();
//! let (record, stack) = measure_stack(&machine, &profile, 20_000, 42);
//! // The stack's components sum to the measured CPI.
//! assert!((stack.total() - record.cpi()).abs() < 1e-9);
//! ```

use oosim::machine::MachineConfig;
use oosim::observer::{DispatchObserver, StallCause};
use oosim::run::run_workload_observed;
use pmu::RunRecord;
use specgen::WorkloadProfile;
use std::fmt;

/// Accumulating observer: sums lost dispatch cycles per cause.
///
/// Attach to a simulation via
/// [`run_workload_observed`](oosim::run::run_workload_observed), then
/// convert to a [`TrueCpiStack`] with [`StackCounters::stack`].
#[derive(Debug, Clone, Default)]
pub struct StackCounters {
    lost: [u64; StallCause::ALL.len()],
    cycles: u64,
    uops: u64,
    width: u32,
    finished: bool,
}

impl StackCounters {
    /// Creates an empty counter bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lost cycles charged to `cause` so far.
    pub fn lost(&self, cause: StallCause) -> u64 {
        let idx = StallCause::ALL
            .iter()
            .position(|&c| c == cause)
            .expect("cause in ALL");
        self.lost[idx]
    }

    /// Converts the accumulated counts into a per-µop CPI stack.
    ///
    /// # Panics
    ///
    /// Panics if called before the simulation finished (no
    /// [`DispatchObserver::on_finish`] yet) or if no µops ran.
    pub fn stack(&self) -> TrueCpiStack {
        assert!(self.finished, "simulation has not finished");
        assert!(self.uops > 0, "no µops were simulated");
        let n = self.uops as f64;
        let per = |cause: StallCause| self.lost(cause) as f64 / n;
        let base = 1.0 / self.width as f64;
        let attributed: u64 = self.lost.iter().sum();
        let ideal = self.uops as f64 / self.width as f64;
        let other = (self.cycles as f64 - ideal - attributed as f64) / n;
        TrueCpiStack {
            base,
            l1i: per(StallCause::L1InstrMiss),
            llc_i: per(StallCause::LlcInstrMiss),
            itlb: per(StallCause::ItlbMiss),
            branch: per(StallCause::BranchMispredict),
            llc_d: per(StallCause::LlcDataMiss),
            dtlb: per(StallCause::DtlbMiss),
            resource: per(StallCause::ResourceStall),
            other,
        }
    }
}

impl DispatchObserver for StackCounters {
    fn on_stall(&mut self, gap: u64, cause: StallCause) {
        let idx = StallCause::ALL
            .iter()
            .position(|&c| c == cause)
            .expect("cause in ALL");
        self.lost[idx] = self.lost[idx].saturating_add(gap);
    }

    fn on_finish(&mut self, cycles: u64, uops: u64, width: u32) {
        self.cycles = cycles;
        self.uops = uops;
        self.width = width;
        self.finished = true;
    }
}

/// A measured (ground-truth) CPI stack: cycles per µop attributed to each
/// cause. Component names follow the paper's Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrueCpiStack {
    /// Base component: `1/D` (the useful-work floor).
    pub base: f64,
    /// L1 I-cache miss component.
    pub l1i: f64,
    /// Last-level I-side miss component (instruction fetches from DRAM).
    pub llc_i: f64,
    /// I-TLB miss component.
    pub itlb: f64,
    /// Branch misprediction component (resolution + front-end refill).
    pub branch: f64,
    /// Long-latency (DRAM) load component.
    pub llc_d: f64,
    /// D-TLB miss component.
    pub dtlb: f64,
    /// Resource stall component (ROB full behind dependence chains and
    /// on-chip-latency instructions).
    pub resource: f64,
    /// Residual cycles the attribution could not bind: partially-used
    /// dispatch cycles around stalls, drain tails, and bandwidth
    /// second-order effects. Small relative to the total for healthy runs.
    pub other: f64,
}

impl TrueCpiStack {
    /// Sum of all components — equals the measured CPI exactly (the
    /// residual `other` component closes the accounting identity).
    pub fn total(&self) -> f64 {
        self.base
            + self.l1i
            + self.llc_i
            + self.itlb
            + self.branch
            + self.llc_d
            + self.dtlb
            + self.resource
            + self.other
    }

    /// Components as `(name, value)` pairs in reporting order.
    pub fn components(&self) -> [(&'static str, f64); 9] {
        [
            ("base", self.base),
            ("l1i_miss", self.l1i),
            ("llc_i_miss", self.llc_i),
            ("itlb_miss", self.itlb),
            ("branch_mispredict", self.branch),
            ("llc_d_miss", self.llc_d),
            ("dtlb_miss", self.dtlb),
            ("resource_stall", self.resource),
            ("other", self.other),
        ]
    }
}

impl fmt::Display for TrueCpiStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CPI {:.3} =", self.total())?;
        for (name, value) in self.components() {
            if value > 0.0005 {
                write!(f, " {name}:{value:.3}")?;
            }
        }
        Ok(())
    }
}

/// Runs `profile` on `machine` with stack accounting attached; returns both
/// the ordinary counter record and the ground-truth stack.
pub fn measure_stack(
    machine: &MachineConfig,
    profile: &WorkloadProfile,
    uops: u64,
    seed: u64,
) -> (RunRecord, TrueCpiStack) {
    let mut counters = StackCounters::new();
    let record = run_workload_observed(machine, profile, uops, seed, &mut counters);
    let stack = counters.stack();
    (record, stack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmu::Suite;
    use specgen::{AccessPattern, MemRegion};

    fn stack_for(profile: &WorkloadProfile, machine: &MachineConfig) -> (RunRecord, TrueCpiStack) {
        measure_stack(machine, profile, 60_000, 0xF00D)
    }

    #[test]
    fn components_sum_to_cpi() {
        let p = WorkloadProfile::builder("sum", Suite::Cpu2000).build();
        let (record, stack) = stack_for(&p, &MachineConfig::core2());
        assert!(
            (stack.total() - record.cpi()).abs() < 1e-9,
            "stack {} vs cpi {}",
            stack.total(),
            record.cpi()
        );
    }

    #[test]
    fn all_components_nonnegative() {
        let p = WorkloadProfile::builder("nn", Suite::Cpu2006)
            .fp(0.3)
            .build();
        for m in MachineConfig::paper_machines() {
            let (_, stack) = stack_for(&p, &m);
            for (name, v) in stack.components() {
                assert!(v >= 0.0, "{name} = {v}");
            }
        }
    }

    #[test]
    fn memory_bound_workload_shows_llc_component() {
        // Keep branches rare and predictable: a mispredicted branch whose
        // producers are chased loads resolves after the whole miss, and the
        // front-end stall would (correctly!) be charged to the branch.
        let p = WorkloadProfile::builder("membound", Suite::Cpu2000)
            .branches(0.03)
            .branch_behaviour(0.005, 0.9, 0.05)
            .regions(vec![MemRegion::kib(
                65536,
                1.0,
                AccessPattern::PointerChase,
            )])
            .build();
        let (_, stack) = stack_for(&p, &MachineConfig::core2());
        assert!(
            stack.llc_d > stack.total() * 0.35,
            "LLC-D should dominate a pointer chaser: {stack}"
        );
    }

    #[test]
    fn branchy_workload_shows_branch_component() {
        let p = WorkloadProfile::builder("branchy", Suite::Cpu2000)
            .branches(0.20)
            .branch_behaviour(0.5, 0.5, 0.1)
            .regions(vec![MemRegion::kib(
                8,
                1.0,
                AccessPattern::Sequential { stride: 8 },
            )])
            .build();
        let (_, stack) = stack_for(&p, &MachineConfig::pentium4());
        assert!(
            stack.branch > stack.total() * 0.25,
            "branch component should be large: {stack}"
        );
        assert!(stack.llc_d < stack.total() * 0.05);
    }

    #[test]
    fn fp_chains_show_resource_stalls() {
        let p = WorkloadProfile::builder("chains", Suite::Cpu2000)
            .fp(0.45)
            .ilp(2.0, 0.9)
            .branches(0.04)
            .branch_behaviour(0.01, 0.9, 0.1)
            .regions(vec![MemRegion::kib(
                8,
                1.0,
                AccessPattern::Sequential { stride: 8 },
            )])
            .build();
        let (_, stack) = stack_for(&p, &MachineConfig::core2());
        assert!(
            stack.resource > stack.total() * 0.3,
            "dependence chains should stall resources: {stack}"
        );
    }

    #[test]
    fn cached_workload_is_mostly_base() {
        let p = WorkloadProfile::builder("cached", Suite::Cpu2000)
            .branches(0.08)
            .branch_behaviour(0.005, 0.9, 0.1)
            .ilp(12.0, 0.1)
            .regions(vec![MemRegion::kib(
                8,
                1.0,
                AccessPattern::Sequential { stride: 8 },
            )])
            .code(8, 0.99, 0.9)
            .build();
        let (record, stack) = stack_for(&p, &MachineConfig::core_i7());
        assert!(
            record.cpi() < 0.9,
            "cached workload should be fast: {}",
            record.cpi()
        );
        assert!(stack.base / stack.total() > 0.25, "{stack}");
    }

    #[test]
    fn other_component_is_small() {
        let p = WorkloadProfile::builder("other", Suite::Cpu2000).build();
        let (_, stack) = stack_for(&p, &MachineConfig::core2());
        assert!(
            stack.other < stack.total() * 0.35,
            "unattributed cycles should not dominate: {stack}"
        );
    }

    #[test]
    #[should_panic(expected = "has not finished")]
    fn stack_before_finish_panics() {
        let c = StackCounters::new();
        let _ = c.stack();
    }

    #[test]
    fn display_prints_components() {
        let p = WorkloadProfile::builder("disp", Suite::Cpu2000).build();
        let (_, stack) = stack_for(&p, &MachineConfig::core2());
        let text = stack.to_string();
        assert!(text.starts_with("CPI "));
        assert!(text.contains("base"));
    }

    #[test]
    fn deeper_pipeline_grows_branch_component() {
        let p = WorkloadProfile::builder("depth", Suite::Cpu2000)
            .branches(0.18)
            .branch_behaviour(0.4, 0.5, 0.1)
            .regions(vec![MemRegion::kib(
                8,
                1.0,
                AccessPattern::Sequential { stride: 8 },
            )])
            .build();
        let shallow = MachineConfig::core2();
        let deep = MachineConfig::builder(shallow.clone())
            .frontend_depth(40)
            .build();
        let (_, s1) = stack_for(&p, &shallow);
        let (_, s2) = stack_for(&p, &deep);
        assert!(
            s2.branch > s1.branch * 1.5,
            "{} vs {}",
            s2.branch,
            s1.branch
        );
    }
}
