//! A bank of 64-bit performance counters.

use crate::event::Event;
use std::fmt;
use std::ops::AddAssign;

/// A full bank of counters, one 64-bit counter per [`Event`].
///
/// Unlike real PMUs (which multiplex a handful of physical counters), the
/// simulated PMU counts every event simultaneously and exactly — the paper's
/// authors ran each benchmark multiple times to cover the event set, which we
/// do not need to replicate.
///
/// # Examples
///
/// ```
/// use pmu::{CounterSet, Event};
///
/// let mut c = CounterSet::new();
/// c.add(Event::UopsRetired, 100);
/// c.add(Event::Loads, 30);
/// assert_eq!(c.get(Event::Loads), 30);
/// assert!((c.per_uop(Event::Loads) - 0.3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct CounterSet {
    values: [u64; Event::COUNT],
}

impl CounterSet {
    /// Creates an all-zero counter bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of `event`.
    #[inline]
    pub fn get(&self, event: Event) -> u64 {
        self.values[event.index()]
    }

    /// Adds `amount` to `event`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&mut self, event: Event, amount: u64) {
        let v = &mut self.values[event.index()];
        *v = v.saturating_add(amount);
    }

    /// Increments `event` by one.
    #[inline]
    pub fn inc(&mut self, event: Event) {
        self.add(event, 1);
    }

    /// Sets `event` to an absolute value, overwriting the previous count.
    #[inline]
    pub fn set(&mut self, event: Event, value: u64) {
        self.values[event.index()] = value;
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        self.values = [0; Event::COUNT];
    }

    /// Iterates over `(event, value)` pairs in dense-index order.
    pub fn iter(&self) -> impl Iterator<Item = (Event, u64)> + '_ {
        Event::ALL.iter().map(move |&e| (e, self.get(e)))
    }

    /// Cycles per committed micro-operation — the quantity the model predicts.
    ///
    /// Returns `f64::NAN` when no µops retired, so callers notice an empty
    /// measurement instead of silently reading `0.0`.
    pub fn cpi(&self) -> f64 {
        let uops = self.get(Event::UopsRetired);
        if uops == 0 {
            return f64::NAN;
        }
        self.get(Event::Cycles) as f64 / uops as f64
    }

    /// `event` count per committed micro-operation (the `mpµ_x` rates of
    /// Eq. 2–3). Returns `f64::NAN` when no µops retired.
    pub fn per_uop(&self, event: Event) -> f64 {
        let uops = self.get(Event::UopsRetired);
        if uops == 0 {
            return f64::NAN;
        }
        self.get(event) as f64 / uops as f64
    }

    /// `event` count per thousand committed macro-instructions (MPKI), the
    /// rate the paper quotes when discussing branch predictors (§6).
    /// Returns `f64::NAN` when no instructions retired.
    pub fn mpki(&self, event: Event) -> f64 {
        let instr = self.get(Event::InstrRetired);
        if instr == 0 {
            return f64::NAN;
        }
        self.get(event) as f64 * 1000.0 / instr as f64
    }

    /// Returns a new bank holding the componentwise sum of `self` and `other`.
    ///
    /// Useful for aggregating per-phase counters into a whole-run total.
    pub fn merged(&self, other: &CounterSet) -> CounterSet {
        let mut out = self.clone();
        out += other.clone();
        out
    }

    /// Micro-operations per macro-instruction — the CISC cracking/fusion
    /// ratio; its change between machines feeds the "µop fusion" bar of the
    /// CPI-delta stacks (Fig. 6).
    pub fn uops_per_instr(&self) -> f64 {
        let instr = self.get(Event::InstrRetired);
        if instr == 0 {
            return f64::NAN;
        }
        self.get(Event::UopsRetired) as f64 / instr as f64
    }
}

impl AddAssign for CounterSet {
    fn add_assign(&mut self, rhs: CounterSet) {
        for (a, b) in self.values.iter_mut().zip(rhs.values.iter()) {
            *a = a.saturating_add(*b);
        }
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (e, v) in self.iter() {
            if v != 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{e}={v}")?;
                first = false;
            }
        }
        if first {
            write!(f, "(all zero)")?;
        }
        Ok(())
    }
}

impl FromIterator<(Event, u64)> for CounterSet {
    fn from_iter<I: IntoIterator<Item = (Event, u64)>>(iter: I) -> Self {
        let mut c = CounterSet::new();
        for (e, v) in iter {
            c.add(e, v);
        }
        c
    }
}

impl Extend<(Event, u64)> for CounterSet {
    fn extend<I: IntoIterator<Item = (Event, u64)>>(&mut self, iter: I) {
        for (e, v) in iter {
            self.add(e, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zero() {
        let c = CounterSet::new();
        for e in Event::ALL {
            assert_eq!(c.get(e), 0);
        }
    }

    #[test]
    fn add_and_inc() {
        let mut c = CounterSet::new();
        c.add(Event::Cycles, 5);
        c.inc(Event::Cycles);
        assert_eq!(c.get(Event::Cycles), 6);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut c = CounterSet::new();
        c.add(Event::Cycles, u64::MAX);
        c.inc(Event::Cycles);
        assert_eq!(c.get(Event::Cycles), u64::MAX);
    }

    #[test]
    fn cpi_and_rates() {
        let mut c = CounterSet::new();
        c.add(Event::Cycles, 400);
        c.add(Event::UopsRetired, 200);
        c.add(Event::InstrRetired, 100);
        c.add(Event::BranchMispredicts, 3);
        assert!((c.cpi() - 2.0).abs() < 1e-12);
        assert!((c.per_uop(Event::BranchMispredicts) - 0.015).abs() < 1e-12);
        assert!((c.mpki(Event::BranchMispredicts) - 30.0).abs() < 1e-12);
        assert!((c.uops_per_instr() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_nan() {
        let c = CounterSet::new();
        assert!(c.cpi().is_nan());
        assert!(c.per_uop(Event::Loads).is_nan());
        assert!(c.mpki(Event::Loads).is_nan());
        assert!(c.uops_per_instr().is_nan());
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = CounterSet::new();
        a.add(Event::Cycles, 10);
        let mut b = CounterSet::new();
        b.add(Event::Cycles, 5);
        b.add(Event::Loads, 7);
        let c = a.merged(&b);
        assert_eq!(c.get(Event::Cycles), 15);
        assert_eq!(c.get(Event::Loads), 7);
        a += b;
        assert_eq!(a, c);
    }

    #[test]
    fn collect_from_pairs() {
        let c: CounterSet = [(Event::Loads, 4), (Event::Loads, 6)].into_iter().collect();
        assert_eq!(c.get(Event::Loads), 10);
    }

    #[test]
    fn display_skips_zeroes() {
        let mut c = CounterSet::new();
        c.add(Event::Stores, 2);
        assert_eq!(c.to_string(), "stores=2");
        assert_eq!(CounterSet::new().to_string(), "(all zero)");
    }
}
