//! Hardware performance-counter taxonomy and event collection.
//!
//! The ISPASS 2011 mechanistic-empirical model is driven entirely by hardware
//! performance counter data: cycle counts, committed micro-operation and
//! macro-instruction counts, cache/TLB miss counts at each level, branch
//! mispredictions and floating-point operation counts (paper §4). On real
//! hardware these are collected with `perfex`/`perfmon`; in this reproduction
//! they are collected by the `oosim` simulator, which increments the same
//! event set while simulating.
//!
//! This crate defines:
//!
//! * [`Event`] — the closed set of countable events,
//! * [`CounterSet`] — a bank of 64-bit counters indexed by [`Event`],
//! * [`RunRecord`] — one benchmark run on one machine: identification plus a
//!   finished [`CounterSet`], with the derived per-µop rates the model needs,
//! * CSV import/export so records can round-trip to disk like the perfex logs
//!   the paper's authors kept,
//! * [`LiveSource`] — streaming batch sources: a deterministic
//!   [`ReplaySource`] for CI and recorded sessions, plus a Linux
//!   `perf_event_open` backend behind the `perf-events` feature.
//!
//! # Examples
//!
//! ```
//! use pmu::{CounterSet, Event};
//!
//! let mut counters = CounterSet::new();
//! counters.add(Event::Cycles, 1_000);
//! counters.add(Event::UopsRetired, 800);
//! counters.inc(Event::BranchMispredicts);
//! assert_eq!(counters.get(Event::Cycles), 1_000);
//! assert!((counters.cpi() - 1.25).abs() < 1e-12);
//! ```

pub mod counters;
pub mod csv;
pub mod event;
pub mod live;
pub mod record;

pub use counters::CounterSet;
pub use event::Event;
pub use live::{LiveSource, ReplaySource};
pub use record::{MachineId, RunRecord, Suite};
