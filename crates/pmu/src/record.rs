//! Benchmark-run records: one benchmark, one machine, one counter bank.

use crate::counters::CounterSet;
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex, OnceLock};

/// Which benchmark suite a workload belongs to.
///
/// The paper fits one model per suite per machine, and uses cross-suite
/// transfer (fit on CPU2000, evaluate on CPU2006 and vice versa) to probe
/// overfitting, so suite membership is first-class in a run record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Suite {
    /// SPEC CPU2000 (48 benchmark–input pairs in the paper).
    Cpu2000,
    /// SPEC CPU2006 (55 benchmark–input pairs in the paper).
    Cpu2006,
}

impl Suite {
    /// Stable lowercase identifier used in CSV files.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Cpu2000 => "cpu2000",
            Suite::Cpu2006 => "cpu2006",
        }
    }

    /// Both suites, in chronological order.
    pub const ALL: [Suite; 2] = [Suite::Cpu2000, Suite::Cpu2006];
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a [`Suite`] or [`MachineId`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNameError {
    kind: &'static str,
    unknown: String,
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {} name `{}`", self.kind, self.unknown)
    }
}

impl std::error::Error for ParseNameError {}

impl FromStr for Suite {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Suite::ALL
            .iter()
            .copied()
            .find(|m| m.name() == s)
            .ok_or_else(|| ParseNameError {
                kind: "suite",
                unknown: s.to_owned(),
            })
    }
}

/// The three commercial machines the paper models (Table 1), plus named
/// design-space variants of them.
///
/// A variant identifies a hypothetical machine derived from one of the
/// presets by overriding sweep axes, and is spelled
/// `<base>+<axis><value>...` with axes `rob` (ROB capacity), `mshr`
/// (MSHR count), `dw` (dispatch width) and `pf` (prefetch depth) — e.g.
/// `core2+rob192+mshr32`. Variant names are interned in a process-wide
/// pool, so the id stays `Copy` and two ids are equal exactly when their
/// names are equal. Parsing the same name twice (CSV, wire protocol,
/// snapshot files) always yields the same id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineId {
    /// Intel Pentium 4 (Netburst, Prescott): deep 31-stage pipeline, 3-wide.
    Pentium4,
    /// Intel Core 2 (Conroe): 14-stage pipeline, 4-wide, 4 MiB L2.
    Core2,
    /// Intel Core i7 (Nehalem, Bloomfield): 4-wide, 256 KiB L2 + 8 MiB L3.
    CoreI7,
    /// A named design-space variant of one of the presets; the payload is
    /// an index into the process-wide intern pool (see [`MachineId::variant`]).
    Variant(u32),
}

/// Process-wide intern pool for variant names. Names are leaked to
/// `&'static str` once and deduplicated, so index equality is name
/// equality and `name()` can keep returning `&'static str`.
fn variant_pool() -> &'static Mutex<Vec<&'static str>> {
    static POOL: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

/// Is `s` a well-formed variant name: `<preset>+<axis><digits>...`?
fn valid_variant_name(s: &str) -> bool {
    let mut parts = s.split('+');
    let base_ok = parts
        .next()
        .is_some_and(|base| MachineId::ALL.iter().any(|m| m.name() == base));
    if !base_ok || !s.contains('+') {
        return false;
    }
    parts.all(|tok| {
        let digits = tok.find(|c: char| c.is_ascii_digit()).unwrap_or(tok.len());
        let (axis, value) = tok.split_at(digits);
        matches!(axis, "rob" | "mshr" | "dw" | "pf")
            && !value.is_empty()
            && value.len() <= 9
            && value.bytes().all(|b| b.is_ascii_digit())
    })
}

impl MachineId {
    /// Stable lowercase identifier used in CSV files.
    pub fn name(self) -> &'static str {
        match self {
            MachineId::Pentium4 => "pentium4",
            MachineId::Core2 => "core2",
            MachineId::CoreI7 => "corei7",
            MachineId::Variant(i) => variant_pool().lock().unwrap()[i as usize],
        }
    }

    /// Marketing name, matching Table 1's header row. Variants have no
    /// marketing name; their stable identifier is used everywhere.
    pub fn display_name(self) -> &'static str {
        match self {
            MachineId::Pentium4 => "Pentium 4",
            MachineId::Core2 => "Core 2",
            MachineId::CoreI7 => "Core i7",
            MachineId::Variant(_) => self.name(),
        }
    }

    /// Interns a design-space variant id, e.g. `core2+rob192+mshr32`.
    ///
    /// The name must be a preset name followed by one or more `+`-joined
    /// axis tokens (`rob`/`mshr`/`dw`/`pf` + digits). Interning is
    /// idempotent: the same name always returns the same id.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseNameError`] when the name is not well-formed.
    pub fn variant(name: &str) -> Result<MachineId, ParseNameError> {
        if !valid_variant_name(name) {
            return Err(ParseNameError {
                kind: "machine",
                unknown: name.to_owned(),
            });
        }
        let mut pool = variant_pool().lock().unwrap();
        let index = match pool.iter().position(|&n| n == name) {
            Some(i) => i,
            None => {
                pool.push(Box::leak(name.to_owned().into_boxed_str()));
                pool.len() - 1
            }
        };
        Ok(MachineId::Variant(
            u32::try_from(index).expect("intern pool outgrew u32"),
        ))
    }

    /// The preset a variant was derived from (`self` for the presets).
    pub fn base(self) -> MachineId {
        match self {
            MachineId::Variant(_) => {
                let base = self.name().split('+').next().expect("split is non-empty");
                base.parse().expect("variant names start with a preset")
            }
            preset => preset,
        }
    }

    /// Whether this id names a design-space variant rather than a preset.
    pub fn is_variant(self) -> bool {
        matches!(self, MachineId::Variant(_))
    }

    /// All three machines, in generation order (the order Fig. 2–6 use).
    pub const ALL: [MachineId; 3] = [MachineId::Pentium4, MachineId::Core2, MachineId::CoreI7];
}

impl Ord for MachineId {
    /// Presets sort in generation order before every variant; variants
    /// sort by name, so the order is stable across processes (the intern
    /// index is insertion order and would not be).
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(m: MachineId) -> u8 {
            match m {
                MachineId::Pentium4 => 0,
                MachineId::Core2 => 1,
                MachineId::CoreI7 => 2,
                MachineId::Variant(_) => 3,
            }
        }
        rank(*self)
            .cmp(&rank(*other))
            .then_with(|| match (self, other) {
                (MachineId::Variant(a), MachineId::Variant(b)) if a == b => Ordering::Equal,
                (MachineId::Variant(_), MachineId::Variant(_)) => self.name().cmp(other.name()),
                _ => Ordering::Equal,
            })
    }
}

impl PartialOrd for MachineId {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

impl FromStr for MachineId {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        MachineId::ALL
            .iter()
            .copied()
            .find(|m| m.name() == s)
            .map_or_else(|| MachineId::variant(s), Ok)
    }
}

/// A completed measurement: one benchmark–input pair run to completion on one
/// machine, with the full counter bank.
///
/// This is the unit of data flowing into model inference (Fig. 1 of the
/// paper): a set of `RunRecord`s for a suite on a machine is exactly the
/// training set for one model.
///
/// # Examples
///
/// ```
/// use pmu::{CounterSet, Event, MachineId, RunRecord, Suite};
///
/// let mut counters = CounterSet::new();
/// counters.add(Event::Cycles, 2_000);
/// counters.add(Event::UopsRetired, 1_000);
/// let record = RunRecord::new("gzip.graphic", Suite::Cpu2000, MachineId::Core2, counters);
/// assert_eq!(record.benchmark(), "gzip.graphic");
/// assert!((record.counters().cpi() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Interned: an `Arc<str>` rather than a `String`, because records are
    /// cloned throughout the serving stack (per-machine filtering, store
    /// snapshots, fitted-group payloads) — a campaign would otherwise
    /// reallocate every benchmark name on every copy. Cloning a record now
    /// bumps a refcount; the name bytes are shared with the workload
    /// profile that produced the run.
    benchmark: Arc<str>,
    suite: Suite,
    machine: MachineId,
    counters: CounterSet,
}

impl RunRecord {
    /// Creates a record from its parts. `benchmark` accepts `&str`,
    /// `String`, or — allocation-free — a shared `Arc<str>`.
    pub fn new(
        benchmark: impl Into<Arc<str>>,
        suite: Suite,
        machine: MachineId,
        counters: CounterSet,
    ) -> Self {
        Self {
            benchmark: benchmark.into(),
            suite,
            machine,
            counters,
        }
    }

    /// The interned benchmark name (share it to build further records or
    /// keys without copying the bytes).
    pub fn benchmark_arc(&self) -> Arc<str> {
        Arc::clone(&self.benchmark)
    }

    /// Benchmark–input pair name, e.g. `"gcc.200"`.
    pub fn benchmark(&self) -> &str {
        &self.benchmark
    }

    /// The suite this benchmark belongs to.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// The machine the run executed on.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// The collected counter bank.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Mutable access to the counter bank (used by the simulator while the
    /// run is in flight).
    pub fn counters_mut(&mut self) -> &mut CounterSet {
        &mut self.counters
    }

    /// Measured cycles per µop — the regression target.
    pub fn cpi(&self) -> f64 {
        self.counters.cpi()
    }
}

impl fmt::Display for RunRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] on {}: CPI={:.3}",
            self.benchmark,
            self.suite,
            self.machine,
            self.cpi()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn sample() -> RunRecord {
        let mut c = CounterSet::new();
        c.add(Event::Cycles, 300);
        c.add(Event::UopsRetired, 100);
        RunRecord::new("mcf", Suite::Cpu2000, MachineId::Pentium4, c)
    }

    #[test]
    fn accessors() {
        let r = sample();
        assert_eq!(r.benchmark(), "mcf");
        assert_eq!(r.suite(), Suite::Cpu2000);
        assert_eq!(r.machine(), MachineId::Pentium4);
        assert!((r.cpi() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn suite_and_machine_parse_round_trip() {
        for s in Suite::ALL {
            assert_eq!(s.name().parse::<Suite>().unwrap(), s);
        }
        for m in MachineId::ALL {
            assert_eq!(m.name().parse::<MachineId>().unwrap(), m);
        }
        assert!("cpu99".parse::<Suite>().is_err());
        assert!("core9".parse::<MachineId>().is_err());
    }

    #[test]
    fn variant_interning_round_trips() {
        let v = MachineId::variant("core2+rob192+mshr32").unwrap();
        assert!(v.is_variant());
        assert_eq!(v.name(), "core2+rob192+mshr32");
        assert_eq!(v.display_name(), "core2+rob192+mshr32");
        assert_eq!(v.base(), MachineId::Core2);
        // Idempotent: every path to the same name is the same id.
        assert_eq!(MachineId::variant("core2+rob192+mshr32").unwrap(), v);
        assert_eq!("core2+rob192+mshr32".parse::<MachineId>().unwrap(), v);
        // A different spelling is a different machine.
        assert_ne!(MachineId::variant("core2+rob192").unwrap(), v);
    }

    #[test]
    fn variant_grammar_is_strict() {
        for bad in [
            "core9",               // unknown preset, no '+'
            "core9+rob192",        // unknown base
            "core2+",              // empty token
            "core2+rob",           // axis without value
            "core2+l2big",         // unknown axis
            "core2+rob19x2",       // trailing garbage in value
            "core2+rob1234567890", // value too long
            "+rob192",             // missing base
            "core2+ROB192",        // wrong case
        ] {
            assert!(bad.parse::<MachineId>().is_err(), "{bad} should not parse");
        }
        for good in ["core2+pf0", "pentium4+dw6", "corei7+rob256+mshr64+dw6+pf0"] {
            assert!(good.parse::<MachineId>().is_ok(), "{good} should parse");
        }
    }

    #[test]
    fn variants_order_by_name_after_presets() {
        let a = MachineId::variant("core2+rob192").unwrap();
        let b = MachineId::variant("core2+mshr32").unwrap();
        // Interned out of alphabetical order on purpose; Ord uses names.
        assert!(b < a, "mshr32 sorts before rob192");
        assert!(MachineId::CoreI7 < b, "presets sort before variants");
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn cloning_a_record_shares_the_interned_name() {
        let name: Arc<str> = "gzip.graphic".into();
        let r = RunRecord::new(
            Arc::clone(&name),
            Suite::Cpu2000,
            MachineId::Core2,
            CounterSet::new(),
        );
        let copy = r.clone();
        // Record copies (store snapshots, group payloads) bump a refcount;
        // the name bytes are never reallocated.
        assert!(Arc::ptr_eq(&copy.benchmark_arc(), &name));
        assert_eq!(copy.benchmark(), "gzip.graphic");
    }

    #[test]
    fn counters_mut_updates_cpi() {
        let mut r = sample();
        r.counters_mut().add(Event::Cycles, 300);
        assert!((r.cpi() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_parts() {
        let text = sample().to_string();
        assert!(text.contains("mcf"));
        assert!(text.contains("cpu2000"));
        assert!(text.contains("Pentium 4"));
    }
}
