//! Live counter sources: performance events sampled in timed batches.
//!
//! The paper's measurement side runs on *real hardware*: perfex/perfmon read
//! the PMU while SPEC runs, and the modeling side consumes the resulting
//! counter dumps. This module is the live half of that workflow. A
//! [`LiveSource`] yields [`RunRecord`] batches one at a time — the streaming
//! analogue of a CSV campaign — and a consumer (the `cpistack watch` CLI,
//! `core`'s streaming pump) pushes each batch into a running service and
//! refits incrementally.
//!
//! Two sources are provided:
//!
//! * [`ReplaySource`] — deterministic and hardware-free: replays a recorded
//!   set of records (from memory or a CSV dump) in fixed-size batches,
//!   optionally for several rounds with a seeded ±1% counter jitter to mimic
//!   run-to-run sampling noise. Every streaming code path is CI-testable
//!   through it, and a recorded live session replays **byte-exact** on the
//!   first round.
//! * `PerfSource` — a Linux `perf_event_open(2)` backend behind the
//!   `perf-events` cargo feature. It samples the calling process's hardware
//!   counters over a configurable window via raw syscalls (no libc
//!   dependency) and maps the generic hardware events onto the subset of
//!   [`Event`]s a stock PMU exposes; unmapped events read zero.
//!
//! # Examples
//!
//! ```
//! use pmu::live::{LiveSource, ReplaySource};
//! use pmu::{CounterSet, Event, MachineId, RunRecord, Suite};
//!
//! let mut c = CounterSet::new();
//! c.add(Event::Cycles, 1_000);
//! c.add(Event::UopsRetired, 800);
//! let records = vec![RunRecord::new("swim", Suite::Cpu2000, MachineId::Core2, c)];
//! let mut source = ReplaySource::new(records.clone()).batch_size(4);
//! assert_eq!(source.next_batch(), Some(records));
//! assert_eq!(source.next_batch(), None);
//! ```

use crate::csv;
use crate::record::RunRecord;

/// A source of counter batches: the streaming analogue of a CSV campaign.
///
/// Implementations yield batches until the stream ends (`None`). The trait is
/// object-safe so consumers can hold a `Box<dyn LiveSource>` and swap a
/// hardware sampler for a deterministic replay in tests.
pub trait LiveSource {
    /// One-line human description of the source (used in watch banners).
    fn describe(&self) -> String;

    /// Produces the next batch of records, or `None` when the stream ends.
    ///
    /// A batch is never empty: sources skip over empty windows rather than
    /// yielding `Some(vec![])`.
    fn next_batch(&mut self) -> Option<Vec<RunRecord>>;
}

/// Deterministic, replayable counter source.
///
/// Replays a fixed record set in `batch_size`-sized batches, optionally for
/// several `rounds`. The first round replays the records **verbatim** (so a
/// recorded live session round-trips byte-exact); subsequent rounds can apply
/// a seeded ±1% multiplicative jitter to every non-zero counter, mimicking
/// the run-to-run noise of a stationary live workload. Everything is a pure
/// function of the inputs — two `ReplaySource`s built the same way yield
/// identical batches.
///
/// # Examples
///
/// ```
/// use pmu::live::{LiveSource, ReplaySource};
/// use pmu::{CounterSet, Event, MachineId, RunRecord, Suite};
///
/// let mut c = CounterSet::new();
/// c.add(Event::Cycles, 500);
/// let records = vec![
///     RunRecord::new("a", Suite::Cpu2000, MachineId::Core2, c.clone()),
///     RunRecord::new("b", Suite::Cpu2000, MachineId::Core2, c.clone()),
///     RunRecord::new("c", Suite::Cpu2000, MachineId::Core2, c),
/// ];
/// let mut source = ReplaySource::new(records).batch_size(2).rounds(2);
/// let mut batches = 0;
/// while let Some(batch) = source.next_batch() {
///     assert!(!batch.is_empty());
///     batches += 1;
/// }
/// assert_eq!(batches, 4); // ceil(3/2) batches per round, two rounds
/// ```
#[derive(Debug, Clone)]
pub struct ReplaySource {
    records: Vec<RunRecord>,
    batch_size: usize,
    rounds: usize,
    jitter: Option<u64>,
    round: usize,
    cursor: usize,
}

impl ReplaySource {
    /// Creates a replay over `records` with a batch size of 8 and one round.
    pub fn new(records: Vec<RunRecord>) -> Self {
        ReplaySource {
            records,
            batch_size: 8,
            rounds: 1,
            jitter: None,
            round: 0,
            cursor: 0,
        }
    }

    /// Creates a replay from a CSV dump produced by [`csv::to_csv`] (or a
    /// recorded watch session).
    ///
    /// # Errors
    ///
    /// Returns [`csv::ParseCsvError`] when the text is not a valid record
    /// dump.
    pub fn from_csv(text: &str) -> Result<Self, csv::ParseCsvError> {
        Ok(ReplaySource::new(csv::from_csv(text)?))
    }

    /// Sets the number of records per batch (clamped to at least 1).
    #[must_use]
    pub fn batch_size(mut self, n: usize) -> Self {
        self.batch_size = n.max(1);
        self
    }

    /// Sets how many passes over the record set to replay (clamped to at
    /// least 1).
    #[must_use]
    pub fn rounds(mut self, n: usize) -> Self {
        self.rounds = n.max(1);
        self
    }

    /// Enables seeded ±1% counter jitter on rounds after the first.
    ///
    /// Round 0 always replays verbatim, so record-and-replay stays
    /// byte-exact; later rounds perturb each non-zero counter by a
    /// deterministic factor in `[0.99, 1.01)` keyed on
    /// `(seed, round, record, event)`.
    #[must_use]
    pub fn jitter(mut self, seed: u64) -> Self {
        self.jitter = Some(seed);
        self
    }

    /// Number of records in one replay round.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the replay holds no records (and will yield no batches).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total batches this source will yield across all rounds.
    pub fn total_batches(&self) -> usize {
        if self.records.is_empty() {
            0
        } else {
            self.records.len().div_ceil(self.batch_size) * self.rounds
        }
    }

    fn jittered(&self, record: &RunRecord, index: usize) -> RunRecord {
        let seed = match self.jitter {
            // Round 0 is always verbatim so recorded sessions replay exactly.
            Some(seed) if self.round > 0 => seed,
            _ => return record.clone(),
        };
        let mut out = record.clone();
        for event in crate::event::Event::ALL {
            let v = out.counters().get(event);
            if v == 0 {
                continue;
            }
            let h = mix64(
                seed ^ ((self.round as u64) << 48) ^ ((index as u64) << 24) ^ event.index() as u64,
            );
            // 53 uniform bits -> [0, 1), mapped to a factor in [0.99, 1.01).
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            let factor = 0.99 + 0.02 * unit;
            out.counters_mut()
                .set(event, ((v as f64 * factor).round() as u64).max(1));
        }
        out
    }
}

impl LiveSource for ReplaySource {
    fn describe(&self) -> String {
        format!(
            "replay: {} records x {} round(s), batch {}{}",
            self.records.len(),
            self.rounds,
            self.batch_size,
            match self.jitter {
                Some(seed) => format!(", jitter seed {seed}"),
                None => String::new(),
            }
        )
    }

    fn next_batch(&mut self) -> Option<Vec<RunRecord>> {
        if self.records.is_empty() || self.round >= self.rounds {
            return None;
        }
        let end = self
            .cursor
            .saturating_add(self.batch_size)
            .min(self.records.len());
        let batch: Vec<RunRecord> = (self.cursor..end)
            .map(|i| self.jittered(&self.records[i], i))
            .collect();
        self.cursor = end;
        if self.cursor >= self.records.len() {
            self.cursor = 0;
            self.round += 1;
        }
        Some(batch)
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer used to derive
/// per-(round, record, event) jitter without carrying RNG state.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(all(feature = "perf-events", target_os = "linux"))]
pub use perf::PerfSource;

/// `perf_event_open(2)` backend: samples the calling process's hardware
/// counters in timed windows. Linux-only, behind the `perf-events` feature.
#[cfg(all(feature = "perf-events", target_os = "linux"))]
pub mod perf {
    use super::LiveSource;
    use crate::counters::CounterSet;
    use crate::event::Event;
    use crate::record::{MachineId, RunRecord, Suite};
    use std::io;

    /// `PERF_ATTR_SIZE_VER0`: the original 64-byte `perf_event_attr`, enough
    /// for plain hardware counters on every kernel since 2.6.32.
    const PERF_ATTR_SIZE_VER0: u32 = 64;
    /// `PERF_TYPE_HARDWARE`.
    const PERF_TYPE_HARDWARE: u32 = 0;

    /// The leading fields of `perf_event_attr`, laid out exactly as the
    /// kernel's VER0 struct (the `size` field tells the kernel to ignore
    /// everything newer). Flag bits live in `flags`; all zero means "start
    /// enabled, count this task only".
    #[repr(C)]
    struct PerfEventAttr {
        type_: u32,
        size: u32,
        config: u64,
        sample_period: u64,
        sample_type: u64,
        read_format: u64,
        flags: u64,
        wakeup_events: u32,
        bp_type: u32,
        config1: u64,
    }

    /// Maps a model [`Event`] onto a generic `PERF_COUNT_HW_*` config.
    ///
    /// Stock PMUs expose only a subset of the model's event set through the
    /// generic interface; unmapped events read zero in the produced records.
    /// Micro-ops are approximated by retired instructions (exact only for
    /// one-µop ISAs; a real deployment would program the machine-specific
    /// uops_retired event via `PERF_TYPE_RAW`).
    fn hw_config(event: Event) -> Option<u64> {
        match event {
            Event::Cycles => Some(0),            // PERF_COUNT_HW_CPU_CYCLES
            Event::UopsRetired => Some(1),       // approximated by instructions
            Event::InstrRetired => Some(1),      // PERF_COUNT_HW_INSTRUCTIONS
            Event::LlcDataMisses => Some(3),     // PERF_COUNT_HW_CACHE_MISSES
            Event::Branches => Some(4),          // PERF_COUNT_HW_BRANCH_INSTRUCTIONS
            Event::BranchMispredicts => Some(5), // PERF_COUNT_HW_BRANCH_MISSES
            _ => None,
        }
    }

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const PERF_EVENT_OPEN: u64 = 298;
        pub const READ: u64 = 0;
        pub const CLOSE: u64 = 3;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const PERF_EVENT_OPEN: u64 = 241;
        pub const READ: u64 = 63;
        pub const CLOSE: u64 = 57;
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall5(n: u64, a: u64, b: u64, c: u64, d: u64, e: u64) -> i64 {
        let ret: i64;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n as i64 => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall5(n: u64, a: u64, b: u64, c: u64, d: u64, e: u64) -> i64 {
        let ret: i64;
        std::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            options(nostack)
        );
        ret
    }

    /// Unsupported architectures fail at runtime with `ENOSYS` rather than
    /// failing the build: the feature gate still compiles everywhere.
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    unsafe fn syscall5(_n: u64, _a: u64, _b: u64, _c: u64, _d: u64, _e: u64) -> i64 {
        -38 // ENOSYS
    }

    fn check(ret: i64) -> io::Result<i64> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    fn sys_perf_event_open(attr: &PerfEventAttr, pid: i64, cpu: i64) -> io::Result<i32> {
        let ret = unsafe {
            syscall5(
                nr::PERF_EVENT_OPEN,
                attr as *const PerfEventAttr as u64,
                pid as u64,
                cpu as u64,
                (-1i64) as u64, // group_fd: no grouping
                0,              // flags
            )
        };
        Ok(check(ret)? as i32)
    }

    fn sys_read_u64(fd: i32) -> io::Result<u64> {
        let mut buf = 0u64;
        let ret = unsafe { syscall5(nr::READ, fd as u64, &mut buf as *mut u64 as u64, 8, 0, 0) };
        if check(ret)? != 8 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "short counter read",
            ));
        }
        Ok(buf)
    }

    fn sys_close(fd: i32) {
        unsafe {
            syscall5(nr::CLOSE, fd as u64, 0, 0, 0, 0);
        }
    }

    /// Live hardware counters for the calling process.
    ///
    /// Each `next_batch` reads the counters, sleeps for the sampling window,
    /// reads them again, and yields one [`RunRecord`] holding the deltas.
    /// Counter file descriptors are opened once and closed on drop.
    pub struct PerfSource {
        benchmark: String,
        suite: Suite,
        machine: MachineId,
        window_ms: u64,
        batches: usize,
        emitted: usize,
        fds: Vec<(Event, i32)>,
    }

    impl PerfSource {
        /// Opens hardware counters for the calling process.
        ///
        /// # Errors
        ///
        /// Returns the OS error when no generic hardware event can be opened
        /// — typically `EACCES` under a restrictive
        /// `kernel.perf_event_paranoid`, or `ENOSYS` on unsupported
        /// architectures.
        pub fn open(benchmark: &str, suite: Suite, machine: MachineId) -> io::Result<Self> {
            let mut fds = Vec::new();
            let mut first_err = None;
            for event in Event::ALL {
                let Some(config) = hw_config(event) else {
                    continue;
                };
                let attr = PerfEventAttr {
                    type_: PERF_TYPE_HARDWARE,
                    size: PERF_ATTR_SIZE_VER0,
                    config,
                    sample_period: 0,
                    sample_type: 0,
                    read_format: 0,
                    flags: 0,
                    wakeup_events: 0,
                    bp_type: 0,
                    config1: 0,
                };
                // pid 0 = this task, cpu -1 = any CPU it runs on.
                match sys_perf_event_open(&attr, 0, -1) {
                    Ok(fd) => fds.push((event, fd)),
                    Err(e) => first_err = first_err.or(Some(e)),
                }
            }
            if fds.is_empty() {
                return Err(first_err.unwrap_or_else(|| {
                    io::Error::new(io::ErrorKind::Unsupported, "no hardware events")
                }));
            }
            Ok(PerfSource {
                benchmark: benchmark.to_owned(),
                suite,
                machine,
                window_ms: 100,
                batches: 1,
                emitted: 0,
                fds,
            })
        }

        /// Sets the sampling window per batch in milliseconds.
        #[must_use]
        pub fn window_ms(mut self, ms: u64) -> Self {
            self.window_ms = ms;
            self
        }

        /// Sets how many batches to emit before the stream ends.
        #[must_use]
        pub fn batches(mut self, n: usize) -> Self {
            self.batches = n.max(1);
            self
        }

        fn read_all(&self) -> io::Result<Vec<u64>> {
            self.fds.iter().map(|&(_, fd)| sys_read_u64(fd)).collect()
        }
    }

    impl Drop for PerfSource {
        fn drop(&mut self) {
            for &(_, fd) in &self.fds {
                sys_close(fd);
            }
        }
    }

    impl LiveSource for PerfSource {
        fn describe(&self) -> String {
            format!(
                "perf: {} hardware events, {} ms window, {} batch(es)",
                self.fds.len(),
                self.window_ms,
                self.batches
            )
        }

        fn next_batch(&mut self) -> Option<Vec<RunRecord>> {
            if self.emitted >= self.batches {
                return None;
            }
            let before = self.read_all().ok()?;
            std::thread::sleep(std::time::Duration::from_millis(self.window_ms));
            let after = self.read_all().ok()?;
            let mut counters = CounterSet::new();
            for ((&(event, _), b), a) in self.fds.iter().zip(&before).zip(&after) {
                counters.set(event, a.saturating_sub(*b));
            }
            self.emitted += 1;
            Some(vec![RunRecord::new(
                self.benchmark.as_str(),
                self.suite,
                self.machine,
                counters,
            )])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterSet;
    use crate::event::Event;
    use crate::record::{MachineId, Suite};

    fn records(n: usize) -> Vec<RunRecord> {
        (0..n)
            .map(|i| {
                let mut c = CounterSet::new();
                c.set(Event::Cycles, 1_000 + i as u64 * 17);
                c.set(Event::UopsRetired, 800 + i as u64 * 13);
                c.set(Event::L1DataMisses, 5 + i as u64);
                RunRecord::new(
                    format!("bench.{i}").as_str(),
                    Suite::Cpu2000,
                    MachineId::Core2,
                    c,
                )
            })
            .collect()
    }

    #[test]
    fn batches_partition_the_record_set() {
        let recs = records(7);
        let mut src = ReplaySource::new(recs.clone()).batch_size(3);
        let mut seen = Vec::new();
        while let Some(batch) = src.next_batch() {
            assert!(!batch.is_empty() && batch.len() <= 3);
            seen.extend(batch);
        }
        assert_eq!(seen, recs);
    }

    #[test]
    fn rounds_repeat_without_jitter() {
        let recs = records(4);
        let mut src = ReplaySource::new(recs.clone()).batch_size(2).rounds(3);
        assert_eq!(src.total_batches(), 6);
        let mut seen = Vec::new();
        while let Some(batch) = src.next_batch() {
            seen.extend(batch);
        }
        assert_eq!(seen.len(), 12);
        assert_eq!(&seen[..4], &recs[..]);
        assert_eq!(&seen[4..8], &recs[..]);
        assert_eq!(&seen[8..], &recs[..]);
    }

    #[test]
    fn jitter_is_deterministic_and_first_round_exact() {
        let recs = records(3);
        let run = |seed| {
            let mut src = ReplaySource::new(recs.clone())
                .batch_size(2)
                .rounds(2)
                .jitter(seed);
            let mut seen = Vec::new();
            while let Some(batch) = src.next_batch() {
                seen.extend(batch);
            }
            seen
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must replay identically");
        // Round 0 is verbatim.
        assert_eq!(&a[..3], &recs[..]);
        // Round 1 is perturbed but within ±1%, never zeroing a live counter.
        let mut changed = false;
        for (orig, jit) in recs.iter().zip(&a[3..]) {
            assert_eq!(orig.benchmark(), jit.benchmark());
            for e in Event::ALL {
                let (o, j) = (orig.counters().get(e), jit.counters().get(e));
                if o == 0 {
                    assert_eq!(j, 0);
                    continue;
                }
                assert!(j >= 1);
                let rel = (j as f64 - o as f64).abs() / o as f64;
                assert!(rel <= 0.011, "jitter {rel} out of bounds for {e}");
                changed |= o != j;
            }
        }
        assert!(changed, "jitter should perturb at least one counter");
        let c = run(43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn csv_round_trip_replays_byte_exact() {
        let recs = records(5);
        let text = crate::csv::to_csv(&recs);
        let mut src = ReplaySource::from_csv(&text).unwrap().batch_size(2);
        let mut seen = Vec::new();
        while let Some(batch) = src.next_batch() {
            seen.extend(batch);
        }
        assert_eq!(seen, recs);
        assert_eq!(crate::csv::to_csv(&seen), text);
    }

    #[test]
    fn empty_replay_yields_nothing() {
        let mut src = ReplaySource::new(Vec::new());
        assert!(src.is_empty());
        assert_eq!(src.total_batches(), 0);
        assert_eq!(src.next_batch(), None);
    }

    #[test]
    fn describe_names_the_shape() {
        let src = ReplaySource::new(records(2))
            .batch_size(4)
            .rounds(3)
            .jitter(9);
        let d = src.describe();
        assert!(d.contains("2 records") && d.contains("3 round(s)") && d.contains("seed 9"));
    }
}
