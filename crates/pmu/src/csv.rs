//! CSV round-tripping for [`RunRecord`]s.
//!
//! The paper's workflow separates measurement (running SPEC with perfex /
//! perfmon, hours of machine time) from modeling (seconds of regression).
//! We keep the same separation: experiment binaries can dump all simulator
//! measurements to a CSV file and the modeling side can reload them without
//! re-simulating. The format is a plain header + rows, no quoting needed
//! because benchmark names contain no commas.

use crate::counters::CounterSet;
use crate::event::Event;
use crate::record::{MachineId, RunRecord, Suite};
use std::fmt::Write as _;

/// Error produced when parsing a CSV dump of run records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseCsvError {
    /// The header row is missing or does not match the expected columns.
    BadHeader(String),
    /// A data row has the wrong number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Number of fields found.
        found: usize,
        /// Number of fields expected.
        expected: usize,
    },
    /// A field failed to parse as its expected type.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: String,
        /// Offending text.
        text: String,
    },
}

impl std::fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseCsvError::BadHeader(h) => {
                // Like the row errors, name the line and say what a valid
                // file looks like — a truncated `{}` placeholder is the
                // most common way to hit this.
                write!(
                    f,
                    "line 1: unexpected csv header `{h}` (expected `{}`)",
                    header()
                )
            }
            ParseCsvError::FieldCount {
                line,
                found,
                expected,
            } => write!(f, "line {line}: expected {expected} fields, found {found}"),
            ParseCsvError::BadField { line, column, text } => {
                write!(
                    f,
                    "line {line}: cannot parse `{text}` for column `{column}`"
                )
            }
        }
    }
}

impl std::error::Error for ParseCsvError {}

/// The canonical header: identification columns followed by every event.
///
/// Public so streaming writers (`cpistack watch --record`) can emit the
/// header once and then append rows from [`to_csv_rows`] batch by batch.
pub fn header() -> String {
    let mut h = String::from("benchmark,suite,machine");
    for e in Event::ALL {
        let _ = write!(h, ",{}", e.name());
    }
    h
}

/// Serializes records to CSV rows only (no header), one `\n`-terminated row
/// per record — the append half of record-and-replay. A file built as
/// [`header`] + `"\n"` + concatenated [`to_csv_rows`] batches parses back
/// with [`from_csv`] byte-exact.
///
/// # Examples
///
/// ```
/// use pmu::{CounterSet, Event, MachineId, RunRecord, Suite};
/// use pmu::csv::{from_csv, header, to_csv_rows};
///
/// let mut c = CounterSet::new();
/// c.add(Event::Cycles, 7);
/// let batch = vec![RunRecord::new("mcf", Suite::Cpu2006, MachineId::Core2, c)];
/// let mut file = header();
/// file.push('\n');
/// file.push_str(&to_csv_rows(&batch)); // repeat per streamed batch
/// assert_eq!(from_csv(&file).unwrap(), batch);
/// ```
pub fn to_csv_rows(records: &[RunRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = write!(
            out,
            "{},{},{}",
            r.benchmark(),
            r.suite().name(),
            r.machine().name()
        );
        for e in Event::ALL {
            let _ = write!(out, ",{}", r.counters().get(e));
        }
        out.push('\n');
    }
    out
}

/// Parses a single CSV data row (no header) into a [`RunRecord`].
///
/// Used by the streaming protocol (`stream rec <row>`), where each record
/// arrives as one row without re-sending the header.
///
/// # Errors
///
/// Returns [`ParseCsvError`] on arity or field errors, or `BadHeader` when
/// the row is blank.
pub fn from_csv_row(row: &str) -> Result<RunRecord, ParseCsvError> {
    if row.trim().is_empty() {
        return Err(ParseCsvError::BadHeader(String::new()));
    }
    let text = format!("{}\n{}", header(), row.trim());
    let mut records = from_csv(&text)?;
    records
        .pop()
        .ok_or_else(|| ParseCsvError::BadHeader(String::new()))
}

/// Serializes records to CSV text (header + one row per record).
///
/// # Examples
///
/// ```
/// use pmu::{CounterSet, Event, MachineId, RunRecord, Suite};
/// use pmu::csv::{to_csv, from_csv};
///
/// let mut c = CounterSet::new();
/// c.add(Event::Cycles, 10);
/// c.add(Event::UopsRetired, 4);
/// let records = vec![RunRecord::new("art.110", Suite::Cpu2000, MachineId::CoreI7, c)];
/// let text = to_csv(&records);
/// let back = from_csv(&text).unwrap();
/// assert_eq!(back, records);
/// ```
pub fn to_csv(records: &[RunRecord]) -> String {
    let mut out = header();
    out.push('\n');
    out.push_str(&to_csv_rows(records));
    out
}

/// Parses CSV text produced by [`to_csv`].
///
/// # Errors
///
/// Returns [`ParseCsvError`] if the header is unrecognized, a row has the
/// wrong arity, or any field fails to parse. Blank lines are skipped.
pub fn from_csv(text: &str) -> Result<Vec<RunRecord>, ParseCsvError> {
    let expected_header = header();
    let mut lines = text.lines().enumerate();
    let (_, first) = lines
        .next()
        .ok_or_else(|| ParseCsvError::BadHeader(String::new()))?;
    if first.trim() != expected_header {
        return Err(ParseCsvError::BadHeader(first.to_owned()));
    }
    let expected_fields = 3 + Event::COUNT;
    let mut records = Vec::new();
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != expected_fields {
            return Err(ParseCsvError::FieldCount {
                line: lineno,
                found: fields.len(),
                expected: expected_fields,
            });
        }
        let suite: Suite = fields[1].parse().map_err(|_| ParseCsvError::BadField {
            line: lineno,
            column: "suite".into(),
            text: fields[1].into(),
        })?;
        let machine: MachineId = fields[2].parse().map_err(|_| ParseCsvError::BadField {
            line: lineno,
            column: "machine".into(),
            text: fields[2].into(),
        })?;
        let mut counters = CounterSet::new();
        for (e, raw) in Event::ALL.iter().zip(&fields[3..]) {
            let v: u64 = raw.parse().map_err(|_| ParseCsvError::BadField {
                line: lineno,
                column: e.name().into(),
                text: (*raw).into(),
            })?;
            counters.set(*e, v);
        }
        records.push(RunRecord::new(fields[0], suite, machine, counters));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<RunRecord> {
        let mut c1 = CounterSet::new();
        c1.add(Event::Cycles, 123);
        c1.add(Event::UopsRetired, 45);
        c1.add(Event::LlcDataMisses, 6);
        let mut c2 = CounterSet::new();
        c2.add(Event::Cycles, 999);
        c2.add(Event::UopsRetired, 500);
        vec![
            RunRecord::new("swim", Suite::Cpu2000, MachineId::Pentium4, c1),
            RunRecord::new("lbm", Suite::Cpu2006, MachineId::Core2, c2),
        ]
    }

    #[test]
    fn round_trip() {
        let records = sample_records();
        let text = to_csv(&records);
        assert_eq!(from_csv(&text).unwrap(), records);
    }

    #[test]
    fn rejects_bad_header() {
        let err = from_csv("nope\n").unwrap_err();
        assert!(matches!(err, ParseCsvError::BadHeader(_)));
        let msg = err.to_string();
        assert!(msg.contains("line 1") && msg.contains("`nope`"));
        assert!(
            msg.contains("expected `benchmark,suite,machine"),
            "the fix is in the message: {msg}"
        );
    }

    #[test]
    fn rejects_short_rows() {
        let text = format!("{}\nfoo,cpu2000,core2,1,2\n", super::header());
        assert!(matches!(
            from_csv(&text),
            Err(ParseCsvError::FieldCount { .. })
        ));
    }

    #[test]
    fn rejects_bad_numbers() {
        let records = sample_records();
        let text = to_csv(&records).replace("123", "xyz");
        assert!(matches!(
            from_csv(&text),
            Err(ParseCsvError::BadField { .. })
        ));
    }

    #[test]
    fn skips_blank_lines() {
        let records = sample_records();
        let mut text = to_csv(&records);
        text.push('\n');
        assert_eq!(from_csv(&text).unwrap(), records);
    }

    #[test]
    fn appended_batches_round_trip_byte_exact() {
        let records = sample_records();
        // Streamed: header once, then per-batch appends of one row each.
        let mut file = header();
        file.push('\n');
        for r in &records {
            file.push_str(&to_csv_rows(std::slice::from_ref(r)));
        }
        assert_eq!(file, to_csv(&records));
        assert_eq!(from_csv(&file).unwrap(), records);
    }

    #[test]
    fn single_rows_parse_without_a_header() {
        let records = sample_records();
        for r in &records {
            let row = to_csv_rows(std::slice::from_ref(r));
            assert_eq!(&from_csv_row(row.trim_end()).unwrap(), r);
        }
        assert!(from_csv_row("").is_err());
        assert!(from_csv_row("too,short").is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ParseCsvError::BadField {
            line: 7,
            column: "cycles".into(),
            text: "NaN".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("line 7") && msg.contains("cycles") && msg.contains("NaN"));
    }
}
