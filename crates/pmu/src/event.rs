//! The closed set of performance events the model consumes.
//!
//! These mirror the counters collected in the paper (§4): cycles, committed
//! micro-operations, committed x86 macro-instructions, branch mispredictions,
//! L1 I-cache misses, L2 misses, L3 misses (Core i7 only), D-TLB and I-TLB
//! misses, and floating-point operation counts. We additionally split L2/L3
//! misses by instruction/data side — real PMUs expose that split too (e.g.
//! `L2_RQSTS.IFETCH_MISS` vs `L2_RQSTS.LD_MISS` on Intel machines) and the
//! model formula (Eq. 1) needs it.

use std::fmt;
use std::str::FromStr;

/// A countable hardware performance event.
///
/// The set is closed: the model of Eyerman et al. needs exactly these inputs,
/// and the simulated PMU produces exactly these. `Event` is a dense index
/// (`0..Event::COUNT`) so a [`CounterSet`](crate::CounterSet) can be a flat
/// array.
///
/// # Examples
///
/// ```
/// use pmu::Event;
///
/// assert_eq!(Event::Cycles.name(), "cycles");
/// assert_eq!("l2d_misses".parse::<Event>().unwrap(), Event::L2DataMisses);
/// assert_eq!(Event::ALL.len(), Event::COUNT);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Event {
    /// Elapsed core clock cycles for the measured region.
    Cycles,
    /// Committed (retired) micro-operations. `N` in Eq. 1.
    UopsRetired,
    /// Committed x86 macro-instructions (CISC instructions before cracking).
    InstrRetired,
    /// Committed mispredicted branches. `m_br` in Eq. 1.
    BranchMispredicts,
    /// Committed branches (all, predicted correctly or not).
    Branches,
    /// L1 instruction-cache misses (fetches that went to L2). `m_L1I$`.
    L1InstrMisses,
    /// Instruction fetches that also missed the last on-chip level and went
    /// to memory. `m_L2I$` in Eq. 1 (for the Core i7 this means L3 I misses).
    LlcInstrMisses,
    /// I-TLB misses. `m_ITLB`.
    ItlbMisses,
    /// L1 data-cache load misses that hit in the L2 (`mpµ_DL1` in Eq. 2/5).
    L1DataMisses,
    /// L2 data load misses. On two-level machines this equals
    /// [`Event::LlcDataMisses`]; on the Core i7 these are fills from L3.
    L2DataMisses,
    /// Load misses in the last on-chip cache level that go to DRAM.
    /// `m_L2D$` in Eq. 1 / `mpµ_DL2` in Eq. 3 (the paper's "L2" is the LLC).
    LlcDataMisses,
    /// D-TLB misses. `m_DTLB`.
    DtlbMisses,
    /// Committed floating-point micro-operations (`fp` fraction in Eq. 2/5).
    FpOps,
    /// Committed load micro-operations.
    Loads,
    /// Committed store micro-operations.
    Stores,
}

impl Event {
    /// Number of distinct events.
    pub const COUNT: usize = 15;

    /// Every event, in dense-index order.
    pub const ALL: [Event; Event::COUNT] = [
        Event::Cycles,
        Event::UopsRetired,
        Event::InstrRetired,
        Event::BranchMispredicts,
        Event::Branches,
        Event::L1InstrMisses,
        Event::LlcInstrMisses,
        Event::ItlbMisses,
        Event::L1DataMisses,
        Event::L2DataMisses,
        Event::LlcDataMisses,
        Event::DtlbMisses,
        Event::FpOps,
        Event::Loads,
        Event::Stores,
    ];

    /// Dense index of this event, in `0..Event::COUNT`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The stable, lowercase mnemonic used in CSV headers.
    pub fn name(self) -> &'static str {
        match self {
            Event::Cycles => "cycles",
            Event::UopsRetired => "uops",
            Event::InstrRetired => "instructions",
            Event::BranchMispredicts => "br_mispredicts",
            Event::Branches => "branches",
            Event::L1InstrMisses => "l1i_misses",
            Event::LlcInstrMisses => "llc_i_misses",
            Event::ItlbMisses => "itlb_misses",
            Event::L1DataMisses => "l1d_misses",
            Event::L2DataMisses => "l2d_misses",
            Event::LlcDataMisses => "llc_d_misses",
            Event::DtlbMisses => "dtlb_misses",
            Event::FpOps => "fp_ops",
            Event::Loads => "loads",
            Event::Stores => "stores",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown event mnemonic.
///
/// # Examples
///
/// ```
/// use pmu::event::ParseEventError;
/// let err: ParseEventError = "not_an_event".parse::<pmu::Event>().unwrap_err();
/// assert!(err.to_string().contains("not_an_event"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEventError {
    unknown: String,
}

impl fmt::Display for ParseEventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown performance event mnemonic `{}`", self.unknown)
    }
}

impl std::error::Error for ParseEventError {}

impl FromStr for Event {
    type Err = ParseEventError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Event::ALL
            .iter()
            .copied()
            .find(|e| e.name() == s)
            .ok_or_else(|| ParseEventError {
                unknown: s.to_owned(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, e) in Event::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Event::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Event::COUNT);
    }

    #[test]
    fn parse_round_trips() {
        for e in Event::ALL {
            assert_eq!(e.name().parse::<Event>().unwrap(), e);
        }
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!("bogus".parse::<Event>().is_err());
        let msg = "bogus".parse::<Event>().unwrap_err().to_string();
        assert!(msg.contains("bogus"));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Event::LlcDataMisses.to_string(), "llc_d_misses");
    }
}
