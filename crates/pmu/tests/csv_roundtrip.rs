//! Property-based tests: the counters CSV codec round-trips any record
//! set exactly — every event count, machine id and suite tag — and
//! rejects malformed rows instead of guessing.

use pmu::csv::{from_csv, to_csv, ParseCsvError};
use pmu::{CounterSet, Event, MachineId, RunRecord, Suite};
use proptest::prelude::*;

/// Strategy: a valid benchmark name (no commas or newlines — the format's
/// documented contract).
fn arb_name() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(0usize..36, 1..12),
        0usize..10,
        0usize..3,
    )
        .prop_map(|(chars, input, dots)| {
            let alphabet: Vec<char> = ('a'..='z').chain('0'..='9').collect();
            let mut name: String = chars.iter().map(|&c| alphabet[c]).collect();
            for _ in 0..dots {
                name.push('.');
            }
            name.push_str(&input.to_string());
            name
        })
}

/// Strategy: one run record with arbitrary identity and counter values
/// (including zero and near-u64::MAX counts).
fn arb_record() -> impl Strategy<Value = RunRecord> {
    (
        arb_name(),
        0usize..2,
        0usize..3,
        prop::collection::vec(0u64..u64::MAX / 2, Event::COUNT),
    )
        .prop_map(|(name, suite, machine, counts)| {
            let suite = Suite::ALL[suite];
            let machine = MachineId::ALL[machine];
            let mut counters = CounterSet::new();
            for (event, value) in Event::ALL.iter().zip(counts) {
                counters.set(*event, value);
            }
            RunRecord::new(name, suite, machine, counters)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Export → import is the identity on any record set: benchmark
    /// names, suite tags, machine ids and all event counts survive.
    #[test]
    fn csv_round_trips_exactly(
        records in prop::collection::vec(arb_record(), 0..20),
    ) {
        let text = to_csv(&records);
        let back = from_csv(&text).unwrap();
        prop_assert_eq!(back, records);
    }

    /// Truncating any data row's fields is rejected with a field-count
    /// error naming the right line, never silently padded.
    #[test]
    fn truncated_rows_are_rejected(
        records in prop::collection::vec(arb_record(), 1..8),
        drop in 1usize..4,
        pick in 0usize..8,
    ) {
        let pick = pick % records.len();
        let text = to_csv(&records);
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let row = pick + 1; // skip the header
        let fields: Vec<&str> = lines[row].split(',').collect();
        let kept = fields.len() - drop;
        lines[row] = fields[..kept].join(",");
        let err = from_csv(&lines.join("\n")).unwrap_err();
        match err {
            ParseCsvError::FieldCount { line, found, expected } => {
                prop_assert_eq!(line, row + 1);
                prop_assert_eq!(found, kept);
                prop_assert_eq!(expected, 3 + Event::COUNT);
            }
            other => return Err(TestCaseError::fail(format!(
                "expected FieldCount, got {other:?}"
            ))),
        }
    }

    /// Corrupting any numeric field is rejected with a typed error naming
    /// the offending column.
    #[test]
    fn corrupt_counts_are_rejected(
        records in prop::collection::vec(arb_record(), 1..8),
        pick in 0usize..8,
        column in 0usize..64,
    ) {
        let pick = pick % records.len();
        let column = column % Event::COUNT;
        let text = to_csv(&records);
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let row = pick + 1;
        let mut fields: Vec<String> =
            lines[row].split(',').map(str::to_owned).collect();
        fields[3 + column] = "not-a-number".into();
        lines[row] = fields.join(",");
        let err = from_csv(&lines.join("\n")).unwrap_err();
        match err {
            ParseCsvError::BadField { line, column: name, text } => {
                prop_assert_eq!(line, row + 1);
                prop_assert_eq!(name, Event::ALL[column].name());
                prop_assert_eq!(text, "not-a-number");
            }
            other => return Err(TestCaseError::fail(format!(
                "expected BadField, got {other:?}"
            ))),
        }
    }
}
