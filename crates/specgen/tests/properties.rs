//! Property-based tests: every valid profile yields a well-formed trace.

use pmu::Suite;
use proptest::prelude::*;
use specgen::{AccessPattern, Cracking, MemRegion, TraceGenerator, WorkloadProfile};

/// Strategy: a random but always-valid workload profile.
fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        (
            0.05f64..0.35, // load
            0.02f64..0.15, // store
            0.01f64..0.20, // branch
            0.0f64..0.40,  // fp
            1.5f64..14.0,  // dep distance
            0.0f64..0.9,   // fp chain
        ),
        (
            4u64..512,    // code KiB
            0.5f64..0.99, // hot frac
            0.05f64..0.9, // hot size frac
            0.0f64..0.25, // rnd branches
            0.5f64..0.95, // bias
            0.0f64..0.4,  // patterned
            1.0f64..2.5,  // expansion
            1u64..30_000, // region KiB
            0u8..4,       // pattern selector
        ),
    )
        .prop_map(
            |(
                (load, store, branch, fp, dep, chain),
                (code, hot, hotsz, rnd, bias, pat, exp, kib, psel),
            )| {
                let pattern = match psel {
                    0 => AccessPattern::Sequential { stride: 8 },
                    1 => AccessPattern::Sequential { stride: 64 },
                    2 => AccessPattern::Random,
                    _ => AccessPattern::PointerChase,
                };
                WorkloadProfile::builder("prop", Suite::Cpu2000)
                    .mem_mix(load, store)
                    .branches(branch)
                    .fp(fp * (1.0 - load - store - branch).clamp(0.0, 1.0))
                    .int_muldiv(0.005, 0.0005)
                    .ilp(dep, chain)
                    .code(code, hot, hotsz)
                    .branch_behaviour(rnd, bias, pat)
                    .expansion(exp)
                    .regions(vec![
                        MemRegion::kib(16, 0.5, AccessPattern::Sequential { stride: 8 }),
                        MemRegion::kib(kib, 0.5, pattern),
                    ])
                    .build()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The generator never emits malformed µops: dependence distances stay
    /// within the trace prefix, memory ops carry addresses, branches carry
    /// outcomes, and addresses stay inside their declared regions.
    #[test]
    fn traces_are_well_formed(profile in arb_profile(), seed in 0u64..1000) {
        let ops: Vec<_> = TraceGenerator::new(&profile, Cracking::default(), seed)
            .take(3_000)
            .collect();
        prop_assert_eq!(ops.len(), 3_000);
        for (i, op) in ops.iter().enumerate() {
            if let Some(d) = op.dep1 {
                prop_assert!((d.get() as usize) <= i.max(1));
            }
            if let Some(d) = op.dep2 {
                prop_assert!((d.get() as usize) <= i.max(1));
            }
            if op.kind.is_mem() && op.macro_first {
                prop_assert!(op.addr.is_some());
            }
            if op.kind == specgen::UopKind::Branch && op.macro_first {
                prop_assert!(op.branch.is_some());
            }
        }
    }

    /// Determinism: the same (profile, cracking, seed) triple regenerates
    /// the identical stream.
    #[test]
    fn traces_are_deterministic(profile in arb_profile(), seed in 0u64..1000) {
        let a: Vec<_> = TraceGenerator::new(&profile, Cracking::new(1.3), seed)
            .take(500)
            .collect();
        let b: Vec<_> = TraceGenerator::new(&profile, Cracking::new(1.3), seed)
            .take(500)
            .collect();
        prop_assert_eq!(a, b);
    }

    /// Macro-instruction counts scale inversely with the cracking factor.
    #[test]
    fn cracking_monotonicity(profile in arb_profile(), seed in 0u64..100) {
        let macros = |factor: f64| {
            TraceGenerator::new(&profile, Cracking::new(factor), seed)
                .take(20_000)
                .filter(|o| o.macro_first)
                .count() as f64
        };
        let fused = macros(0.9);
        let cracked = macros(1.8);
        prop_assert!(cracked < fused, "cracked {cracked} vs fused {fused}");
    }
}
